//! Scale-out acceptance: a 100-replica, 8-document sharded simulation
//! must converge within a fixed tick budget, and the star topology with
//! batched anti-entropy must put strictly fewer bytes on the wire than
//! the full-mesh eager-broadcast baseline for the same edit script.

use eg_walker_suite::sync::{DocId, NetworkSim, SimBuilder};
use eg_walker_suite::trace::workload::{apply_sync_workload, sync_workload, SyncWorkloadSpec};

const NODES: usize = 100;
const DOCS: u64 = 8;
/// Tick budget for draining the 100-node simulation to convergence.
const TICK_BUDGET: u64 = 20_000;

fn scale_workload() -> Vec<eg_walker_suite::trace::SyncOp> {
    sync_workload(&SyncWorkloadSpec {
        nodes: NODES,
        docs: DOCS,
        bursts: 240,
        burst_len: (2, 10),
        gap_ticks: (0, 2),
        seed: 0x100_D0C5,
    })
}

fn builder(seed: u64) -> SimBuilder {
    let names: Vec<String> = (0..NODES).map(|i| format!("node{i:03}")).collect();
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    NetworkSim::builder(&refs, seed)
}

#[test]
fn hundred_replica_star_sharded_beats_mesh_eager_baseline() {
    let ops = scale_workload();

    // Star relay with batched outboxes (flush every 2 ticks).
    let mut star = builder(42).star().flush_every(2).build();
    apply_sync_workload(&mut star, &ops);
    assert!(
        star.run_until_quiescent(TICK_BUDGET),
        "star did not converge within {TICK_BUDGET} ticks (used {} total)",
        star.now()
    );
    assert!(star.all_converged());

    // Full-mesh eager per-edit broadcast: the pre-refactor behaviour.
    let mut mesh = builder(42).mesh().flush_every(0).build();
    apply_sync_workload(&mut mesh, &ops);
    assert!(
        mesh.run_until_quiescent(TICK_BUDGET),
        "mesh baseline did not converge within {TICK_BUDGET} ticks"
    );
    assert!(mesh.all_converged());

    // Every shard actually carries data under both topologies. (Exact
    // per-shard lengths may differ between runs: delete ops clamp against
    // each run's live view, which depends on delivery interleaving.)
    for net in [&star, &mesh] {
        assert_eq!(net.replica(0).doc_ids().len() as u64, DOCS);
        for doc in 0..DOCS {
            assert!(
                net.replica(0).len_chars_doc(DocId(doc)) > 0,
                "doc {doc} empty"
            );
        }
    }

    // The honest-bandwidth acceptance bar: batched star anti-entropy puts
    // strictly fewer bytes on the wire than eager mesh broadcast.
    let (s, m) = (star.stats(), mesh.stats());
    assert!(
        s.bytes < m.bytes,
        "star bytes {} not below mesh baseline {}",
        s.bytes,
        m.bytes
    );
    assert!(
        s.sent < m.sent,
        "star messages {} not below mesh baseline {}",
        s.sent,
        m.sent
    );
    // Byte accounting is wire-size based and splits by message kind.
    assert_eq!(s.bytes, s.digest_bytes + s.bundle_bytes);
    assert_eq!(m.bytes, m.digest_bytes + m.bundle_bytes);
}

#[test]
fn hundred_replica_star_survives_loss() {
    use eg_walker_suite::sync::LinkConfig;
    let ops = sync_workload(&SyncWorkloadSpec {
        nodes: NODES,
        docs: DOCS,
        bursts: 80,
        burst_len: (2, 8),
        gap_ticks: (0, 2),
        seed: 0xBADC0DE,
    });
    let mut net = builder(7)
        .star()
        .flush_every(2)
        .link(LinkConfig {
            min_delay: 1,
            max_delay: 6,
            drop_per_mille: 200,
        })
        .build();
    apply_sync_workload(&mut net, &ops);
    assert!(
        net.run_until_quiescent(60_000),
        "lossy star did not converge"
    );
    assert!(net.stats().dropped > 0, "seed should exercise loss");
    assert!(net.stats().syncs > 0, "loss must force digest repair");
}
