//! Cross-crate integration: benchmark traces streamed through the whole
//! replication stack — oplog → event bundles → wire encoding → lossy
//! out-of-order delivery → causal buffer → walker merge — must reproduce
//! the original document on the receiving replica.

use eg_walker_suite::encoding::{decode_bundle, encode_bundle};
use eg_walker_suite::sync::Replica;
use eg_walker_suite::trace::{builtin_specs, generate};
use eg_walker_suite::{EventBundle, OpLog};

/// Splits a full-graph bundle into chunks of at most `runs_per_chunk` runs.
fn chunk_bundle(full: &EventBundle, runs_per_chunk: usize) -> Vec<EventBundle> {
    full.runs
        .chunks(runs_per_chunk)
        .map(|runs| EventBundle {
            runs: runs.to_vec(),
        })
        .collect()
}

/// Delivers chunks in a seeded pseudo-random order through a replica's
/// causal buffer (re-queuing bundles that arrive before their parents).
fn deliver_scrambled(chunks: Vec<EventBundle>, seed: u64) -> Replica {
    let mut order: Vec<usize> = (0..chunks.len()).collect();
    let mut state = seed | 1;
    for i in (1..order.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        order.swap(i, (state as usize) % (i + 1));
    }
    let mut replica = Replica::new("receiver");
    for &i in &order {
        // Through the wire codec, like a real network would.
        let wire = encode_bundle(&chunks[i]);
        let decoded = decode_bundle(&wire).expect("wire roundtrip");
        replica.receive(&decoded);
    }
    assert_eq!(replica.pending_len(), 0, "causal buffer did not drain");
    replica
}

#[test]
fn traces_replicate_through_bundles() {
    // A sequential, a concurrent, and an asynchronous trace, kept tiny so
    // the test stays fast; the shapes are what matter.
    for spec in builtin_specs(0.004) {
        if !["S2", "C1", "A2"].contains(&spec.name.as_str()) {
            continue;
        }
        let oplog = generate(&spec);
        let expected = oplog.checkout_tip().content.to_string();

        let full = oplog.bundle_since(&[]);
        assert_eq!(full.num_events(), oplog.len());
        let chunks = chunk_bundle(&full, 7);
        let replica = deliver_scrambled(chunks, 0x5EED ^ spec.name.len() as u64);
        assert_eq!(
            replica.text(),
            expected,
            "replication mismatch on {}",
            spec.name
        );
    }
}

#[test]
fn two_replicas_replaying_same_trace_converge() {
    let spec = &builtin_specs(0.003)[3]; // C1
    let oplog = generate(spec);
    let full = oplog.bundle_since(&[]);

    let a = deliver_scrambled(chunk_bundle(&full, 5), 111);
    let b = deliver_scrambled(chunk_bundle(&full, 13), 999);
    assert!(a.converged_with(&b));
}

#[test]
fn trace_roundtrips_disk_then_network() {
    // Disk format first (whole graph), then incremental network bundles on
    // top: the combination a real deployment uses (§3.8).
    let spec = &builtin_specs(0.004)[0]; // S1
    let oplog = generate(spec);

    // Persist + reload.
    let bytes =
        eg_walker_suite::encoding::encode(&oplog, eg_walker_suite::encoding::EncodeOpts::default());
    let decoded = eg_walker_suite::encoding::decode(&bytes).unwrap();
    let mut reloaded: OpLog = decoded.oplog;

    // New live edits arrive over the network as a bundle.
    let mut source = oplog.clone();
    let agent = source.get_or_create_agent("live-editor");
    source.add_insert(agent, 0, ">> ");
    let delta = source.bundle_since(&reloaded.remote_version());
    assert_eq!(delta.num_events(), 3);
    reloaded.apply_bundle(&delta).unwrap();

    assert_eq!(
        reloaded.checkout_tip().content.to_string(),
        source.checkout_tip().content.to_string()
    );
}
