//! End-to-end integration: generate a trace → export/import JSON → encode/
//! decode the binary format → merge with all three algorithms — everything
//! must stay consistent.

use eg_walker_suite::encoding::{decode, encode, EncodeOpts};
use eg_walker_suite::trace::{builtin_specs, generate, json, trace_stats};
use eg_walker_suite::{crdt_ref::CrdtDoc, ot::replay_ot};
use egwalker::convert::to_crdt_ops;

#[test]
fn full_pipeline_all_traces() {
    for spec in builtin_specs(0.002) {
        // 1. Generate.
        let oplog = generate(&spec);
        let expected = oplog.checkout_tip().content.to_string();
        assert!(!expected.is_empty(), "{}", spec.name);

        // 2. Statistics are sane.
        let stats = trace_stats(&oplog, Some(expected.len()));
        assert_eq!(stats.events, oplog.len());
        assert!(stats.authors >= 1);

        // 3. JSON interchange round-trips the replay result.
        let exported = json::export(&oplog);
        let reimported = json::import(&json::from_json(&json::to_json(&exported)).unwrap());
        assert_eq!(
            reimported.checkout_tip().content.to_string(),
            expected,
            "{}",
            spec.name
        );

        // 4. Binary format round-trips (with cached doc).
        let bytes = encode(
            &oplog,
            EncodeOpts {
                cache_final_doc: true,
                ..Default::default()
            },
        );
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.cached_doc.as_deref(), Some(expected.as_str()));
        assert_eq!(
            decoded.oplog.checkout_tip().content.to_string(),
            expected,
            "{}",
            spec.name
        );

        // 5. The reference CRDT converges to a document with exactly the
        // same surviving characters. (On traces with deeply nested
        // same-position concurrency the CRDT's causal-order application may
        // order sibling runs differently from the walker's replay order —
        // both are deterministic and convergent; see DESIGN.md "Known
        // limitations".)
        let ops = to_crdt_ops(&oplog);
        let mut crdt = CrdtDoc::new();
        crdt.apply_all(&oplog, &ops);
        let crdt_text = crdt.to_string();
        let mut x: Vec<char> = crdt_text.chars().collect();
        let mut y: Vec<char> = expected.chars().collect();
        x.sort_unstable();
        y.sort_unstable();
        assert_eq!(x, y, "{}", spec.name);
        if oplog.graph.num_entries() == 1 {
            assert_eq!(crdt_text, expected, "{}", spec.name);
        }

        // 6. OT replays deterministically with the same final length class
        // (see the eg-ot crate docs for why exact equality only holds on
        // sequential histories).
        let (ot_doc, _) = replay_ot(&oplog);
        let (ot_doc2, _) = replay_ot(&oplog);
        assert_eq!(ot_doc, ot_doc2, "{}", spec.name);
        if oplog.graph.num_entries() == 1 {
            assert_eq!(ot_doc, expected, "{}", spec.name);
        }
    }
}

#[test]
fn cross_replica_sync_with_all_layers() {
    use eg_walker_suite::{Frontier, OpLog};
    // Two replicas collaborate by shipping *encoded files* to each other.
    let mut a = OpLog::new();
    let alice = a.get_or_create_agent("alice");
    a.add_insert(alice, 0, "state of the art");
    let mut b_file = encode(&a, EncodeOpts::default());

    // Replica B loads A's file and keeps editing.
    let mut b = decode(&b_file).unwrap().oplog;
    let bob = b.get_or_create_agent("bob");
    let mut vb = b.version().clone();
    for _ in 0..50 {
        let lvs = b.add_insert_at(bob, &vb, 0, "b");
        vb = Frontier::new_1(lvs.last());
    }

    // Meanwhile A edits too.
    let mut va = a.version().clone();
    for _ in 0..50 {
        let len = a.checkout(&va).len_chars();
        let lvs = a.add_insert_at(alice, &va, len, "a");
        va = Frontier::new_1(lvs.last());
    }

    // Exchange via files.
    b_file = encode(&b, EncodeOpts::default());
    let b_copy = decode(&b_file).unwrap().oplog;
    a.merge_oplog(&b_copy);
    let a_file = encode(&a, EncodeOpts::default());
    let a_copy = decode(&a_file).unwrap().oplog;
    b.merge_oplog(&a_copy);

    assert_eq!(a.len(), b.len());
    assert_eq!(
        a.checkout_tip().content.to_string(),
        b.checkout_tip().content.to_string()
    );
}
