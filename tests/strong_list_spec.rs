//! Checks derived from the strong list specification (paper Definition
//! C.2) on randomised histories:
//!
//! * **(1a) membership**: the final document contains exactly the inserted
//!   characters that were never deleted;
//! * **(1c) insertion position**: immediately after generating an insert,
//!   the inserted text appears at the requested index of the generating
//!   replica's document;
//! * **(1b) list-order consistency**: characters present in two different
//!   checkouts appear in the same relative order.

use egwalker::testgen::{random_oplog, SmallRng};
use egwalker::{Frontier, ListOpKind, OpLog};

#[test]
fn membership_matches_reference_sets() {
    // (1a): the multiset of characters in the final document equals
    // inserted-minus-deleted, computed independently from the converted
    // CRDT op stream.
    use egwalker::convert::{to_crdt_ops, CrdtOp};
    for seed in 0..25u64 {
        let oplog = random_oplog(seed, 120, 3, 0.35);
        let mut alive: std::collections::BTreeMap<usize, char> = Default::default();
        for op in to_crdt_ops(&oplog) {
            match op {
                CrdtOp::Ins { id, content, .. } => {
                    for (k, c) in content.chars().enumerate() {
                        alive.insert(id.start + k, c);
                    }
                }
                CrdtOp::Del { target } => {
                    for lv in target.iter() {
                        alive.remove(&lv);
                    }
                }
            }
        }
        let mut expected: Vec<char> = alive.values().copied().collect();
        expected.sort_unstable();
        let mut got: Vec<char> = oplog.checkout_tip().content.chars().collect();
        got.sort_unstable();
        assert_eq!(got, expected, "seed {seed}");
    }
}

#[test]
fn insert_lands_at_requested_position() {
    // (1c): after generating Insert(i, text) at a version, the document at
    // the new version has `text` at index i.
    let mut rng = SmallRng::new(777);
    for seed in 0..15u64 {
        let mut oplog = random_oplog(seed, 60, 3, 0.3);
        let agent = oplog.get_or_create_agent("prober");
        // Pick a random version and insert there.
        let lv = rng.below(oplog.len());
        let v = Frontier::new_1(lv);
        let doc = oplog.checkout(&v);
        let pos = rng.below(doc.len_chars() + 1);
        let lvs = oplog.add_insert_at(agent, &v, pos, "PROBE");
        let after = oplog.checkout(&[lvs.last()]);
        assert_eq!(
            after.content.slice_to_string(pos, 5),
            "PROBE",
            "seed {seed} pos {pos}"
        );
    }
}

#[test]
fn list_order_is_consistent_across_versions() {
    // (1b)/(2): characters visible in both an intermediate checkout and the
    // final checkout appear in the same relative order. We tag characters
    // with unique text to identify them.
    let mut oplog = OpLog::new();
    let a = oplog.get_or_create_agent("alice");
    let b = oplog.get_or_create_agent("bob");
    // Build a branchy history of uniquely-numbered words.
    let mut versions = Vec::new();
    oplog.add_insert(a, 0, "w0 ");
    versions.push(oplog.version().clone());
    let base = oplog.version().clone();
    oplog.add_insert_at(a, &base, 0, "w1 ");
    oplog.add_insert_at(b, &base, 3, "w2 ");
    versions.push(oplog.version().clone());
    let v2 = oplog.version().clone();
    oplog.add_insert_at(a, &v2, 0, "w3 ");
    versions.push(oplog.version().clone());

    let final_doc = oplog.checkout_tip().content.to_string();
    let order_in = |doc: &str, x: &str, y: &str| -> Option<bool> {
        match (doc.find(x), doc.find(y)) {
            (Some(i), Some(j)) => Some(i < j),
            _ => None,
        }
    };
    for v in &versions {
        let doc = oplog.checkout(v).content.to_string();
        for x in ["w0", "w1", "w2", "w3"] {
            for y in ["w0", "w1", "w2", "w3"] {
                if x == y {
                    continue;
                }
                if let (Some(o1), Some(o2)) = (order_in(&doc, x, y), order_in(&final_doc, x, y)) {
                    assert_eq!(o1, o2, "order of {x},{y} flipped between versions");
                }
            }
        }
    }
}

#[test]
fn deletes_are_no_ops_when_concurrent() {
    // Two replicas delete the same character concurrently: exactly one
    // character disappears (paper Lemma C.7 case 2).
    let mut oplog = OpLog::new();
    let a = oplog.get_or_create_agent("alice");
    let b = oplog.get_or_create_agent("bob");
    oplog.add_insert(a, 0, "abcde");
    let base = oplog.version().clone();
    oplog.add_delete_at(a, &base, 2, 1);
    oplog.add_delete_at(b, &base, 2, 1);
    assert_eq!(oplog.checkout_tip().content.to_string(), "abde");
}

#[test]
fn kinds_accounting() {
    // Sanity: every event is exactly one insert or delete.
    for seed in 0..10u64 {
        let oplog = random_oplog(seed, 80, 3, 0.3);
        let mut n = 0;
        for (lvs, run) in oplog.ops_in((0..oplog.len()).into()) {
            match run.kind {
                ListOpKind::Ins => assert!(run.content.is_some()),
                ListOpKind::Del => assert!(run.content.is_none()),
            }
            n += lvs.end - lvs.start;
        }
        assert_eq!(n, oplog.len());
    }
}
