//! # Eg-walker suite — facade crate
//!
//! A from-scratch Rust reproduction of *"Collaborative Text Editing with
//! Eg-walker: Better, Faster, Smaller"* (Gentle & Kleppmann, EuroSys 2025).
//! This crate re-exports the whole workspace for convenient use from the
//! examples and integration tests; depend on the individual crates for
//! finer-grained builds:
//!
//! * [`egwalker`] (re-exported at the root) — the algorithm itself;
//! * [`rle`], [`dag`], [`content_tree`], [`rope`] — its substrates;
//! * [`crdt_ref`], [`ot`] — the evaluation baselines;
//! * [`encoding`] — the on-disk format;
//! * [`storage`] — the append-only segment store and checkpointed loads;
//! * [`sync`] — causal broadcast replication over a simulated network;
//! * [`server`] — the multi-core shard-affinity host over [`sync`];
//! * [`trace`] — the benchmark workload suite.

pub use egwalker::{
    Branch, BundleError, BundleRun, EventBundle, Frontier, ListOpKind, OpLog, OpRun, RemoteId,
    TextOperation, WalkerOpts, LV,
};

pub use eg_content_tree as content_tree;
pub use eg_crdt_ref as crdt_ref;
pub use eg_dag as dag;
pub use eg_encoding as encoding;
pub use eg_ot as ot;
pub use eg_rle as rle;
pub use eg_rope as rope;
pub use eg_server as server;
pub use eg_storage as storage;
pub use eg_sync as sync;
pub use eg_trace as trace;
pub use egwalker as core_crate;
