//! A minimal, API-compatible stand-in for the subset of `criterion` this
//! workspace uses.
//!
//! The build environment has no access to crates.io (the same constraint
//! that led to the in-tree LZ4 implementation in `eg-encoding`), so the
//! Criterion surface the benches use — groups, `bench_function`,
//! `bench_with_input`, `sample_size`, [`BenchmarkId`] and the
//! `criterion_group!`/`criterion_main!` macros — is implemented here over
//! `std::time::Instant`.
//!
//! Reporting is intentionally simple: for each benchmark it prints the
//! minimum, median and mean wall-clock time per iteration. There are no
//! HTML reports, statistical regressions, or plots; those belong to real
//! criterion. Honouring `--bench`/`--test` harness arguments keeps
//! `cargo bench` and `cargo test --benches` working, and a `quick` filter
//! argument is accepted positionally like criterion's.

use std::time::{Duration, Instant};

/// Per-run configuration, shared by every group.
#[derive(Debug, Clone)]
pub struct Criterion {
    /// Samples per benchmark (each sample times a batch of iterations).
    sample_count: usize,
    /// Target wall-clock budget per benchmark.
    target_time: Duration,
    /// Substring filter from the command line; only matching ids run.
    filter: Option<String>,
    /// `--test` mode: run each benchmark once, don't measure.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_count: 20,
            target_time: Duration::from_millis(600),
            filter: None,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Applies harness command-line arguments (`--bench`, `--test`,
    /// `--exact`, and a positional filter), mirroring what cargo passes.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--exact" | "--nocapture" | "-q" | "--quiet" => {}
                "--test" => self.test_mode = true,
                "--sample-size" => {
                    if let Some(n) = args.next().and_then(|s| s.parse().ok()) {
                        self.sample_count = n;
                    }
                }
                other if !other.starts_with('-') => {
                    self.filter = Some(other.to_string());
                }
                _ => {} // ignore unknown flags rather than failing the harness
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_count: None,
        }
    }

    /// Benches a standalone function (no group).
    pub fn bench_function<F>(&mut self, id: impl IntoLabel, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        run_one(self, None, &label, f);
    }
}

/// A named collection of benchmarks with shared settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_count: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = Some(n);
        self
    }

    /// Overrides the time budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.target_time = t;
        self
    }

    /// Benches a closure under this group.
    pub fn bench_function<F>(&mut self, id: impl IntoLabel, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        let samples = self.sample_count;
        let name = self.name.clone();
        run_one_grouped(self.criterion, &name, samples, &label, f);
        self
    }

    /// Benches a closure over a borrowed input under this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API parity; dropping works too).
    pub fn finish(&mut self) {}
}

fn run_one_grouped<F>(
    criterion: &mut Criterion,
    group: &str,
    samples: Option<usize>,
    label: &str,
    f: F,
) where
    F: FnMut(&mut Bencher),
{
    let full = format!("{}/{}", group, label);
    let saved = criterion.sample_count;
    if let Some(n) = samples {
        criterion.sample_count = n;
    }
    run_one(criterion, Some(group), &full, f);
    criterion.sample_count = saved;
}

fn run_one<F>(criterion: &Criterion, _group: Option<&str>, full_label: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = &criterion.filter {
        if !full_label.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    if criterion.test_mode {
        // Smoke mode: one iteration, no reporting.
        f(&mut bencher);
        println!("test {} ... ok", full_label);
        return;
    }

    // Warm-up: run the routine repeatedly for a fraction of the time
    // budget before measuring, so caches, branch predictors, and lazy
    // allocations settle. The last warm-up round doubles as calibration
    // input for the iteration count.
    let warm_up_budget = criterion.target_time / 5;
    let warm_up_start = Instant::now();
    f(&mut bencher);
    let mut per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    while warm_up_start.elapsed() < warm_up_budget {
        f(&mut bencher);
        per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    }
    // Calibration: find an iteration count so one sample lands near
    // target_time / sample_count.
    let per_sample = criterion.target_time / criterion.sample_count.max(1) as u32;
    let iters_per_sample = (per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 20) as u64;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(criterion.sample_count);
    for _ in 0..criterion.sample_count {
        bencher.iters = iters_per_sample;
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter_ns.first().copied().unwrap_or(0.0);
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let trimmed = trimmed_mean(&per_iter_ns);
    println!(
        "{:<40} time: [min {} median {} mean {}] ({} samples x {} iters)",
        full_label,
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(trimmed),
        per_iter_ns.len(),
        iters_per_sample,
    );
}

/// The mean of `sorted` with the top and bottom ~10% of samples dropped
/// (at least one from each end once there are enough samples). Scheduler
/// noise on shared machines produces one-sided outliers that make the
/// plain mean useless for cross-run comparison; the trimmed mean tracks
/// the median while keeping sub-sample resolution.
fn trimmed_mean(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let trim = if sorted.len() >= 5 {
        (sorted.len() / 10).max(1)
    } else {
        0
    };
    let kept = &sorted[trim..sorted.len() - trim];
    kept.iter().sum::<f64>() / kept.len() as f64
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{:.1} ns", ns)
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Times the closure handed to it by a benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` the requested number of iterations, timing the whole
    /// batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark identifier made of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (for single-function sweeps).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark label.
pub trait IntoLabel {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for &String {
    fn into_label(self) -> String {
        self.clone()
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the harness `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("ot", 128).into_label(), "ot/128");
        assert_eq!(BenchmarkId::from_parameter(42).into_label(), "42");
    }

    #[test]
    fn bencher_runs_requested_iterations() {
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 10);
        assert!(b.elapsed > Duration::ZERO || count == 10);
    }

    #[test]
    fn groups_measure_without_panicking() {
        let mut c = Criterion {
            sample_count: 3,
            target_time: Duration::from_millis(5),
            filter: None,
            test_mode: false,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn trimmed_mean_drops_outliers() {
        // One wild outlier: the trimmed mean stays near the bulk.
        let mut samples: Vec<f64> =
            vec![10.0, 10.0, 10.0, 11.0, 9.0, 10.0, 10.0, 10.0, 10.0, 1000.0];
        samples.sort_by(|a, b| a.total_cmp(b));
        let t = trimmed_mean(&samples);
        assert!((9.9..10.2).contains(&t), "trimmed mean {t}");
        // Small sample counts are untouched.
        assert_eq!(trimmed_mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(trimmed_mean(&[]), 0.0);
        // Uniform data is unchanged.
        let uniform = vec![5.0; 20];
        assert_eq!(trimmed_mean(&uniform), 5.0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            sample_count: 1,
            target_time: Duration::from_millis(1),
            filter: Some("nomatch".into()),
            test_mode: false,
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran, "filtered-out benchmark must not run");
    }
}
