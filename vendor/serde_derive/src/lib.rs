//! Derive macros for the in-tree `serde` stand-in.
//!
//! Implemented directly on `proc_macro` token streams (no `syn`/`quote` —
//! the build environment has no registry access), which keeps support
//! deliberately narrow: non-generic named-field structs and unit-variant
//! enums, exactly the shapes `eg-trace` derives. Anything else is a
//! compile error naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we managed to parse out of the item under derive.
enum Item {
    /// A named-field struct: name + field names.
    Struct(String, Vec<String>),
    /// A unit-variant enum: name + variant names.
    Enum(String, Vec<String>),
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skips outer attributes (`#[...]`, including doc comments) starting at
/// `i`; returns the index of the first non-attribute token.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len()
        && is_punct(&tokens[i], '#')
        && matches!(&tokens[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
    {
        i += 2;
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, …) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if i < tokens.len()
            && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {}", other)),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {:?}", other)),
    };
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        return Err(format!(
            "serde stand-in derive does not support generics (on `{}`)",
            name
        ));
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            return Err(format!(
                "serde stand-in derive supports only brace-bodied items, found {:?} on `{}`",
                other, name
            ))
        }
    };
    let body: Vec<TokenTree> = body.into_iter().collect();

    match kind.as_str() {
        "struct" => {
            // Fields: [attrs] [vis] name ':' type ','  — split on top-level
            // commas, tracking angle-bracket depth so `Map<K, V>` types
            // don't split a field in half.
            let mut fields = Vec::new();
            let mut j = 0;
            while j < body.len() {
                j = skip_attrs(&body, j);
                if j >= body.len() {
                    break;
                }
                j = skip_vis(&body, j);
                let field = match &body[j] {
                    TokenTree::Ident(id) => id.to_string(),
                    other => return Err(format!("expected field name, found {}", other)),
                };
                fields.push(field);
                // Scan past `: Type` to the next top-level comma.
                let mut depth = 0i32;
                while j < body.len() {
                    match &body[j] {
                        t if is_punct(t, '<') => depth += 1,
                        t if is_punct(t, '>') => depth -= 1,
                        t if is_punct(t, ',') && depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                j += 1; // consume the comma (or run off the end)
            }
            Ok(Item::Struct(name, fields))
        }
        "enum" => {
            let mut variants = Vec::new();
            let mut j = 0;
            while j < body.len() {
                j = skip_attrs(&body, j);
                if j >= body.len() {
                    break;
                }
                let variant = match &body[j] {
                    TokenTree::Ident(id) => id.to_string(),
                    other => return Err(format!("expected variant name, found {}", other)),
                };
                j += 1;
                if j < body.len() && !is_punct(&body[j], ',') {
                    return Err(format!(
                        "serde stand-in derive supports only unit enum variants (`{}::{}` has data)",
                        name, variant
                    ));
                }
                variants.push(variant);
                j += 1; // consume the comma
            }
            Ok(Item::Enum(name, variants))
        }
        other => Err(format!("cannot derive serde impls for `{}` items", other)),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({:?});", msg)
        .parse()
        .unwrap()
}

/// Derives `serde::Serialize` (stand-in: `fn to_value(&self) -> Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match item {
        Item::Struct(name, fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "({:?}.to_string(), ::serde::Serialize::to_value(&self.{})),",
                        f, f
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Obj(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derives `serde::Deserialize` (stand-in: `fn from_value(&Value)`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match item {
        Item::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get_field({f:?})\
                            .ok_or_else(|| ::serde::DeError::custom(\
                                concat!(\"missing field `\", {f:?}, \"` in {name}\")))?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if !matches!(v, ::serde::Value::Obj(_)) {{\n\
                             return Err(::serde::DeError::custom(concat!(\"expected object for {name}\")));\n\
                         }}\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(::serde::DeError::custom(format!(\n\
                                     \"unknown {name} variant `{{}}`\", other))),\n\
                             }},\n\
                             other => Err(::serde::DeError::custom(format!(\n\
                                 \"expected string for {name}, found {{:?}}\", other))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
