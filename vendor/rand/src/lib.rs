//! A minimal, API-compatible stand-in for the subset of `rand` 0.8 this
//! workspace uses.
//!
//! The build environment has no access to crates.io (the same constraint
//! that led to the in-tree LZ4 implementation in `eg-encoding`), so the
//! pieces of `rand` the sync layer needs are implemented here from
//! scratch: a seedable generator ([`rngs::StdRng`]) and uniform range
//! sampling via [`Rng::gen_range`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! strong for simulation purposes and fully deterministic per seed. It is
//! NOT the ChaCha12 generator real `rand` uses for `StdRng`, and it is not
//! cryptographically secure; streams differ from upstream `rand` for the
//! same seed, which is fine for the deterministic network simulation.

use std::ops::{Range, RangeInclusive};

/// Types that can seed and construct a generator.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sample types a [`Rng`] can draw uniformly from a range.
///
/// Implemented for the unsigned integer ranges the workspace uses.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Rejection-free-enough uniform sampling of `[0, bound)` via 128-bit
/// multiply (Lemire); bias is < 2^-64 per draw, irrelevant here.
fn bounded(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_uint!(u16, u32, u64, usize);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`; see the crate docs for the differences).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(5..17u32);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(3..=9u64);
            assert!((3..=9).contains(&y));
            let z = rng.gen_range(0..1usize);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0..2u32) == b.gen_range(0..2u32))
            .count();
        assert!(
            same < 64,
            "independent seeds should not produce identical streams"
        );
    }
}
