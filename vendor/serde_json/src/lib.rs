//! A minimal, API-compatible stand-in for the subset of `serde_json` this
//! workspace uses: [`to_string`] and [`from_str`] over the in-tree `serde`
//! stand-in's `Value` model.
//!
//! Emits and accepts standard JSON (RFC 8259): string escapes, `\uXXXX`
//! (including surrogate pairs), exponent-form numbers, and arbitrary
//! whitespace. Not supported — because nothing in the workspace needs
//! them — are streaming readers/writers and borrowed deserialization.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Error type for JSON parsing (and, nominally, serialisation — which
/// cannot fail for the value model used here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset the error was detected at, when parsing.
    offset: Option<usize>,
}

impl Error {
    fn parse(msg: impl fmt::Display, offset: usize) -> Self {
        Error {
            msg: msg.to_string(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "JSON error at byte {}: {}", at, self.msg),
            None => write!(f, "JSON error: {}", self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error {
            msg: e.0,
            offset: None,
        }
    }
}

/// Serialises a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    Ok(T::from_value(&value)?)
}

// --- writer --------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Match serde_json: integral floats keep a ".0" suffix.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{:.1}", f));
                } else {
                    out.push_str(&format!("{}", f));
                }
            } else {
                // serde_json emits null for non-finite floats.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse("trailing characters", p.pos));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::parse("unexpected end of input", self.pos)),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::parse("invalid literal", self.pos))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::parse("invalid literal", self.pos))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::parse("invalid literal", self.pos))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error::parse("expected `,` or `]`", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(Error::parse("expected `,` or `}`", self.pos)),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::parse("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::parse("lone high surrogate", self.pos));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::parse("invalid low surrogate", self.pos));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(
                                c.ok_or_else(|| Error::parse("invalid unicode escape", self.pos))?,
                            );
                        }
                        other => {
                            return Err(Error::parse(
                                format!("invalid escape `\\{}`", other as char),
                                self.pos,
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::parse("invalid utf-8", self.pos))?;
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(Error::parse("control character in string", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::parse("truncated \\u escape", self.pos));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
        let v =
            u32::from_str_radix(s, 16).map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid number", start))?;
        if text.is_empty() || text == "-" {
            return Err(Error::parse("invalid number", start));
        }
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::parse("invalid number", start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for json in ["null", "true", "false", "0", "42", "-1.5", "1e3", "\"hi\""] {
            let v = parse_value_complete(json).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v);
            let v2 = parse_value_complete(&out).unwrap();
            assert_eq!(v, v2, "{}", json);
        }
    }

    #[test]
    fn nested_roundtrip() {
        let json = r#"{"agents":["alice","b\"ob"],"txns":[{"parents":[],"agent":0,"patches":[{"pos":0,"del":0,"ins":"héllo\n"}]}]}"#;
        let v = parse_value_complete(json).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v);
        assert_eq!(parse_value_complete(&out).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs() {
        let v = parse_value_complete(r#""😀""#).unwrap();
        assert_eq!(v, Value::Str("😀".to_string()));
    }

    #[test]
    fn errors_carry_position() {
        let err = parse_value_complete("[1, 2,]").unwrap_err();
        assert!(err.to_string().contains("byte"));
        assert!(parse_value_complete("{\"a\":1").is_err());
        assert!(parse_value_complete("01x").is_err());
    }

    #[test]
    fn typed_roundtrip() {
        let v: Vec<usize> = from_str("[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
    }
}
