//! A minimal, API-compatible stand-in for the subset of `serde_json` this
//! workspace uses: [`to_string`]/[`to_writer`] and [`from_str`]/
//! [`from_reader`] over the in-tree `serde` stand-in's `Value` model.
//!
//! Emits and accepts standard JSON (RFC 8259): string escapes, `\uXXXX`
//! (including surrogate pairs), exponent-form numbers, and arbitrary
//! whitespace. The reader path is incremental — [`from_reader`] pulls
//! chunks from any [`std::io::Read`] on demand instead of slurping the
//! stream, and [`to_writer`] streams serialisation without building the
//! whole document in memory. Not supported — because nothing in the
//! workspace needs it — is borrowed deserialization.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::io;

/// Error type for JSON parsing and serialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset the error was detected at, when parsing.
    offset: Option<usize>,
}

impl Error {
    fn parse(msg: impl fmt::Display, offset: usize) -> Self {
        Error {
            msg: msg.to_string(),
            offset: Some(offset),
        }
    }

    fn io(e: io::Error) -> Self {
        Error {
            msg: format!("io error: {e}"),
            offset: None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "JSON error at byte {}: {}", at, self.msg),
            None => write!(f, "JSON error: {}", self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error {
            msg: e.0,
            offset: None,
        }
    }
}

/// Serialises a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value()).expect("fmt::Write to String cannot fail");
    Ok(out)
}

/// Streams a value as compact JSON into an [`io::Write`] without
/// building the whole document in memory first. No trailing newline is
/// written; callers framing NDJSON append their own.
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(writer: W, value: &T) -> Result<(), Error> {
    let mut sink = IoFmtSink {
        writer,
        error: None,
    };
    match write_value(&mut sink, &value.to_value()) {
        Ok(()) => Ok(()),
        Err(_) => Err(Error::io(
            sink.error
                .unwrap_or_else(|| io::Error::other("formatter error")),
        )),
    }
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        src: SliceSource {
            bytes: s.as_bytes(),
            pos: 0,
        },
    };
    let value = p.complete_value()?;
    Ok(T::from_value(&value)?)
}

/// Incrementally parses one value from an [`io::Read`], pulling chunks
/// on demand. The stream must hold exactly one value plus optional
/// trailing whitespace (NDJSON callers should frame on newlines and use
/// [`from_str`] per line).
pub fn from_reader<R: io::Read, T: Deserialize>(reader: R) -> Result<T, Error> {
    let mut p = Parser {
        src: ReadSource {
            reader,
            buf: Vec::new(),
            start: 0,
            consumed: 0,
            eof: false,
            error: None,
        },
    };
    let value = p.complete_value()?;
    Ok(T::from_value(&value)?)
}

// --- writer --------------------------------------------------------------

/// Adapts an [`io::Write`] to [`fmt::Write`], stashing the real io error
/// (fmt::Error is unit).
struct IoFmtSink<W: io::Write> {
    writer: W,
    error: Option<io::Error>,
}

impl<W: io::Write> fmt::Write for IoFmtSink<W> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.writer.write_all(s.as_bytes()).map_err(|e| {
            self.error = Some(e);
            fmt::Error
        })
    }
}

fn write_value<W: fmt::Write>(out: &mut W, v: &Value) -> fmt::Result {
    match v {
        Value::Null => out.write_str("null"),
        Value::Bool(true) => out.write_str("true"),
        Value::Bool(false) => out.write_str("false"),
        Value::UInt(n) => write!(out, "{n}"),
        Value::Float(f) => {
            if f.is_finite() {
                // Match serde_json: integral floats keep a ".0" suffix.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    write!(out, "{:.1}", f)
                } else {
                    write!(out, "{}", f)
                }
            } else {
                // serde_json emits null for non-finite floats.
                out.write_str("null")
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            out.write_char('[')?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                write_value(out, item)?;
            }
            out.write_char(']')
        }
        Value::Obj(fields) => {
            out.write_char('{')?;
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                write_string(out, k)?;
                out.write_char(':')?;
                write_value(out, item)?;
            }
            out.write_char('}')
        }
    }
}

fn write_string<W: fmt::Write>(out: &mut W, s: &str) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            '\u{08}' => out.write_str("\\b")?,
            '\u{0c}' => out.write_str("\\f")?,
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32)?;
            }
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

// --- byte sources --------------------------------------------------------

/// Where the parser pulls bytes from: a borrowed slice ([`from_str`]) or
/// a chunked reader ([`from_reader`]). `peek_at(i)` looks `i` bytes past
/// the cursor, fetching more input on demand; `None` means end of input
/// (or a pending io error, surfaced by `take_error`).
trait Source {
    fn peek_at(&mut self, i: usize) -> Option<u8>;
    fn advance(&mut self, n: usize);
    /// Absolute byte offset of the cursor, for error messages.
    fn offset(&self) -> usize;
    /// A deferred io error, if reading ever failed.
    fn take_error(&mut self) -> Option<Error>;
}

struct SliceSource<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Source for SliceSource<'_> {
    fn peek_at(&mut self, i: usize) -> Option<u8> {
        self.bytes.get(self.pos + i).copied()
    }

    fn advance(&mut self, n: usize) {
        self.pos = (self.pos + n).min(self.bytes.len());
    }

    fn offset(&self) -> usize {
        self.pos
    }

    fn take_error(&mut self) -> Option<Error> {
        None
    }
}

const READ_CHUNK: usize = 8 * 1024;

/// Chunked pull source over any [`io::Read`]: keeps only the unconsumed
/// window plus one read-ahead chunk in memory.
struct ReadSource<R: io::Read> {
    reader: R,
    buf: Vec<u8>,
    /// Cursor into `buf` (bytes before it are consumed).
    start: usize,
    /// Total bytes consumed and discarded so far (for offsets).
    consumed: usize,
    eof: bool,
    error: Option<io::Error>,
}

impl<R: io::Read> ReadSource<R> {
    /// Ensures at least `i + 1` unconsumed bytes are buffered, reading
    /// more chunks as needed. Returns `false` at end of input.
    fn fill_to(&mut self, i: usize) -> bool {
        while self.buf.len() - self.start <= i {
            if self.eof || self.error.is_some() {
                return false;
            }
            // Drop the consumed prefix before growing the buffer.
            if self.start > 0 && self.start >= self.buf.len().min(READ_CHUNK) {
                self.buf.drain(..self.start);
                self.consumed += self.start;
                self.start = 0;
            }
            let old = self.buf.len();
            self.buf.resize(old + READ_CHUNK, 0);
            match self.reader.read(&mut self.buf[old..]) {
                Ok(0) => {
                    self.buf.truncate(old);
                    self.eof = true;
                }
                Ok(n) => self.buf.truncate(old + n),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => self.buf.truncate(old),
                Err(e) => {
                    self.buf.truncate(old);
                    self.error = Some(e);
                }
            }
        }
        true
    }
}

impl<R: io::Read> Source for ReadSource<R> {
    fn peek_at(&mut self, i: usize) -> Option<u8> {
        if self.fill_to(i) {
            self.buf.get(self.start + i).copied()
        } else {
            None
        }
    }

    fn advance(&mut self, n: usize) {
        self.start = (self.start + n).min(self.buf.len());
    }

    fn offset(&self) -> usize {
        self.consumed + self.start
    }

    fn take_error(&mut self) -> Option<Error> {
        self.error.take().map(Error::io)
    }
}

// --- parser --------------------------------------------------------------

struct Parser<S: Source> {
    src: S,
}

impl<S: Source> Parser<S> {
    /// One value plus trailing whitespace to end of input.
    fn complete_value(&mut self) -> Result<Value, Error> {
        let v = self.value()?;
        self.skip_ws();
        if let Some(e) = self.src.take_error() {
            return Err(e);
        }
        if self.peek().is_some() {
            return Err(Error::parse("trailing characters", self.src.offset()));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.src.advance(1);
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.src.peek_at(0)
    }

    fn fail(&mut self, msg: impl fmt::Display) -> Error {
        // A pending io error is the real cause of any "unexpected end".
        self.src
            .take_error()
            .unwrap_or_else(|| Error::parse(msg, self.src.offset()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.src.advance(1);
            Ok(())
        } else {
            Err(self.fail(format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        let bytes = lit.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            if self.src.peek_at(i) != Some(b) {
                return false;
            }
        }
        self.src.advance(bytes.len());
        true
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.fail("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.fail("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.fail("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.fail("invalid literal"))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.src.advance(1);
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.src.advance(1);
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.src.advance(1),
                        Some(b']') => {
                            self.src.advance(1);
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.fail("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.src.advance(1);
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.src.advance(1);
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.src.advance(1),
                        Some(b'}') => {
                            self.src.advance(1);
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(self.fail("expected `,` or `}`")),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.src.advance(1);
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.src.advance(1);
                    let esc = match self.peek() {
                        Some(b) => b,
                        None => return Err(self.fail("unterminated escape")),
                    };
                    self.src.advance(1);
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_literal("\\u") {
                                    return Err(self.fail("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.fail("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.fail("invalid unicode escape")),
                            }
                        }
                        other => {
                            return Err(self.fail(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(lead) => {
                    if (lead as u32) < 0x20 {
                        return Err(self.fail("control character in string"));
                    }
                    // Assemble one UTF-8 scalar from the byte stream; a
                    // chunk boundary may fall mid-character, so pull the
                    // continuation bytes through the source.
                    let len = match lead {
                        0x00..=0x7F => 1,
                        0xC2..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF4 => 4,
                        _ => return Err(self.fail("invalid utf-8")),
                    };
                    let mut scalar = [0u8; 4];
                    scalar[0] = lead;
                    for (i, slot) in scalar.iter_mut().enumerate().take(len).skip(1) {
                        match self.src.peek_at(i) {
                            Some(b) => *slot = b,
                            None => return Err(self.fail("invalid utf-8")),
                        }
                    }
                    match std::str::from_utf8(&scalar[..len]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.fail("invalid utf-8")),
                    }
                    self.src.advance(len);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for i in 0..4 {
            let b = match self.src.peek_at(i) {
                Some(b) => b,
                None => return Err(self.fail("truncated \\u escape")),
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.fail("invalid \\u escape")),
            };
            v = (v << 4) | digit;
        }
        self.src.advance(4);
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.src.offset();
        let mut text = String::new();
        if self.peek() == Some(b'-') {
            text.push('-');
            self.src.advance(1);
        }
        let digits = |p: &mut Self, text: &mut String| {
            while let Some(b @ b'0'..=b'9') = p.peek() {
                text.push(b as char);
                p.src.advance(1);
            }
        };
        digits(self, &mut text);
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            text.push('.');
            self.src.advance(1);
            digits(self, &mut text);
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            text.push('e');
            self.src.advance(1);
            if let Some(sign @ (b'+' | b'-')) = self.peek() {
                text.push(sign as char);
                self.src.advance(1);
            }
            digits(self, &mut text);
        }
        if text.is_empty() || text == "-" {
            return Err(self
                .src
                .take_error()
                .unwrap_or_else(|| Error::parse("invalid number", start)));
        }
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::parse("invalid number", start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_value_complete(s: &str) -> Result<Value, Error> {
        let mut p = Parser {
            src: SliceSource {
                bytes: s.as_bytes(),
                pos: 0,
            },
        };
        p.complete_value()
    }

    #[test]
    fn scalars_roundtrip() {
        for json in ["null", "true", "false", "0", "42", "-1.5", "1e3", "\"hi\""] {
            let v = parse_value_complete(json).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v).unwrap();
            let v2 = parse_value_complete(&out).unwrap();
            assert_eq!(v, v2, "{}", json);
        }
    }

    #[test]
    fn nested_roundtrip() {
        let json = r#"{"agents":["alice","b\"ob"],"txns":[{"parents":[],"agent":0,"patches":[{"pos":0,"del":0,"ins":"héllo\n"}]}]}"#;
        let v = parse_value_complete(json).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v).unwrap();
        assert_eq!(parse_value_complete(&out).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs() {
        let v = parse_value_complete(r#""😀""#).unwrap();
        assert_eq!(v, Value::Str("😀".to_string()));
    }

    #[test]
    fn errors_carry_position() {
        let err = parse_value_complete("[1, 2,]").unwrap_err();
        assert!(err.to_string().contains("byte"));
        assert!(parse_value_complete("{\"a\":1").is_err());
        assert!(parse_value_complete("01x").is_err());
    }

    #[test]
    fn typed_roundtrip() {
        let v: Vec<usize> = from_str("[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
    }

    /// A reader that hands out one byte per `read` call — the worst
    /// possible chunking, so every multi-byte token crosses a refill.
    struct TrickleReader<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl io::Read for TrickleReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.bytes.get(self.pos) {
                Some(&b) if !buf.is_empty() => {
                    buf[0] = b;
                    self.pos += 1;
                    Ok(1)
                }
                _ => Ok(0),
            }
        }
    }

    #[test]
    fn from_reader_matches_from_str() {
        let json = r#"  {"name":"hélloA😀","nums":[1,-2.5,1e3],"flag":true,"nil":null}  "#;
        let via_str: Value = from_str(json).unwrap();
        let via_reader: Value = from_reader(json.as_bytes()).unwrap();
        assert_eq!(via_str, via_reader);
        // One byte per read: chunk boundaries inside literals, escapes,
        // and multi-byte UTF-8 must all reassemble.
        let trickled: Value = from_reader(TrickleReader {
            bytes: json.as_bytes(),
            pos: 0,
        })
        .unwrap();
        assert_eq!(via_str, trickled);
    }

    #[test]
    fn from_reader_large_input_spans_chunks() {
        // Build a document comfortably bigger than one READ_CHUNK so the
        // source must refill mid-structure.
        let big: Vec<String> = (0..4000).map(|i| format!("item-{i:06}")).collect();
        let json = to_string(&big).unwrap();
        assert!(json.len() > READ_CHUNK * 2);
        let back: Vec<String> = from_reader(json.as_bytes()).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn from_reader_rejects_trailing_and_truncated() {
        assert!(from_reader::<_, Value>(&b"[1,2] [3]"[..]).is_err());
        assert!(from_reader::<_, Value>(&b"{\"a\":"[..]).is_err());
        assert!(from_reader::<_, Value>(&b""[..]).is_err());
    }

    #[test]
    fn from_reader_surfaces_io_errors() {
        struct FailingReader;
        impl io::Read for FailingReader {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::ConnectionReset, "boom"))
            }
        }
        let err = from_reader::<_, Value>(FailingReader).unwrap_err();
        assert!(err.to_string().contains("io error"), "{err}");
    }

    #[test]
    fn to_writer_streams_compact_json() {
        let v: Vec<usize> = vec![1, 2, 3];
        let mut out = Vec::new();
        to_writer(&mut out, &v).unwrap();
        assert_eq!(out, b"[1,2,3]");
        // Matches the string path byte for byte.
        assert_eq!(String::from_utf8(out).unwrap(), to_string(&v).unwrap());
    }

    #[test]
    fn to_writer_surfaces_io_errors() {
        struct FullDisk;
        impl io::Write for FullDisk {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WriteZero, "disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        assert!(to_writer(FullDisk, &vec![1u64, 2]).is_err());
    }
}
