//! A minimal, API-compatible stand-in for the subset of `proptest` this
//! workspace uses.
//!
//! The build environment has no access to crates.io (the same constraint
//! that led to the in-tree LZ4 implementation in `eg-encoding`), so the
//! property-testing surface the test suites rely on is implemented here
//! from scratch:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]` support);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`];
//! * [`strategy::Strategy`] with `prop_map`, `prop_flat_map` and `boxed`;
//! * range, tuple, [`strategy::Just`], `any::<T>()`, simple
//!   regex-character-class string strategies, [`collection::vec`] and the
//!   weighted [`prop_oneof!`] union.
//!
//! Differences from real proptest, by design: cases are generated from a
//! deterministic per-test seed (derived from the test's module path and
//! name), and minimisation is **greedy over the RNG choice stream**
//! rather than over typed value trees. When a case fails, the recorded
//! stream of raw draws that produced it is shrunk (blocks deleted,
//! elements binary-searched toward zero — see
//! [`test_runner::shrink_choices`]) and regenerated until no smaller
//! stream still fails, then the minimised inputs' `Debug` rendering is
//! reported. Body panics (as opposed to `prop_assert!` failures) are
//! treated as failures during minimisation too. The determinism means a
//! failure always reproduces by re-running the same test.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Strategies for `bool` (mirrors `proptest::bool`).
pub mod bool {
    use crate::arbitrary::AnyStrategy;
    use std::marker::PhantomData;

    /// Uniform `bool` strategy.
    pub const ANY: AnyStrategy<::core::primitive::bool> = AnyStrategy(PhantomData);
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    /// The whole crate under the short name real proptest's prelude uses.
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ---------------------------------------------------------------------------
// Macros. `#[macro_export]` places these at the crate root; the prelude
// re-exports them so `use proptest::prelude::*` works as with real proptest.
// ---------------------------------------------------------------------------

/// Defines property tests: `fn name(binding in strategy, ...) { body }`.
///
/// Supports an optional leading `#![proptest_config(expr)]` and any number
/// of test functions, each annotated with its own outer attributes
/// (typically `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __test_name = concat!(module_path!(), "::", stringify!($name));
                // One case: sample every input from the given RNG, record
                // the inputs' Debug rendering, run the body. The greedy
                // minimiser re-runs this same closure on replayed choice
                // streams.
                let mut __run_case = |__rng: &mut $crate::test_runner::TestRng|
                    -> (::std::string::String, $crate::test_runner::TestCaseResult) {
                    let mut __case_inputs = ::std::string::String::new();
                    $(let $pat = {
                        let __sampled = $crate::strategy::Strategy::sample(&($strat), __rng);
                        __case_inputs.push_str(&format!(
                            "  {} = {:?}\n", stringify!($pat), __sampled
                        ));
                        __sampled
                    };)+
                    let __result: $crate::test_runner::TestCaseResult =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    (__case_inputs, __result)
                };
                let mut __rng = $crate::test_runner::TestRng::for_test(__test_name);
                let mut __passed: u32 = 0;
                let mut __rejected: u32 = 0;
                let __max_rejects: u32 = __config.cases.saturating_mul(64).max(4096);
                while __passed < __config.cases {
                    __rng.begin_case();
                    let (__case_inputs, __result) = __run_case(&mut __rng);
                    match __result {
                        ::core::result::Result::Ok(()) => __passed += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            __rejected += 1;
                            if __rejected > __max_rejects {
                                panic!(
                                    "{}: too many rejected cases ({} after {} passes); \
                                     prop_assume! conditions are too strict",
                                    __test_name, __rejected, __passed
                                );
                            }
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            // Greedy minimisation: shrink the recorded
                            // choice stream while its replay still fails
                            // (a panicking candidate counts as failing).
                            let __minimised = $crate::test_runner::with_silent_panic_hook(
                                || $crate::test_runner::shrink_choices(
                                __rng.choices().to_vec(),
                                __config.max_shrink_iters,
                                |__cand| {
                                    let mut __replay =
                                        $crate::test_runner::TestRng::replay(__cand.to_vec());
                                    match ::std::panic::catch_unwind(
                                        ::std::panic::AssertUnwindSafe(|| {
                                            __run_case(&mut __replay).1
                                        }),
                                    ) {
                                        ::core::result::Result::Ok(__r) => matches!(
                                            __r,
                                            ::core::result::Result::Err(
                                                $crate::test_runner::TestCaseError::Fail(_)
                                            )
                                        ),
                                        ::core::result::Result::Err(_) => true,
                                    }
                                },
                            ));
                            let mut __replay =
                                $crate::test_runner::TestRng::replay(__minimised);
                            // The minimum may fail only by panicking;
                            // catch it so the fallback to the original
                            // counterexample below stays reachable.
                            let __min_outcome = ::std::panic::catch_unwind(
                                ::std::panic::AssertUnwindSafe(|| __run_case(&mut __replay)),
                            );
                            let (__final_inputs, __final_msg) = match __min_outcome {
                                ::core::result::Result::Ok((
                                    __min_inputs,
                                    ::core::result::Result::Err(
                                        $crate::test_runner::TestCaseError::Fail(__m),
                                    ),
                                )) => (__min_inputs, __m),
                                // Panicking minimum or generation drift:
                                // fall back to the original counterexample.
                                _ => (__case_inputs, __msg),
                            };
                            panic!(
                                "{}: property failed at case {} (deterministic seed; \
                                 re-run this test to reproduce)\n{}\nminimal failing \
                                 input (greedy choice-stream minimisation):\n{}",
                                __test_name, __passed, __final_msg, __final_inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                    stringify!($left), stringify!($right), __l, __r, format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Picks one of several strategies per sample, optionally weighted
/// (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
