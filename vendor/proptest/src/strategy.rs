//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Rejects generated values that fail the predicate (retrying; gives
    /// up after a bounded number of attempts).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn sample_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample_dyn(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.source.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 10000 consecutive samples",
            self.whence
        );
    }
}

/// Weighted choice between type-erased strategies (built by
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs at least one nonzero weight"
        );
        Union { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights covered above")
    }
}

// --- integer and float ranges -------------------------------------------

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// --- strings -------------------------------------------------------------

/// `&str` strategies interpret the string as a tiny regex subset:
/// `[class]{m,n}` where the class holds literal characters and `a-z`
/// ranges (e.g. `"[a-z ]{0,30}"`). A string not starting with `[` is
/// generated literally.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        if !self.starts_with('[') {
            // Not a class pattern: generate the literal string itself.
            return (*self).to_string();
        }
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {:?}", self));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[class]{m,n}`; returns the expanded alphabet and bounds.
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let close = pattern.find(']')?;
    let class = &pattern[1..close];
    let rest = &pattern[close + 1..];
    let rest = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match rest.split_once(',') {
        Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
        None => {
            let n = rest.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    // Expand the class: literals and `a-z` ranges.
    let mut chars = Vec::new();
    let class_chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < class_chars.len() {
        if i + 2 < class_chars.len() && class_chars[i + 1] == '-' {
            let (a, b) = (class_chars[i], class_chars[i + 2]);
            if a > b {
                return None;
            }
            for c in a..=b {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(class_chars[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, lo, hi))
}

// --- tuples --------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..5_000 {
            let a = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&a));
            let b = (0u16..=10_000).sample(&mut rng);
            assert!(b <= 10_000);
            let c = (0.0f64..0.8).sample(&mut rng);
            assert!((0.0..0.8).contains(&c));
            let d = (-5i32..5).sample(&mut rng);
            assert!((-5..5).contains(&d));
        }
    }

    #[test]
    fn string_patterns() {
        let mut rng = TestRng::for_test("strings");
        for _ in 0..2_000 {
            let s = "[a-z]{1,5}".sample(&mut rng);
            assert!((1..=5).contains(&s.chars().count()), "{:?}", s);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let s = "[a-z ]{0,30}".sample(&mut rng);
            assert!(s.chars().count() <= 30);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == ' '));

            let s = "[A-Z]{3,8}".sample(&mut rng);
            assert!((3..=8).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_uppercase()));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::for_test("combinators");
        let strat = (0usize..10)
            .prop_map(|n| n * 2)
            .prop_flat_map(|n| (Just(n), 0..n.max(1)));
        for _ in 0..1_000 {
            let (n, k) = strat.sample(&mut rng);
            assert!(n % 2 == 0 && n < 20);
            assert!(k < n.max(1));
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = TestRng::for_test("union");
        let strat = Union::new(vec![(3, Just(0u8).boxed()), (1, Just(1u8).boxed())]);
        let ones: usize = (0..4_000).map(|_| strat.sample(&mut rng) as usize).sum();
        // Expect about 1000 ones out of 4000; fail only on gross skew.
        assert!((500..1500).contains(&ones), "ones = {}", ones);
    }

    #[test]
    fn filter_retries() {
        let mut rng = TestRng::for_test("filter");
        let strat = (0usize..100).prop_filter("even", |n| n % 2 == 0);
        for _ in 0..500 {
            assert_eq!(strat.sample(&mut rng) % 2, 0);
        }
    }
}
