//! Runner configuration, case outcomes, the deterministic RNG, and the
//! greedy input minimiser.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration (subset of real proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Budget of candidate re-executions the greedy minimiser may spend
    /// on a failing case (0 disables minimisation).
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 4096,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was skipped (`prop_assume!` failed); it does not count
    /// toward the required number of cases.
    Reject(String),
    /// The property failed on this case.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure outcome.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection outcome.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

#[derive(Debug, Clone)]
enum RngMode {
    /// Fresh draws from the seeded generator.
    Random(StdRng),
    /// Replaying a recorded choice stream (exhausted positions read 0,
    /// the minimal draw).
    Replay { choices: Vec<u64>, pos: usize },
}

/// The RNG handed to strategies.
///
/// Seeded deterministically from the test's fully-qualified name, so every
/// run of a given test explores the same cases (a failure always
/// reproduces by re-running the test). Every draw is also recorded, which
/// is what makes minimisation possible: a failing case is exactly its
/// choice stream, and [`shrink_choices`] searches for a smaller stream
/// whose replay still fails.
#[derive(Debug, Clone)]
pub struct TestRng {
    mode: RngMode,
    log: Vec<u64>,
}

impl TestRng {
    /// Builds the RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            mode: RngMode::Random(StdRng::seed_from_u64(h)),
            log: Vec::new(),
        }
    }

    /// Builds an RNG that replays a recorded choice stream; draws past
    /// the end return 0 (the minimal choice).
    pub fn replay(choices: Vec<u64>) -> Self {
        TestRng {
            mode: RngMode::Replay { choices, pos: 0 },
            log: Vec::new(),
        }
    }

    /// Clears the per-case draw log; call before sampling a new case.
    pub fn begin_case(&mut self) {
        self.log.clear();
    }

    /// The draws made since the last [`TestRng::begin_case`].
    pub fn choices(&self) -> &[u64] {
        &self.log
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let v = match &mut self.mode {
            RngMode::Random(rng) => rng.next_u64(),
            RngMode::Replay { choices, pos } => {
                let v = choices.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                v
            }
        };
        self.log.push(v);
        v
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runs `f` with the global panic hook silenced, restoring the previous
/// hook afterwards. The shrinker replays failing candidates under
/// `catch_unwind`; without this, a panic-based property failure would
/// print up to `max_shrink_iters` full panic reports during
/// minimisation. The hook is process-global, so panics from tests
/// running concurrently on other threads are muted for the duration of
/// one shrink pass — the same trade-off real proptest makes.
pub fn with_silent_panic_hook<R>(f: impl FnOnce() -> R) -> R {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = f();
    std::panic::set_hook(prev);
    result
}

/// Greedy choice-stream minimisation (the Hypothesis idea adapted to this
/// stand-in): instead of shrinking typed value trees, shrink the raw
/// stream of RNG draws that produced the failing case and regenerate.
/// Because every sampler here maps smaller draws to "smaller" values
/// (range starts, shorter collections, earlier `prop_oneof!` arms), a
/// lexicographically smaller / shorter stream decodes to a simpler
/// counterexample.
///
/// Two candidate moves run to a fixpoint (or until `max_iters` calls to
/// `still_fails`):
///
/// 1. **block removal** — delete spans of draws, halving the span size
///    down to single elements (this is what shortens generated `vec`s and
///    drops whole sub-structures);
/// 2. **per-element binary search** — for each draw, find the smallest
///    value in `[0, current]` that still fails.
///
/// `still_fails` must re-run generation + property on the candidate
/// stream and report whether it still fails; rejected or passing
/// candidates are simply not accepted, so the result is always a genuine
/// (locally minimal) counterexample.
pub fn shrink_choices(
    initial: Vec<u64>,
    max_iters: u32,
    mut still_fails: impl FnMut(&[u64]) -> bool,
) -> Vec<u64> {
    let mut best = initial;
    let mut iters: u32 = 0;
    loop {
        let mut improved = false;

        // Move 1: remove blocks, largest first.
        let mut size = best.len().next_power_of_two().max(1);
        while size >= 1 {
            let mut start = 0;
            while start < best.len() {
                if iters >= max_iters {
                    return best;
                }
                let end = (start + size).min(best.len());
                let mut cand = Vec::with_capacity(best.len() - (end - start));
                cand.extend_from_slice(&best[..start]);
                cand.extend_from_slice(&best[end..]);
                iters += 1;
                if still_fails(&cand) {
                    best = cand;
                    improved = true;
                    // Retry the same offset: the next block slid into it.
                } else {
                    start += size;
                }
            }
            if size == 1 {
                break;
            }
            size /= 2;
        }

        // Move 2: minimise each element by binary search.
        for i in 0..best.len() {
            if best[i] == 0 {
                continue;
            }
            if iters >= max_iters {
                return best;
            }
            let orig = best[i];
            best[i] = 0;
            iters += 1;
            if still_fails(&best) {
                improved = true;
                continue;
            }
            // 0 passes: search (lo passes, hi fails) for the boundary.
            let mut lo = 0u64;
            let mut hi = orig;
            while hi - lo > 1 && iters < max_iters {
                let mid = lo + (hi - lo) / 2;
                best[i] = mid;
                iters += 1;
                if still_fails(&best) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            best[i] = hi;
            if hi != orig {
                improved = true;
            }
        }

        if !improved {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("mod::case");
        let mut b = TestRng::for_test("mod::case");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::for_test("mod::other");
        let first = TestRng::for_test("mod::case").next_u64();
        assert_ne!(c.next_u64(), first);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_test("bound");
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn replay_reproduces_and_pads_with_zero() {
        let mut rng = TestRng::for_test("record");
        rng.begin_case();
        let original: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert_eq!(rng.choices(), original.as_slice());

        let mut replayed = TestRng::replay(original.clone());
        for &v in &original {
            assert_eq!(replayed.next_u64(), v);
        }
        assert_eq!(replayed.next_u64(), 0, "exhausted stream reads zero");
        assert_eq!(replayed.below(100), 0);
    }

    #[test]
    fn shrinker_minimises_a_sum_condition() {
        // "Fails" when the decoded total reaches 1000: the minimal
        // counterexample is a single draw of exactly 1000.
        let initial = vec![u64::MAX / 2; 16];
        let min = shrink_choices(initial, 100_000, |c| {
            c.iter().map(|&x| x as u128).sum::<u128>() >= 1000
        });
        assert_eq!(min, vec![1000]);
    }

    #[test]
    fn shrinker_keeps_structure_the_failure_needs() {
        // Failure needs at least 3 elements with element 2 being >= 5.
        let initial = vec![999, 77, 42, 8, 13];
        let min = shrink_choices(initial, 100_000, |c| c.len() >= 3 && c[2] >= 5);
        assert_eq!(min, vec![0, 0, 5]);
    }

    #[test]
    fn shrinker_respects_budget() {
        let initial = vec![u64::MAX; 64];
        let mut calls = 0u32;
        let min = shrink_choices(initial.clone(), 10, |c| {
            calls += 1;
            c.iter().map(|&x| x as u128).sum::<u128>() >= 1
        });
        assert!(calls <= 10);
        // Still a failing stream, just not fully minimised.
        assert!(min.iter().map(|&x| x as u128).sum::<u128>() >= 1);
    }

    #[test]
    fn shrinker_returns_input_when_budget_is_zero() {
        let initial = vec![7, 8, 9];
        let min = shrink_choices(initial.clone(), 0, |_| true);
        assert_eq!(min, initial);
    }
}
