//! Runner configuration, case outcomes, and the deterministic RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration (subset of real proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was skipped (`prop_assume!` failed); it does not count
    /// toward the required number of cases.
    Reject(String),
    /// The property failed on this case.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure outcome.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection outcome.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies.
///
/// Seeded deterministically from the test's fully-qualified name, so every
/// run of a given test explores the same cases (a failure always
/// reproduces by re-running the test).
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Builds the RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("mod::case");
        let mut b = TestRng::for_test("mod::case");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::for_test("mod::other");
        let first = TestRng::for_test("mod::case").next_u64();
        assert_ne!(c.next_u64(), first);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_test("bound");
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }
}
