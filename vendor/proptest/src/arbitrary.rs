//! `any::<T>()` — default strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(pub PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Biased toward ASCII like real proptest's default char strategy;
        // occasionally samples a wider scalar value.
        if rng.below(4) > 0 {
            (0x20 + rng.below(0x5f)) as u8 as char
        } else {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{fffd}')
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn any_covers_domain() {
        let mut rng = TestRng::for_test("any");
        let mut seen_true = false;
        let mut seen_false = false;
        let mut max_u16 = 0u16;
        for _ in 0..2_000 {
            match any::<bool>().sample(&mut rng) {
                true => seen_true = true,
                false => seen_false = true,
            }
            max_u16 = max_u16.max(any::<u16>().sample(&mut rng));
        }
        assert!(seen_true && seen_false);
        assert!(max_u16 > u16::MAX / 2, "u16 samples suspiciously small");
    }
}
