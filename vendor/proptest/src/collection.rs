//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length distribution for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span + 1) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn lengths_respected() {
        let mut rng = TestRng::for_test("vec");
        let strat = vec(0usize..10, 2..6);
        for _ in 0..1_000 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = vec(0usize..10, 3usize);
        assert_eq!(exact.sample(&mut rng).len(), 3);
    }
}
