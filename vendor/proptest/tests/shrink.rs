//! End-to-end minimisation behaviour of the `proptest!` macro.

use proptest::prelude::*;
use proptest::test_runner::{shrink_choices, TestRng};

proptest! {
    /// A failing property panics with the minimised counterexample banner
    /// (the shrinker re-runs generation on smaller choice streams).
    #[test]
    #[should_panic(expected = "minimal failing input")]
    fn failing_property_reports_minimised_input(
        v in prop::collection::vec(0u32..1000, 0..20),
    ) {
        prop_assert!(v.iter().map(|&x| x as u64).sum::<u64>() < 500);
    }

    /// Rejected (`prop_assume!`) cases do not interfere with passing runs.
    #[test]
    fn assume_still_works(n in 0usize..100) {
        prop_assume!(n % 2 == 0);
        prop_assert!(n % 2 == 0);
    }
}

/// The minimiser drives generated values to the boundary of the failure
/// condition: replaying the shrunk stream through a real strategy yields
/// the smallest vector that still fails.
#[test]
fn shrunk_stream_decodes_to_minimal_vector() {
    let strat = prop::collection::vec(0u32..1000, 0..20);

    // Find a failing case the way the macro does.
    let mut rng = TestRng::for_test("shrink_demo");
    let failed = loop {
        rng.begin_case();
        let v = strat.sample(&mut rng);
        if v.iter().map(|&x| x as u64).sum::<u64>() >= 500 {
            break rng.choices().to_vec();
        }
    };

    let minimised = shrink_choices(failed, 100_000, |cand| {
        let mut replay = TestRng::replay(cand.to_vec());
        let v = strat.sample(&mut replay);
        v.iter().map(|&x| x as u64).sum::<u64>() >= 500
    });

    let mut replay = TestRng::replay(minimised);
    let v = strat.sample(&mut replay);
    let sum: u64 = v.iter().map(|&x| x as u64).sum();
    assert!(sum >= 500, "minimised input must still fail");
    // Greedy minimality: the sum sits close to the boundary and the
    // vector is as short as the element cap allows (999 per element →
    // at least one element, at most a small handful).
    assert!(sum < 1000, "sum {sum} far from the 500 boundary");
    assert!(v.len() <= 2, "vector not minimised: {v:?}");
}
