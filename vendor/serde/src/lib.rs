//! A minimal, API-compatible stand-in for the subset of `serde` this
//! workspace uses.
//!
//! The build environment has no access to crates.io (the same constraint
//! that led to the in-tree LZ4 implementation in `eg-encoding`), so the
//! small serde surface `eg-trace` relies on — `#[derive(Serialize,
//! Deserialize)]` on named-field structs and unit enums, driven through
//! `serde_json::{to_string, from_str}` — is implemented here from scratch.
//!
//! Unlike real serde's zero-copy visitor architecture, this stand-in
//! round-trips through an owned JSON-like [`Value`] tree. That is slower
//! but behaviourally equivalent for the interchange-format use case, and
//! keeps the whole implementation small enough to audit.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// An owned JSON-like value tree; the interchange point between
/// [`Serialize`], [`Deserialize`] and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Non-negative integers (covers every integer field in this
    /// workspace; negatives fall back to [`Value::Float`]).
    UInt(u64),
    /// Floating-point numbers (and negative integers).
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Arr(Vec<Value>),
    /// Objects, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    // Identity: lets callers deserialise into the dynamic representation
    // (`serde_json::from_str::<Value>`), mirroring real serde_json.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] tree (stand-in for serde's `Serialize`).
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] tree (stand-in for serde's
/// `Deserialize`).
pub trait Deserialize: Sized {
    /// Reads `Self` out of a [`Value`], validating its shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- primitive impls -----------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{} out of range", n))),
                    // Integral floats are accepted, but range-checked
                    // through u64 rather than saturated by `as`.
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f < u64::MAX as f64 => {
                        <$t>::try_from(*f as u64)
                            .map_err(|_| DeError::custom(format!("{} out of range", f)))
                    }
                    other => Err(DeError::custom(format!(
                        "expected integer, found {:?}", other
                    ))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(n) => Ok(*n as f64),
            other => Err(DeError::custom(format!(
                "expected number, found {:?}",
                other
            ))),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, found {:?}", other))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, found {:?}",
                other
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!(
                "expected array, found {:?}",
                other
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::custom(format!(
                "expected object, found {:?}",
                other
            ))),
        }
    }
}

macro_rules! impl_tuple {
    ($($len:literal => ($($name:ident : $idx:tt),+),)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(items) if items.len() == $len => Ok((
                        $($name::from_value(&items[$idx])?,)+
                    )),
                    other => Err(DeError::custom(format!(
                        "expected {}-tuple array, found {:?}", $len, other
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    1 => (A: 0),
    2 => (A: 0, B: 1),
    3 => (A: 0, B: 1, C: 2),
    4 => (A: 0, B: 1, C: 2, D: 3),
    5 => (A: 0, B: 1, C: 2, D: 3, E: 4),
    6 => (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(usize::from_value(&42usize.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<usize> = vec![1, 2, 3];
        assert_eq!(Vec::<usize>::from_value(&v.to_value()).unwrap(), v);
        let t = (1usize, 2.5f64);
        assert_eq!(<(usize, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn integral_floats_range_checked() {
        assert_eq!(u8::from_value(&Value::Float(255.0)).unwrap(), 255);
        assert!(u8::from_value(&Value::Float(256.0)).is_err());
        assert!(u8::from_value(&Value::Float(-1.0)).is_err());
        assert!(u8::from_value(&Value::Float(1.5)).is_err());
        assert!(u64::from_value(&Value::Float(2.0f64.powi(64))).is_err());
    }

    #[test]
    fn shape_errors_reported() {
        assert!(usize::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<usize>::from_value(&Value::UInt(1)).is_err());
        assert!(<(usize, usize)>::from_value(&Value::Arr(vec![Value::UInt(1)])).is_err());
    }
}
