//! Tier-1 reconnect / resume-from-frontier: partition a link mid-burst,
//! heal it, and prove by byte accounting that the resumed sync is
//! incremental — already-acknowledged bundles are not re-sent.

mod common;

use common::{await_convergence, DaemonOpts, DaemonProc, TempDir};
use eg_daemon::{FaultProxy, ProxyFaults};
use std::time::Duration;

#[test]
fn heal_after_partition_resumes_from_frontier() {
    let tmp = TempDir::new("reconnect");
    let sock_a = tmp.path("a.sock");
    let sock_b = tmp.path("b.sock");
    let sock_proxy = tmp.path("p.sock");

    let mut a = DaemonProc::spawn(&DaemonOpts::new("alpha", sock_a.clone()));
    // A clean proxy (no random faults) between beta and alpha, so every
    // application byte on the link is counted.
    let proxy = FaultProxy::spawn(sock_proxy.clone(), sock_a, ProxyFaults::default(), 0xACC7)
        .expect("spawn proxy");
    let mut b = DaemonProc::spawn(&DaemonOpts::new("beta", sock_b).peer(&sock_proxy));

    // Phase 1: a large burst syncs through the proxy. Accounting is in
    // *bundle* bytes — digest rounds keep crossing the link every
    // sync interval whether or not anything changed, so total bytes
    // mostly measure how long the test ran, while bundle bytes measure
    // actual event transfer.
    a.cmd_ok(r#"{"cmd":"script","docs":4,"sessions":4,"edits":600,"seed":21}"#);
    await_convergence(&mut a, &mut b, 4, Duration::from_secs(30));
    let phase1_bundle_bytes = proxy.stats().bundle_bytes_forwarded;
    assert!(phase1_bundle_bytes > 0, "no bundles crossed the proxy");

    // Partition mid-stream, then a small phase-2 burst lands on alpha
    // while beta is cut off and cycling its backoff ladder.
    proxy.partition(true);
    a.cmd_ok(r#"{"cmd":"script","docs":4,"sessions":4,"edits":40,"seed":22}"#);
    std::thread::sleep(Duration::from_millis(400));
    assert!(
        proxy.stats().partition_kills > 0,
        "partition never severed or refused anything"
    );

    // Heal. Beta reconnects, handshakes, and its first digest is the
    // resume point: alpha sends only what beta's frontier lacks.
    proxy.partition(false);
    await_convergence(&mut a, &mut b, 4, Duration::from_secs(30));
    assert_eq!(a.full_texts(), b.full_texts());

    let healed_bundle_bytes = proxy.stats().bundle_bytes_forwarded - phase1_bundle_bytes;
    eprintln!("bundle bytes: phase1={phase1_bundle_bytes} healed={healed_bundle_bytes}");
    // Byte accounting: the post-heal transfer carries only the 40-edit
    // phase-2 delta. Re-sending the already-acknowledged phase-1
    // bundles (600 edits) would rival `phase1_bundle_bytes`;
    // resume-from-frontier keeps it to a small fraction.
    assert!(healed_bundle_bytes > 0, "phase-2 delta never transferred");
    assert!(
        healed_bundle_bytes < phase1_bundle_bytes / 3,
        "post-heal bundle transfer too large for an incremental resume: \
         {healed_bundle_bytes} bytes vs {phase1_bundle_bytes} in phase 1"
    );

    // The dialer observed the outage and recovered.
    assert!(b.status_counter("reconnects") >= 1);

    b.shutdown();
    proxy.shutdown();
    a.shutdown();
}
