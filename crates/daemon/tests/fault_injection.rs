//! Fault-injection suite: two OS processes converge through a proxy
//! that drops, duplicates, delays, and truncates frames on a seeded
//! schedule.
//!
//! The tier-1 sweep pins a handful of seeds; the `#[ignore]` campaign
//! is the open-ended nightly companion:
//!
//! ```text
//! EG_FAULT_SECS=120 cargo test -p eg-daemon --test fault_injection \
//!     --release -- --ignored --nocapture
//! ```

mod common;

use common::{await_convergence, DaemonOpts, DaemonProc, TempDir};
use eg_daemon::{FaultProxy, ProxyFaults, ProxyStats};
use std::time::{Duration, Instant};

/// Runs one faulted convergence round: alpha listens, the proxy
/// mangles, beta dials through it, both run seeded workloads, and the
/// pair must converge. Returns the proxy's fault counters.
fn faulted_round(seed: u64, faults: ProxyFaults, edits: u64, deadline: Duration) -> ProxyStats {
    let tmp = TempDir::new(&format!("fault-{seed}"));
    let sock_a = tmp.path("a.sock");
    let sock_b = tmp.path("b.sock");
    let sock_proxy = tmp.path("p.sock");

    let mut a = DaemonProc::spawn(&DaemonOpts::new("alpha", sock_a.clone()));
    let proxy = FaultProxy::spawn(sock_proxy.clone(), sock_a, faults, seed).expect("spawn proxy");
    let mut b = DaemonProc::spawn(&DaemonOpts::new("beta", sock_b).peer(&sock_proxy));

    a.cmd_ok(&format!(
        r#"{{"cmd":"script","docs":4,"sessions":4,"edits":{edits},"seed":{}}}"#,
        seed * 2 + 1
    ));
    b.cmd_ok(&format!(
        r#"{{"cmd":"script","docs":4,"sessions":4,"edits":{edits},"seed":{}}}"#,
        seed * 2 + 2
    ));

    await_convergence(&mut a, &mut b, 4, deadline);
    assert_eq!(a.full_texts(), b.full_texts(), "seed {seed}");

    let stats = proxy.stats();
    b.shutdown();
    proxy.shutdown();
    a.shutdown();
    stats
}

#[test]
fn seeded_fault_schedules_all_converge() {
    let mut injected = 0u64;
    for seed in [3u64, 17, 29] {
        let stats = faulted_round(seed, ProxyFaults::uniform(60), 150, Duration::from_secs(60));
        injected += stats.frames_dropped
            + stats.frames_duplicated
            + stats.frames_delayed
            + stats.frames_truncated;
    }
    // The sweep must actually have hurt: convergence through a proxy
    // that never fired a fault proves nothing.
    assert!(injected > 0, "no faults injected across the sweep");
}

#[test]
#[ignore = "open-ended randomized campaign; run nightly / on demand with --ignored"]
fn randomized_fault_campaign() {
    let secs: u64 = std::env::var("EG_FAULT_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let base_seed: u64 = std::env::var("EG_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xFA11);
    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut round = 0u64;
    while Instant::now() < deadline {
        let seed = base_seed.wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Log the seed *before* the round so a failure is replayable.
        eprintln!("fault campaign round {round}: seed {seed}");
        let stats = faulted_round(
            seed,
            ProxyFaults::uniform(100),
            250,
            Duration::from_secs(120),
        );
        eprintln!(
            "  converged: fwd={} drop={} dup={} delay={} trunc={}",
            stats.frames_forwarded,
            stats.frames_dropped,
            stats.frames_duplicated,
            stats.frames_delayed,
            stats.frames_truncated
        );
        round += 1;
    }
    eprintln!("fault campaign: {round} rounds survived (base seed {base_seed})");
}
