//! Tier-1: two real OS processes converge over a Unix-domain socket,
//! and a SIGKILLed daemon restarts from its segment store and converges
//! byte-identically.

mod common;

use common::{await_convergence, await_established, DaemonOpts, DaemonProc, TempDir};
use serde::Value;
use std::time::Duration;

#[test]
fn two_processes_converge_over_a_unix_socket() {
    let tmp = TempDir::new("two-proc");
    let sock_a = tmp.path("a.sock");
    let sock_b = tmp.path("b.sock");
    let mut a = DaemonProc::spawn(&DaemonOpts::new("alpha", sock_a.clone()));
    let mut b = DaemonProc::spawn(&DaemonOpts::new("beta", sock_b).peer(&sock_a));

    // Concurrent workloads with disjoint seeds on both sides; sessions
    // are namespaced by daemon name, so the agent sets never collide.
    a.cmd_ok(r#"{"cmd":"script","docs":4,"sessions":4,"edits":200,"seed":7}"#);
    b.cmd_ok(r#"{"cmd":"script","docs":4,"sessions":4,"edits":200,"seed":8}"#);

    await_convergence(&mut a, &mut b, 4, Duration::from_secs(30));

    // Interactive edits after the burst still flow.
    a.cmd_ok(r#"{"cmd":"edit","doc":0,"at":0,"text":"late-from-alpha "}"#);
    b.cmd_ok(r#"{"cmd":"edit","doc":1,"at":0,"text":"late-from-beta "}"#);
    await_convergence(&mut a, &mut b, 4, Duration::from_secs(30));

    // The texts themselves — not just the hash — must match.
    assert_eq!(a.full_texts(), b.full_texts());

    // The dialer reports its peer link as established.
    let status = b.cmd_ok(r#"{"cmd":"status"}"#);
    let Some(Value::Arr(peers)) = status.get_field("peers") else {
        panic!("status missing peers: {status:?}");
    };
    assert!(
        peers.iter().any(|p| {
            p.get_field("dialed") == Some(&Value::Bool(true))
                && p.get_field("established") == Some(&Value::Bool(true))
        }),
        "no established dialed peer in {peers:?}"
    );

    b.shutdown();
    a.shutdown();
}

#[test]
fn sigkill_mid_sync_restart_converges_byte_identical() {
    let tmp = TempDir::new("kill9");
    let sock_a = tmp.path("a.sock");
    let sock_b = tmp.path("b.sock");
    let persist_a = tmp.path("store-a");
    let persist_b = tmp.path("store-b");

    let opts_a = DaemonOpts::new("alpha", sock_a.clone()).persist(&persist_a);
    let mut a = DaemonProc::spawn(&opts_a);
    let mut b = DaemonProc::spawn(
        &DaemonOpts::new("beta", sock_b)
            .peer(&sock_a)
            .persist(&persist_b),
    );

    // Pin down the first connection before cutting it: the reconnect
    // counter below distinguishes re-establishment from first contact.
    await_established(&mut b, Duration::from_secs(10));

    // Both sides accumulate state; alpha's edits are on disk the moment
    // the script reply returns (workers persist synchronously).
    a.cmd_ok(r#"{"cmd":"script","docs":4,"sessions":4,"edits":300,"seed":11}"#);
    b.cmd_ok(r#"{"cmd":"script","docs":4,"sessions":4,"edits":300,"seed":12}"#);

    // SIGKILL alpha mid-sync: no flush, no checkpoint, no goodbye. The
    // sync rounds between the two scripts and this kill are partial by
    // construction.
    a.kill9();

    // Beta keeps editing into the void while its reconnect loop backs
    // off against the dead socket.
    b.cmd_ok(r#"{"cmd":"script","docs":4,"sessions":4,"edits":50,"seed":13}"#);

    // Restart alpha on the same socket and store: it must reopen warm
    // (stale socket file included) and resume from its persisted
    // frontier.
    let mut a = DaemonProc::spawn(&opts_a);
    assert!(
        a.status_counter("docs_loaded") > 0,
        "restarted daemon did not load from its segment store"
    );

    await_convergence(&mut a, &mut b, 4, Duration::from_secs(45));
    assert_eq!(
        a.full_texts(),
        b.full_texts(),
        "texts differ after crash-restart convergence"
    );

    // Beta's dial slot survived the outage: at least one reconnect.
    assert!(b.status_counter("reconnects") >= 1);

    b.shutdown();
    a.shutdown();
}
