//! Shared harness for the daemon integration tests: spawns the real
//! `eg-daemon` binary as a child OS process and drives it over the
//! newline-delimited JSON control protocol on its stdin/stdout.
#![allow(dead_code)]

use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

/// A scratch directory removed on drop; socket paths live here too so
/// they stay well under the Unix `sun_path` limit.
pub struct TempDir(pub PathBuf);

impl TempDir {
    pub fn new(tag: &str) -> TempDir {
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("egd-{}-{tag}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    pub fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Options for spawning a daemon process; defaults are tuned fast for
/// tests (25ms digest rounds, 10ms reconnect base).
pub struct DaemonOpts {
    pub name: String,
    pub socket: PathBuf,
    pub peers: Vec<PathBuf>,
    pub persist: Option<PathBuf>,
    pub sync_ms: u64,
    pub heartbeat_ms: u64,
    pub timeout_ms: u64,
    pub backoff_base_ms: u64,
    pub backoff_cap_ms: u64,
    pub seed: u64,
}

impl DaemonOpts {
    pub fn new(name: &str, socket: PathBuf) -> DaemonOpts {
        DaemonOpts {
            name: name.to_owned(),
            socket,
            peers: Vec::new(),
            persist: None,
            sync_ms: 25,
            heartbeat_ms: 100,
            timeout_ms: 1500,
            backoff_base_ms: 10,
            backoff_cap_ms: 200,
            seed: 1,
        }
    }

    pub fn peer(mut self, p: &Path) -> DaemonOpts {
        self.peers.push(p.to_owned());
        self
    }

    pub fn persist(mut self, dir: &Path) -> DaemonOpts {
        self.persist = Some(dir.to_owned());
        self
    }
}

/// A running `eg-daemon` child process plus its control pipes.
pub struct DaemonProc {
    pub name: String,
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<std::process::ChildStdout>,
}

impl DaemonProc {
    /// Spawns the compiled `eg-daemon` binary (Cargo points
    /// `CARGO_BIN_EXE_eg-daemon` at it for integration tests).
    pub fn spawn(opts: &DaemonOpts) -> DaemonProc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_eg-daemon"));
        cmd.arg("--name")
            .arg(&opts.name)
            .arg("--socket")
            .arg(&opts.socket)
            .arg("--sync-ms")
            .arg(opts.sync_ms.to_string())
            .arg("--heartbeat-ms")
            .arg(opts.heartbeat_ms.to_string())
            .arg("--timeout-ms")
            .arg(opts.timeout_ms.to_string())
            .arg("--backoff-base-ms")
            .arg(opts.backoff_base_ms.to_string())
            .arg("--backoff-cap-ms")
            .arg(opts.backoff_cap_ms.to_string())
            .arg("--seed")
            .arg(opts.seed.to_string());
        for p in &opts.peers {
            cmd.arg("--peer").arg(p);
        }
        if let Some(dir) = &opts.persist {
            cmd.arg("--persist").arg(dir);
        }
        // `EG_TEST_STDERR=1` surfaces the daemons' stderr logs when
        // debugging a failing run; they are noise otherwise.
        let stderr = if std::env::var_os("EG_TEST_STDERR").is_some() {
            Stdio::inherit()
        } else {
            Stdio::null()
        };
        let mut child = cmd
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(stderr)
            .spawn()
            .expect("spawn eg-daemon");
        let stdin = child.stdin.take().expect("child stdin");
        let stdout = BufReader::new(child.stdout.take().expect("child stdout"));
        DaemonProc {
            name: opts.name.clone(),
            child,
            stdin,
            stdout,
        }
    }

    /// Sends one JSON command line and reads the one JSON reply line.
    pub fn cmd(&mut self, line: &str) -> Value {
        writeln!(self.stdin, "{line}").expect("write command");
        self.stdin.flush().expect("flush command");
        let mut reply = String::new();
        let n = self.stdout.read_line(&mut reply).expect("read reply");
        assert!(n > 0, "[{}] daemon closed stdout mid-protocol", self.name);
        serde_json::from_str(&reply)
            .unwrap_or_else(|e| panic!("[{}] bad reply {reply:?}: {e}", self.name))
    }

    /// `cmd`, asserting the reply has `"ok": true`.
    pub fn cmd_ok(&mut self, line: &str) -> Value {
        let v = self.cmd(line);
        assert_eq!(
            v.get_field("ok"),
            Some(&Value::Bool(true)),
            "[{}] command {line} failed: {v:?}",
            self.name
        );
        v
    }

    /// The snapshot hash string (16 hex digits) and document count.
    pub fn snapshot(&mut self) -> (String, u64) {
        let v = self.cmd_ok(r#"{"cmd":"snapshot"}"#);
        let hash = match v.get_field("hash") {
            Some(Value::Str(s)) => s.clone(),
            other => panic!("[{}] bad hash field {other:?}", self.name),
        };
        let docs = match v.get_field("docs") {
            Some(Value::UInt(n)) => *n,
            other => panic!("[{}] bad docs field {other:?}", self.name),
        };
        (hash, docs)
    }

    /// Every document's text, sorted by id — the byte-identical check.
    pub fn full_texts(&mut self) -> Vec<(u64, String)> {
        let v = self.cmd_ok(r#"{"cmd":"snapshot","full":true}"#);
        let Some(Value::Arr(items)) = v.get_field("texts") else {
            panic!("[{}] snapshot full missing texts", self.name);
        };
        let mut out = Vec::new();
        for item in items {
            let doc = match item.get_field("doc") {
                Some(Value::UInt(n)) => *n,
                other => panic!("bad doc field {other:?}"),
            };
            let text = match item.get_field("text") {
                Some(Value::Str(s)) => s.clone(),
                other => panic!("bad text field {other:?}"),
            };
            out.push((doc, text));
        }
        out.sort();
        out
    }

    /// A named counter out of the `status` reply.
    pub fn status_counter(&mut self, field: &str) -> u64 {
        let v = self.cmd_ok(r#"{"cmd":"status"}"#);
        match v.get_field(field) {
            Some(Value::UInt(n)) => *n,
            other => panic!("[{}] status field {field}: {other:?}", self.name),
        }
    }

    /// Graceful stop: `shutdown` command, then reap the child.
    pub fn shutdown(mut self) {
        let _ = writeln!(self.stdin, r#"{{"cmd":"shutdown"}}"#);
        let _ = self.stdin.flush();
        let mut reply = String::new();
        let _ = self.stdout.read_line(&mut reply);
        let _ = self.child.wait();
    }

    /// SIGKILL — no warning, no flush, the crash-recovery case.
    pub fn kill9(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for DaemonProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Polls until the daemon reports at least one established dialed peer
/// link; panics at `deadline`. Tests that assert on reconnect counters
/// need the *first* connection pinned down before they cut it.
pub fn await_established(d: &mut DaemonProc, deadline: Duration) {
    let start = Instant::now();
    while start.elapsed() < deadline {
        let status = d.cmd_ok(r#"{"cmd":"status"}"#);
        if let Some(Value::Arr(peers)) = status.get_field("peers") {
            let up = peers.iter().any(|p| {
                p.get_field("dialed") == Some(&Value::Bool(true))
                    && p.get_field("established") == Some(&Value::Bool(true))
            });
            if up {
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("[{}] no established peer within {deadline:?}", d.name);
}

/// Polls until both daemons report the same snapshot hash with at least
/// `min_docs` documents; panics at `deadline`.
pub fn await_convergence(
    a: &mut DaemonProc,
    b: &mut DaemonProc,
    min_docs: u64,
    deadline: Duration,
) {
    let start = Instant::now();
    let mut last = (String::new(), String::new(), 0, 0);
    while start.elapsed() < deadline {
        let (ha, da) = a.snapshot();
        let (hb, db) = b.snapshot();
        if ha == hb && da >= min_docs && db >= min_docs {
            return;
        }
        last = (ha, hb, da, db);
        std::thread::sleep(Duration::from_millis(40));
    }
    panic!(
        "no convergence within {deadline:?}: {}={} ({} docs) vs {}={} ({} docs)",
        a.name, last.0, last.2, b.name, last.1, last.3
    );
}
