//! The daemon's control protocol: newline-delimited JSON commands in,
//! one JSON reply line out per command.
//!
//! This is how tests, the bench harness, and operators drive a running
//! daemon: the binary bridges stdin/stdout to the reactor through an
//! mpsc channel, and in-process embedders send [`ControlMsg`]s directly.
//! Replies are emitted with the vendored `serde_json`'s streaming
//! `to_writer`, so a large snapshot never buffers twice.

use std::sync::mpsc::Sender;

use serde::Value;

/// One parsed control command.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlCmd {
    /// Insert `text` at position hint `at` (reduced modulo the live
    /// length) in document `doc`, authored by local session 0.
    Edit {
        /// Target document id.
        doc: u64,
        /// Raw position hint.
        at: u64,
        /// Text to insert.
        text: String,
    },
    /// Generate and apply a deterministic fleet workload.
    Script {
        /// Document population.
        docs: u64,
        /// Editing session slots.
        sessions: usize,
        /// Edit operation count.
        edits: usize,
        /// Workload seed.
        seed: u64,
    },
    /// Report the canonical snapshot hash (and texts when `full`).
    Snapshot {
        /// Include every document's text in the reply.
        full: bool,
    },
    /// Report connection and traffic counters.
    Status,
    /// Force checkpoints on every document past its cadence.
    Checkpoint,
    /// Start an anti-entropy round with every established peer now.
    SyncNow,
    /// Checkpoint and exit the reactor loop.
    Shutdown,
}

/// A command plus the channel its reply must be sent on.
#[derive(Debug)]
pub struct ControlMsg {
    /// The command.
    pub cmd: ControlCmd,
    /// Where the reactor sends the JSON reply.
    pub reply: Sender<Value>,
}

/// Builds a JSON object value (field order preserved).
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// An error reply.
pub fn err_reply(msg: &str) -> Value {
    obj(vec![
        ("ok", Value::Bool(false)),
        ("error", Value::Str(msg.to_owned())),
    ])
}

fn get_u64(v: &Value, key: &str) -> Result<u64, String> {
    match v.get_field(key) {
        Some(Value::UInt(n)) => Ok(*n),
        Some(_) => Err(format!("field `{key}` must be a non-negative integer")),
        None => Err(format!("missing field `{key}`")),
    }
}

fn get_u64_or(v: &Value, key: &str, default: u64) -> Result<u64, String> {
    match v.get_field(key) {
        None => Ok(default),
        Some(Value::UInt(n)) => Ok(*n),
        Some(_) => Err(format!("field `{key}` must be a non-negative integer")),
    }
}

fn get_bool_or(v: &Value, key: &str, default: bool) -> Result<bool, String> {
    match v.get_field(key) {
        None => Ok(default),
        Some(Value::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("field `{key}` must be a boolean")),
    }
}

/// Parses one command line. The shape is `{"cmd": "<name>", ...args}`.
pub fn parse_cmd(line: &str) -> Result<ControlCmd, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| e.to_string())?;
    let name = match v.get_field("cmd") {
        Some(Value::Str(s)) => s.clone(),
        _ => return Err("missing string field `cmd`".to_owned()),
    };
    match name.as_str() {
        "edit" => {
            let text = match v.get_field("text") {
                Some(Value::Str(s)) => s.clone(),
                _ => return Err("missing string field `text`".to_owned()),
            };
            Ok(ControlCmd::Edit {
                doc: get_u64(&v, "doc")?,
                at: get_u64_or(&v, "at", 0)?,
                text,
            })
        }
        "script" => Ok(ControlCmd::Script {
            docs: get_u64_or(&v, "docs", 16)?,
            sessions: get_u64_or(&v, "sessions", 8)? as usize,
            edits: get_u64_or(&v, "edits", 256)? as usize,
            seed: get_u64_or(&v, "seed", 1)?,
        }),
        "snapshot" => Ok(ControlCmd::Snapshot {
            full: get_bool_or(&v, "full", false)?,
        }),
        "status" => Ok(ControlCmd::Status),
        "checkpoint" => Ok(ControlCmd::Checkpoint),
        "sync_now" => Ok(ControlCmd::SyncNow),
        "shutdown" => Ok(ControlCmd::Shutdown),
        other => Err(format!("unknown command `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        assert_eq!(
            parse_cmd(r#"{"cmd":"edit","doc":3,"at":7,"text":"hi"}"#).unwrap(),
            ControlCmd::Edit {
                doc: 3,
                at: 7,
                text: "hi".into()
            }
        );
        assert_eq!(
            parse_cmd(r#"{"cmd":"script","docs":4,"sessions":2,"edits":100,"seed":9}"#).unwrap(),
            ControlCmd::Script {
                docs: 4,
                sessions: 2,
                edits: 100,
                seed: 9
            }
        );
        assert_eq!(
            parse_cmd(r#"{"cmd":"snapshot","full":true}"#).unwrap(),
            ControlCmd::Snapshot { full: true }
        );
        assert_eq!(
            parse_cmd(r#"{"cmd":"status"}"#).unwrap(),
            ControlCmd::Status
        );
        assert_eq!(
            parse_cmd(r#"{"cmd":"checkpoint"}"#).unwrap(),
            ControlCmd::Checkpoint
        );
        assert_eq!(
            parse_cmd(r#"{"cmd":"sync_now"}"#).unwrap(),
            ControlCmd::SyncNow
        );
        assert_eq!(
            parse_cmd(r#"{"cmd":"shutdown"}"#).unwrap(),
            ControlCmd::Shutdown
        );
    }

    #[test]
    fn defaults_fill_in() {
        assert_eq!(
            parse_cmd(r#"{"cmd":"edit","doc":1,"text":"x"}"#).unwrap(),
            ControlCmd::Edit {
                doc: 1,
                at: 0,
                text: "x".into()
            }
        );
        assert_eq!(
            parse_cmd(r#"{"cmd":"snapshot"}"#).unwrap(),
            ControlCmd::Snapshot { full: false }
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_cmd("not json").is_err());
        assert!(parse_cmd(r#"{"cmd":"nope"}"#).is_err());
        assert!(parse_cmd(r#"{"cmd":"edit","doc":"three","text":"x"}"#).is_err());
        assert!(parse_cmd(r#"{"no_cmd":true}"#).is_err());
    }
}
