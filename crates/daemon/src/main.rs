//! `eg-daemon`: the cross-process sync daemon binary.
//!
//! Listens on a Unix-domain socket, dials configured peers (with
//! reconnect backoff), and bridges a newline-delimited JSON control
//! protocol between stdin and stdout — one reply line per command line
//! (see `crates/daemon/README.md` for the command set). Logs go to
//! stderr.
//!
//! ```text
//! eg-daemon --name alpha --socket /tmp/a.sock \
//!           --peer /tmp/b.sock --persist /var/lib/eg/alpha
//! ```

use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::mpsc;
use std::time::Duration;

use eg_daemon::control::{err_reply, ControlMsg};
use eg_daemon::{parse_cmd, Daemon, DaemonConfig};

fn usage() -> &'static str {
    "usage: eg-daemon --name NAME --socket PATH [options]\n\
     \n\
     options:\n\
       --name NAME          replica name (unique per deployment)\n\
       --socket PATH        Unix socket to listen on\n\
       --peer PATH          peer socket to dial (repeatable)\n\
       --persist DIR        segment-store directory (omit for in-memory)\n\
       --workers N          worker threads (default 2)\n\
       --sync-ms N          digest round period (default 200)\n\
       --heartbeat-ms N     heartbeat interval (default 500)\n\
       --timeout-ms N       heartbeat timeout (default 3000)\n\
       --backoff-base-ms N  first reconnect delay (default 50)\n\
       --backoff-cap-ms N   reconnect delay cap (default 2000)\n\
       --seed N             jitter seed (default 1)\n"
}

fn parse_args(args: &[String]) -> Result<DaemonConfig, String> {
    let mut cfg = DaemonConfig::default();
    let mut socket_set = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--name" => cfg.name = grab("--name")?,
            "--socket" => {
                cfg.socket = PathBuf::from(grab("--socket")?);
                socket_set = true;
            }
            "--peer" => cfg.peers.push(PathBuf::from(grab("--peer")?)),
            "--persist" => cfg.persist_dir = Some(PathBuf::from(grab("--persist")?)),
            "--workers" => {
                cfg.workers = grab("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be a number".to_owned())?
            }
            "--sync-ms" => cfg.sync_interval = ms(&grab("--sync-ms")?, "--sync-ms")?,
            "--heartbeat-ms" => {
                cfg.heartbeat_interval = ms(&grab("--heartbeat-ms")?, "--heartbeat-ms")?
            }
            "--timeout-ms" => cfg.heartbeat_timeout = ms(&grab("--timeout-ms")?, "--timeout-ms")?,
            "--backoff-base-ms" => {
                cfg.backoff_base = ms(&grab("--backoff-base-ms")?, "--backoff-base-ms")?
            }
            "--backoff-cap-ms" => {
                cfg.backoff_cap = ms(&grab("--backoff-cap-ms")?, "--backoff-cap-ms")?
            }
            "--seed" => {
                cfg.seed = grab("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be a number".to_owned())?
            }
            "--help" | "-h" => return Err(usage().to_owned()),
            other => return Err(format!("unknown flag `{other}`\n\n{}", usage())),
        }
    }
    if !socket_set {
        return Err(format!("--socket is required\n\n{}", usage()));
    }
    Ok(cfg)
}

fn ms(s: &str, flag: &str) -> Result<Duration, String> {
    s.parse::<u64>()
        .map(Duration::from_millis)
        .map_err(|_| format!("{flag} must be milliseconds"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let name = cfg.name.clone();
    let daemon = match Daemon::new(cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("[{name}] failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Stdin bridge: one thread reads command lines and relays them to
    // the reactor; each reply is streamed to stdout as one JSON line.
    let (tx, rx) = mpsc::channel::<ControlMsg>();
    let bridge = std::thread::Builder::new()
        .name("eg-daemon-stdin".to_owned())
        .spawn(move || {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            for line in stdin.lock().lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let reply_value = match parse_cmd(&line) {
                    Ok(cmd) => {
                        let (reply_tx, reply_rx) = mpsc::channel();
                        if tx
                            .send(ControlMsg {
                                cmd,
                                reply: reply_tx,
                            })
                            .is_err()
                        {
                            break;
                        }
                        match reply_rx.recv() {
                            Ok(v) => v,
                            Err(_) => break,
                        }
                    }
                    Err(e) => err_reply(&e),
                };
                let mut out = stdout.lock();
                if serde_json::to_writer(&mut out, &reply_value).is_err() {
                    break;
                }
                if out.write_all(b"\n").and_then(|_| out.flush()).is_err() {
                    break;
                }
            }
            // Stdin closed: dropping the sender shuts the reactor down.
        });
    if bridge.is_err() {
        eprintln!("[{name}] failed to start stdin bridge");
        return ExitCode::FAILURE;
    }

    daemon.run(rx);
    ExitCode::SUCCESS
}
