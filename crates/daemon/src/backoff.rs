//! [`Backoff`]: the reconnect retry policy — capped exponential delay
//! with deterministic jitter.
//!
//! Every failed dial doubles the delay up to a cap; a deterministic
//! jitter (SplitMix64 over `seed ^ attempt`) spreads reconnect storms
//! without making runs irreproducible: the same seed and attempt number
//! always yield the same delay, so fault-schedule replays are exact.
//!
//! | attempt | base 50ms, cap 5s (jitter ∈ [½·delay, delay]) |
//! |--------:|-----------------------------------------------|
//! | 0       | 25–50 ms                                      |
//! | 1       | 50–100 ms                                     |
//! | 2       | 100–200 ms                                    |
//! | 4       | 400–800 ms                                    |
//! | 7+      | 2.5–5 s (capped)                              |

use std::time::Duration;

/// SplitMix64: a tiny, well-mixed 64-bit hash used as the jitter source.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Capped exponential backoff with deterministic "equal jitter": each
/// delay is drawn from `[½·delay, delay]` where `delay = min(cap, base ·
/// 2^attempt)`.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    seed: u64,
    attempt: u32,
}

impl Backoff {
    /// A policy starting at `base`, doubling per attempt, capped at
    /// `cap`, jittered deterministically from `seed`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff {
            base: base.max(Duration::from_millis(1)),
            cap: cap.max(base),
            seed,
            attempt: 0,
        }
    }

    /// The delay before the next dial, advancing the attempt counter.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(20);
        let raw = self.base.saturating_mul(1u32 << exp.min(31)).min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        let raw_ms = raw.as_millis() as u64;
        let half = (raw_ms / 2).max(1);
        let jitter = splitmix64(self.seed ^ u64::from(self.attempt)) % half;
        Duration::from_millis(raw_ms - jitter)
    }

    /// Dials made since the last [`Backoff::reset`].
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Called after a successful handshake: the next failure starts the
    /// ladder over from `base`.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap() {
        let mut b = Backoff::new(Duration::from_millis(50), Duration::from_secs(5), 7);
        let delays: Vec<Duration> = (0..12).map(|_| b.next_delay()).collect();
        // Each delay sits in (0, cap]; the deterministic upper envelope
        // doubles until the cap.
        for (i, d) in delays.iter().enumerate() {
            let ceiling =
                Duration::from_millis(50 * (1u64 << i.min(7))).min(Duration::from_secs(5));
            assert!(*d <= ceiling, "attempt {i}: {d:?} > {ceiling:?}");
            assert!(
                *d >= ceiling / 2,
                "attempt {i}: {d:?} < half of {ceiling:?}"
            );
        }
        assert!(delays[11] >= Duration::from_millis(2500));
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut b = Backoff::new(Duration::from_millis(10), Duration::from_secs(1), seed);
            (0..8).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn reset_restarts_the_ladder() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_secs(1), 3);
        for _ in 0..6 {
            b.next_delay();
        }
        assert_eq!(b.attempt(), 6);
        b.reset();
        assert_eq!(b.attempt(), 0);
        assert!(b.next_delay() <= Duration::from_millis(10));
    }
}
