//! [`PeerSession`]: the per-connection actor — handshake, anti-entropy
//! rounds, heartbeats — plus its bounded [`PeerOutbox`].
//!
//! The session is a pure state machine over [`WireFrame`]s and clock
//! ticks; it never touches a socket, which is what makes it unit-testable
//! without I/O. The daemon's reactor feeds it decoded frames and drains
//! its outbox into the peer's stream.
//!
//! ```text
//!            connect/accept
//!                  │ queue Hello
//!                  ▼
//!           ┌─────────────┐   Hello(proto, name)    ┌─────────────┐
//!           │ AwaitHello  │ ───────────────────────▶│ Established │
//!           └─────────────┘   (version checked)     └─────────────┘
//!                  │                                  │  Digest ⇄ Bundles
//!       bad proto / timeout                           │  Ping ⇄ Pong
//!                  ▼                                  ▼
//!               closed ◀──────── heartbeat timeout / decode error
//! ```
//!
//! Anti-entropy is pull-terminated: a received `Digest` is answered with
//! `Bundles` only when the peer actually lacks events; received `Bundles`
//! are integrated and acknowledged with a fresh `Digest` (which doubles
//! as the pull for anything still missing). Converged peers fall silent
//! apart from heartbeats, and the daemon's periodic digest timer restarts
//! a round after any loss.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use eg_server::ServerHost;
use eg_sync::frame::{WireFrame, PROTOCOL_VERSION};
use eg_sync::Message;

/// Max documents per Sync frame: keeps encoded frames far below the
/// decoder's 16 MiB guard for realistic bundle sizes.
const BUNDLE_DOCS_PER_FRAME: usize = 32;

/// Where a connection is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Connected; our Hello is queued, theirs has not arrived yet.
    AwaitHello,
    /// Handshake complete: anti-entropy and heartbeats are live.
    Established,
}

/// Why a session must be torn down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// Peer speaks an incompatible protocol version.
    ProtocolMismatch {
        /// Version the peer announced.
        theirs: u32,
    },
    /// Peer sent a sync/ping frame before its Hello.
    HandshakeViolation,
    /// Nothing received for longer than the heartbeat timeout: the
    /// connection is presumed half-open.
    HeartbeatTimeout,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::ProtocolMismatch { theirs } => {
                write!(
                    f,
                    "peer speaks protocol v{theirs}, we speak v{PROTOCOL_VERSION}"
                )
            }
            SessionError::HandshakeViolation => write!(f, "frame received before Hello"),
            SessionError::HeartbeatTimeout => write!(f, "heartbeat timeout (half-open link)"),
        }
    }
}

/// Session tuning knobs (all deterministic; no randomness here).
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Send a Ping when nothing has been sent for this long.
    pub heartbeat_interval: Duration,
    /// Presume the link dead when nothing arrives for this long.
    pub heartbeat_timeout: Duration,
    /// Outbox budget in bytes; exceeding it sheds queued sync frames
    /// and schedules a fresh digest resync instead.
    pub outbox_cap_bytes: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            heartbeat_interval: Duration::from_millis(500),
            heartbeat_timeout: Duration::from_secs(3),
            outbox_cap_bytes: 8 * 1024 * 1024,
        }
    }
}

/// Per-session traffic counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionStats {
    /// Frames handed to the outbox (after shedding).
    pub frames_out: usize,
    /// Frames received and processed.
    pub frames_in: usize,
    /// Bundle batches integrated.
    pub batches_in: usize,
    /// Times the outbox shed its queue under pressure.
    pub sheds: usize,
}

/// A bounded queue of encoded frames awaiting the socket. Overflow policy
/// is *shed-and-resync*: rather than let a slow or dead peer grow an
/// unbounded queue (or block everyone else), the queue is dropped
/// wholesale and the session schedules one fresh digest once the link
/// drains — anti-entropy re-derives exactly what the peer still needs.
#[derive(Debug, Default)]
pub struct PeerOutbox {
    frames: VecDeque<Vec<u8>>,
    queued_bytes: usize,
    cap_bytes: usize,
    needs_resync: bool,
}

impl PeerOutbox {
    fn new(cap_bytes: usize) -> PeerOutbox {
        PeerOutbox {
            frames: VecDeque::new(),
            queued_bytes: 0,
            cap_bytes: cap_bytes.max(1),
            needs_resync: false,
        }
    }

    /// Queues an encoded frame; returns `false` if the budget was blown
    /// and the queue shed instead.
    fn push(&mut self, frame: Vec<u8>) -> bool {
        if self.queued_bytes.saturating_add(frame.len()) > self.cap_bytes {
            self.frames.clear();
            self.queued_bytes = 0;
            self.needs_resync = true;
            return false;
        }
        self.queued_bytes += frame.len();
        self.frames.push_back(frame);
        true
    }

    /// Next frame to write, if any.
    pub fn pop(&mut self) -> Option<Vec<u8>> {
        let f = self.frames.pop_front()?;
        self.queued_bytes -= f.len();
        Some(f)
    }

    /// Queued frame count.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Bytes currently queued.
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }
}

/// The per-connection actor; see the module docs for the state diagram.
#[derive(Debug)]
pub struct PeerSession {
    cfg: SessionConfig,
    state: SessionState,
    peer_name: Option<String>,
    outbox: PeerOutbox,
    last_recv: Instant,
    last_send: Instant,
    next_ping_nonce: u64,
    stats: SessionStats,
}

impl PeerSession {
    /// A fresh session for a just-connected link; queues our Hello.
    pub fn connect(now: Instant, local_name: &str, cfg: SessionConfig) -> PeerSession {
        let outbox = PeerOutbox::new(cfg.outbox_cap_bytes);
        let mut s = PeerSession {
            cfg,
            state: SessionState::AwaitHello,
            peer_name: None,
            outbox,
            last_recv: now,
            last_send: now,
            next_ping_nonce: 1,
            stats: SessionStats::default(),
        };
        s.queue(
            now,
            &WireFrame::Hello {
                proto: PROTOCOL_VERSION,
                name: local_name.to_owned(),
            },
        );
        s
    }

    /// Current lifecycle state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// The peer's replica name, once its Hello arrived.
    pub fn peer_name(&self) -> Option<&str> {
        self.peer_name.as_deref()
    }

    /// Traffic counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// The send queue (the reactor drains it into the socket).
    pub fn outbox(&mut self) -> &mut PeerOutbox {
        &mut self.outbox
    }

    /// Bytes queued for this peer right now.
    pub fn outbox_bytes(&self) -> usize {
        self.outbox.queued_bytes()
    }

    fn queue(&mut self, now: Instant, frame: &WireFrame) {
        if self.outbox.push(frame.encode()) {
            self.stats.frames_out += 1;
            self.last_send = now;
        } else {
            self.stats.sheds += 1;
        }
    }

    /// Queues a digest of `host`'s whole shard space — the opening move
    /// of an anti-entropy round (and the resync after a shed).
    pub fn queue_digest(&mut self, now: Instant, host: &ServerHost) {
        if self.state == SessionState::Established {
            self.queue(now, &WireFrame::Sync(Message::Digest(host.digest_all())));
        }
    }

    /// Handles one decoded frame against the local host. `Ok(true)`
    /// means the frame advanced sync state (useful for quiescence
    /// detection); errors mean the connection must be dropped.
    pub fn on_frame(
        &mut self,
        now: Instant,
        frame: WireFrame,
        host: &ServerHost,
    ) -> Result<bool, SessionError> {
        self.last_recv = now;
        self.stats.frames_in += 1;
        match (self.state, frame) {
            (SessionState::AwaitHello, WireFrame::Hello { proto, name }) => {
                if proto != PROTOCOL_VERSION {
                    return Err(SessionError::ProtocolMismatch { theirs: proto });
                }
                self.peer_name = Some(name);
                self.state = SessionState::Established;
                // Open the first anti-entropy round immediately.
                self.queue(now, &WireFrame::Sync(Message::Digest(host.digest_all())));
                Ok(true)
            }
            (SessionState::AwaitHello, _) => Err(SessionError::HandshakeViolation),
            (SessionState::Established, WireFrame::Hello { .. }) => {
                // A duplicate Hello is harmless (the peer may have raced
                // a reconnect); ignore it.
                Ok(false)
            }
            (SessionState::Established, WireFrame::Ping(nonce)) => {
                self.queue(now, &WireFrame::Pong(nonce));
                Ok(false)
            }
            (SessionState::Established, WireFrame::Pong(_)) => Ok(false),
            (SessionState::Established, WireFrame::Sync(Message::Digest(remote))) => {
                let bundles = host.bundles_for(&remote);
                if bundles.is_empty() {
                    Ok(false)
                } else {
                    // Chunk by document so no single frame approaches the
                    // decoder's max-frame guard on a large backlog.
                    for chunk in bundles.chunks(BUNDLE_DOCS_PER_FRAME) {
                        self.queue(now, &WireFrame::Sync(Message::Bundles(chunk.to_vec())));
                    }
                    Ok(true)
                }
            }
            (SessionState::Established, WireFrame::Sync(Message::Bundles(batch))) => {
                self.stats.batches_in += 1;
                host.receive_bundles(batch);
                host.flush();
                // Acknowledge with our updated digest: the peer sees the
                // new frontier (sends nothing more if we're caught up)
                // and ships anything we still lack — resume-from-frontier
                // in both directions.
                self.queue(now, &WireFrame::Sync(Message::Digest(host.digest_all())));
                Ok(true)
            }
        }
    }

    /// Clock tick: emits a heartbeat when the link has been send-idle,
    /// and reports a half-open link when nothing has arrived within the
    /// timeout.
    pub fn on_tick(&mut self, now: Instant) -> Result<(), SessionError> {
        if now.duration_since(self.last_recv) >= self.cfg.heartbeat_timeout {
            return Err(SessionError::HeartbeatTimeout);
        }
        if self.state == SessionState::Established
            && now.duration_since(self.last_send) >= self.cfg.heartbeat_interval
        {
            let nonce = self.next_ping_nonce;
            self.next_ping_nonce = self.next_ping_nonce.wrapping_add(1);
            self.queue(now, &WireFrame::Ping(nonce));
        }
        Ok(())
    }

    /// Called by the reactor when the outbox has fully drained: if a shed
    /// happened, start the recovery digest round.
    pub fn on_drained(&mut self, now: Instant, host: &ServerHost) {
        if self.outbox.needs_resync && self.outbox.is_empty() {
            self.outbox.needs_resync = false;
            self.queue_digest(now, host);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eg_server::ServerConfig;
    use eg_sync::frame::FrameDecoder;

    fn host(name: &str) -> ServerHost {
        ServerHost::with_config(ServerConfig {
            name: name.into(),
            workers: 1,
            ..ServerConfig::default()
        })
    }

    fn edit(h: &ServerHost, doc: u64, text: &str) {
        let script: std::sync::Arc<[eg_trace::FleetOp]> = vec![eg_trace::FleetOp::Insert {
            session: 0,
            doc,
            at: 0,
            text: text.into(),
        }]
        .into();
        h.submit_script(&script);
        h.flush();
    }

    /// Drains every queued frame of `from` into `to`, returning how many
    /// crossed and whether any advanced sync state.
    fn pump(
        from: &mut PeerSession,
        to: &mut PeerSession,
        to_host: &ServerHost,
        now: Instant,
    ) -> usize {
        let mut moved = 0;
        let mut dec = FrameDecoder::new();
        while let Some(bytes) = from.outbox().pop() {
            dec.push(&bytes);
            while let Some(frame) = dec.next_wire_frame().expect("well-formed") {
                to.on_frame(now, frame, to_host).expect("session ok");
                moved += 1;
            }
        }
        moved
    }

    #[test]
    fn handshake_then_convergence_via_frames() {
        let now = Instant::now();
        let ha = host("alpha");
        let hb = host("beta");
        edit(&ha, 1, "from-alpha ");
        edit(&hb, 2, "from-beta ");

        let mut sa = PeerSession::connect(now, "alpha", SessionConfig::default());
        let mut sb = PeerSession::connect(now, "beta", SessionConfig::default());
        assert_eq!(sa.state(), SessionState::AwaitHello);

        // Ping-pong frames until both outboxes drain.
        for _ in 0..10 {
            let a2b = pump(&mut sa, &mut sb, &hb, now);
            let b2a = pump(&mut sb, &mut sa, &ha, now);
            if a2b == 0 && b2a == 0 {
                break;
            }
        }
        assert_eq!(sa.state(), SessionState::Established);
        assert_eq!(sa.peer_name(), Some("beta"));
        assert_eq!(sb.peer_name(), Some("alpha"));
        assert!(ha.converged_with(&hb), "both docs on both hosts");
        assert!(sa.stats().batches_in >= 1);
    }

    #[test]
    fn protocol_mismatch_is_fatal() {
        let now = Instant::now();
        let h = host("x");
        let mut s = PeerSession::connect(now, "x", SessionConfig::default());
        let err = s
            .on_frame(
                now,
                WireFrame::Hello {
                    proto: PROTOCOL_VERSION + 1,
                    name: "future".into(),
                },
                &h,
            )
            .unwrap_err();
        assert!(matches!(err, SessionError::ProtocolMismatch { .. }));
    }

    #[test]
    fn sync_before_hello_is_a_violation() {
        let now = Instant::now();
        let h = host("x");
        let mut s = PeerSession::connect(now, "x", SessionConfig::default());
        let err = s.on_frame(now, WireFrame::Ping(1), &h).unwrap_err();
        assert_eq!(err, SessionError::HandshakeViolation);
    }

    #[test]
    fn heartbeat_timeout_detects_half_open() {
        let now = Instant::now();
        let cfg = SessionConfig {
            heartbeat_timeout: Duration::from_millis(10),
            ..SessionConfig::default()
        };
        let mut s = PeerSession::connect(now, "x", cfg);
        assert!(s.on_tick(now).is_ok());
        let later = now + Duration::from_millis(50);
        assert_eq!(s.on_tick(later), Err(SessionError::HeartbeatTimeout));
    }

    #[test]
    fn idle_established_session_pings() {
        let now = Instant::now();
        let h = host("x");
        let cfg = SessionConfig {
            heartbeat_interval: Duration::from_millis(5),
            heartbeat_timeout: Duration::from_secs(60),
            ..SessionConfig::default()
        };
        let mut s = PeerSession::connect(now, "x", cfg);
        s.on_frame(
            now,
            WireFrame::Hello {
                proto: PROTOCOL_VERSION,
                name: "peer".into(),
            },
            &h,
        )
        .unwrap();
        while s.outbox().pop().is_some() {}
        let later = now + Duration::from_millis(20);
        s.on_tick(later).unwrap();
        let bytes = s.outbox().pop().expect("a ping was queued");
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert!(matches!(
            dec.next_wire_frame().unwrap(),
            Some(WireFrame::Ping(_))
        ));
    }

    #[test]
    fn overflow_sheds_and_resyncs_on_drain() {
        let now = Instant::now();
        let h = host("big");
        edit(&h, 1, "seed ");
        let cfg = SessionConfig {
            outbox_cap_bytes: 96, // tiny: Hello fits, a digest flood does not
            ..SessionConfig::default()
        };
        let mut s = PeerSession::connect(now, "big", cfg);
        s.on_frame(
            now,
            WireFrame::Hello {
                proto: PROTOCOL_VERSION,
                name: "peer".into(),
            },
            &h,
        )
        .unwrap();
        // Flood digests until the budget blows and the queue sheds.
        for _ in 0..64 {
            s.queue_digest(now, &h);
        }
        assert!(s.stats().sheds > 0, "budget forced a shed");
        assert!(s.outbox().queued_bytes() <= 96);
        // Drain whatever survived, then the drain hook queues exactly
        // one recovery digest.
        while s.outbox().pop().is_some() {}
        s.on_drained(now, &h);
        assert_eq!(s.outbox().len(), 1, "one resync digest queued");
    }
}
