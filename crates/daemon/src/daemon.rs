//! [`Daemon`]: a hand-rolled non-blocking reactor hosting a
//! [`ServerHost`] behind a Unix-domain socket.
//!
//! One thread runs the event loop; the heavy lifting (walk/merge,
//! persistence, wire encoding) stays on the host's shard-affinity
//! worker pool. The loop multiplexes, per iteration:
//!
//! 1. control commands (tests, the CLI bridge, the bench harness);
//! 2. accepting inbound connections (non-blocking listener);
//! 3. dialing configured peers whose backoff delay has elapsed;
//! 4. draining readable sockets into per-connection [`FrameDecoder`]s
//!    and feeding decoded frames to each [`PeerSession`];
//! 5. timers — the periodic digest round, per-session heartbeats, and
//!    half-open detection;
//! 6. flushing per-session outboxes to writable sockets.
//!
//! There is no `epoll` (the workspace is std-only by constraint):
//! sockets are non-blocking and the loop sleeps ~1ms when an iteration
//! makes no progress, which bounds idle CPU while keeping sync latency
//! in the low milliseconds — ample for a collaboration daemon.
//!
//! Failure policy: any socket error, decode error, or session violation
//! tears down that one connection; dialed peers re-enter the
//! [`Backoff`] ladder and resume from the frontier on reconnect (the
//! handshake's first digest is the resume point). The daemon itself
//! never panics on remote input.

use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::time::{Duration, Instant};

use eg_dag::RemoteId;
use eg_server::{ServerConfig, ServerHost};
use eg_sync::frame::FrameDecoder;
use eg_sync::DocId;
use eg_trace::{fleet_workload, FleetOp, FleetSpec};
use serde::Value;

use crate::backoff::{splitmix64, Backoff};
use crate::control::{obj, ControlCmd, ControlMsg};
use crate::peer::{PeerSession, SessionConfig, SessionState};

/// Everything a daemon needs to run; see field docs for defaults.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Replica name (namespaces session agents; must be unique per
    /// daemon in a deployment).
    pub name: String,
    /// Unix-domain socket path to listen on (a stale file is removed).
    pub socket: PathBuf,
    /// Peer socket paths this daemon dials and keeps dialed.
    pub peers: Vec<PathBuf>,
    /// Worker threads for the embedded host.
    pub workers: usize,
    /// Segment-store directory; `None` runs in-memory.
    pub persist_dir: Option<PathBuf>,
    /// Checkpoint cadence (events past last checkpoint).
    pub checkpoint_every: usize,
    /// Period of the digest round opening anti-entropy with every
    /// established peer.
    pub sync_interval: Duration,
    /// Heartbeat send interval (per session).
    pub heartbeat_interval: Duration,
    /// Half-open detection: drop a session silent for this long.
    pub heartbeat_timeout: Duration,
    /// First reconnect delay.
    pub backoff_base: Duration,
    /// Reconnect delay cap.
    pub backoff_cap: Duration,
    /// Per-peer outbox budget in bytes (shed-and-resync past it).
    pub outbox_cap_bytes: usize,
    /// Seed for deterministic backoff jitter.
    pub seed: u64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            name: "daemon".to_owned(),
            socket: PathBuf::from("eg-daemon.sock"),
            peers: Vec::new(),
            workers: 2,
            persist_dir: None,
            checkpoint_every: 512,
            sync_interval: Duration::from_millis(200),
            heartbeat_interval: Duration::from_millis(500),
            heartbeat_timeout: Duration::from_secs(3),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            outbox_cap_bytes: 8 * 1024 * 1024,
            seed: 1,
        }
    }
}

/// Daemon-wide traffic and lifecycle counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct DaemonStats {
    /// Raw socket bytes read.
    pub bytes_in: u64,
    /// Raw socket bytes written.
    pub bytes_out: u64,
    /// Connections accepted.
    pub accepted: usize,
    /// Dials that reached Established after a previous connection (the
    /// reconnect count).
    pub reconnects: usize,
    /// Connections torn down (EOF, error, timeout, violation).
    pub disconnects: usize,
    /// Frames that failed to decode (connection dropped, state intact).
    pub decode_errors: usize,
}

struct Conn {
    stream: UnixStream,
    session: PeerSession,
    decoder: FrameDecoder,
    /// Frame currently being written, and how much of it has gone out.
    write_cur: Vec<u8>,
    write_pos: usize,
    /// Back-pointer into `dials` when this daemon initiated the link.
    dial_slot: Option<usize>,
}

struct DialSlot {
    path: PathBuf,
    backoff: Backoff,
    due: Instant,
    conn: Option<usize>,
    ever_connected: bool,
}

/// The reactor; construct with [`Daemon::new`], drive with
/// [`Daemon::run`] (blocking) or [`Daemon::spawn`] (own thread).
pub struct Daemon {
    config: DaemonConfig,
    host: ServerHost,
    listener: UnixListener,
    conns: Vec<Option<Conn>>,
    dials: Vec<DialSlot>,
    stats: DaemonStats,
    last_sync: Instant,
    edit_session_counter: u32,
}

impl Daemon {
    /// Binds the listen socket (replacing a stale file) and reopens
    /// persisted documents warm.
    pub fn new(config: DaemonConfig) -> io::Result<Daemon> {
        let _ = std::fs::remove_file(&config.socket);
        let listener = UnixListener::bind(&config.socket)?;
        listener.set_nonblocking(true)?;
        let host = ServerHost::with_config(ServerConfig {
            name: config.name.clone(),
            workers: config.workers.max(1),
            persist_dir: config.persist_dir.clone(),
            checkpoint_every: config.checkpoint_every,
            ..ServerConfig::default()
        });
        let now = Instant::now();
        let dials = config
            .peers
            .iter()
            .enumerate()
            .map(|(i, path)| DialSlot {
                path: path.clone(),
                backoff: Backoff::new(
                    config.backoff_base,
                    config.backoff_cap,
                    splitmix64(config.seed ^ (i as u64)),
                ),
                due: now,
                conn: None,
                ever_connected: false,
            })
            .collect();
        Ok(Daemon {
            config,
            host,
            listener,
            conns: Vec::new(),
            dials,
            stats: DaemonStats::default(),
            last_sync: now,
            edit_session_counter: 0,
        })
    }

    /// The embedded host (for in-process embedders and tests).
    pub fn host(&self) -> &ServerHost {
        &self.host
    }

    /// Runs the daemon on its own thread, returning a control handle.
    pub fn spawn(config: DaemonConfig) -> io::Result<DaemonHandle> {
        let daemon = Daemon::new(config)?;
        let (tx, rx) = std::sync::mpsc::channel();
        let thread = std::thread::Builder::new()
            .name("eg-daemon".to_owned())
            .spawn(move || daemon.run(rx))?;
        Ok(DaemonHandle { ctrl: tx, thread })
    }

    fn session_config(&self) -> SessionConfig {
        SessionConfig {
            heartbeat_interval: self.config.heartbeat_interval,
            heartbeat_timeout: self.config.heartbeat_timeout,
            outbox_cap_bytes: self.config.outbox_cap_bytes,
        }
    }

    fn add_conn(&mut self, stream: UnixStream, dial_slot: Option<usize>) -> io::Result<usize> {
        stream.set_nonblocking(true)?;
        let conn = Conn {
            stream,
            session: PeerSession::connect(Instant::now(), &self.config.name, self.session_config()),
            decoder: FrameDecoder::new(),
            write_cur: Vec::new(),
            write_pos: 0,
            dial_slot,
        };
        let idx = self
            .conns
            .iter()
            .position(Option::is_none)
            .unwrap_or(self.conns.len());
        if idx == self.conns.len() {
            self.conns.push(Some(conn));
        } else {
            self.conns[idx] = Some(conn);
        }
        Ok(idx)
    }

    fn close_conn(&mut self, idx: usize, why: &str) {
        if let Some(conn) = self.conns[idx].take() {
            self.stats.disconnects += 1;
            let peer = conn.session.peer_name().unwrap_or("<pre-hello>").to_owned();
            eprintln!(
                "[{}] dropping connection to {peer}: {why}",
                self.config.name
            );
            if let Some(slot_idx) = conn.dial_slot {
                let slot = &mut self.dials[slot_idx];
                slot.conn = None;
                slot.due = Instant::now() + slot.backoff.next_delay();
            }
        }
    }

    /// One reactor pass; returns `true` when any I/O or timer progressed
    /// (so the caller knows whether to sleep).
    fn poll_once(&mut self) -> bool {
        let mut progress = false;
        let now = Instant::now();

        // Accept inbound connections.
        loop {
            match self.listener.accept() {
                Ok((stream, _addr)) => {
                    self.stats.accepted += 1;
                    if self.add_conn(stream, None).is_ok() {
                        progress = true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => {
                    eprintln!("[{}] accept error: {e}", self.config.name);
                    break;
                }
            }
        }

        // Dial due peers.
        for i in 0..self.dials.len() {
            if self.dials[i].conn.is_some() || now < self.dials[i].due {
                continue;
            }
            let path = self.dials[i].path.clone();
            match UnixStream::connect(&path) {
                Ok(stream) => match self.add_conn(stream, Some(i)) {
                    Ok(idx) => {
                        self.dials[i].conn = Some(idx);
                        progress = true;
                    }
                    Err(_) => {
                        let delay = self.dials[i].backoff.next_delay();
                        self.dials[i].due = now + delay;
                    }
                },
                Err(_) => {
                    let delay = self.dials[i].backoff.next_delay();
                    self.dials[i].due = now + delay;
                }
            }
        }

        // Periodic digest round.
        if now.duration_since(self.last_sync) >= self.config.sync_interval {
            self.last_sync = now;
            self.sync_now(now);
        }

        // Per-connection I/O and timers.
        let mut to_close: Vec<(usize, String)> = Vec::new();
        for idx in 0..self.conns.len() {
            let Some(mut conn) = self.conns[idx].take() else {
                continue;
            };
            let mut dead: Option<String> = None;

            // Read everything available.
            let mut buf = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        dead = Some("peer closed the connection".to_owned());
                        break;
                    }
                    Ok(n) => {
                        progress = true;
                        self.stats.bytes_in += n as u64;
                        conn.decoder.push(&buf[..n]);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        dead = Some(format!("read error: {e}"));
                        break;
                    }
                }
            }

            // Decode and dispatch complete frames.
            while dead.is_none() {
                match conn.decoder.next_wire_frame() {
                    Ok(Some(frame)) => {
                        let was_established = conn.session.state() == SessionState::Established;
                        match conn.session.on_frame(now, frame, &self.host) {
                            Ok(_) => {
                                if !was_established
                                    && conn.session.state() == SessionState::Established
                                    && conn
                                        .dial_slot
                                        .map(|s| self.dials[s].ever_connected)
                                        .unwrap_or(false)
                                {
                                    self.stats.reconnects += 1;
                                }
                                if conn.session.state() == SessionState::Established {
                                    if let Some(slot) = conn.dial_slot {
                                        self.dials[slot].ever_connected = true;
                                        self.dials[slot].backoff.reset();
                                    }
                                }
                            }
                            Err(e) => dead = Some(e.to_string()),
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        self.stats.decode_errors += 1;
                        dead = Some(format!("frame decode error: {e}"));
                    }
                }
            }

            // Heartbeats and half-open detection.
            if dead.is_none() {
                if let Err(e) = conn.session.on_tick(now) {
                    dead = Some(e.to_string());
                }
            }

            // Flush the outbox.
            while dead.is_none() {
                if conn.write_pos >= conn.write_cur.len() {
                    match conn.session.outbox().pop() {
                        Some(frame) => {
                            conn.write_cur = frame;
                            conn.write_pos = 0;
                        }
                        None => break,
                    }
                }
                match conn.stream.write(&conn.write_cur[conn.write_pos..]) {
                    Ok(0) => {
                        dead = Some("write returned zero".to_owned());
                    }
                    Ok(n) => {
                        progress = true;
                        self.stats.bytes_out += n as u64;
                        conn.write_pos += n;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        dead = Some(format!("write error: {e}"));
                    }
                }
            }
            if dead.is_none()
                && conn.write_pos >= conn.write_cur.len()
                && conn.session.outbox().is_empty()
            {
                conn.session.on_drained(now, &self.host);
            }

            self.conns[idx] = Some(conn);
            if let Some(why) = dead {
                to_close.push((idx, why));
            }
        }
        for (idx, why) in to_close {
            progress = true;
            self.close_conn(idx, &why);
        }
        progress
    }

    /// Opens an anti-entropy round with every established peer.
    fn sync_now(&mut self, now: Instant) {
        for conn in self.conns.iter_mut().flatten() {
            conn.session.queue_digest(now, &self.host);
        }
    }

    fn handle_cmd(&mut self, cmd: ControlCmd) -> (Value, bool) {
        match cmd {
            ControlCmd::Edit { doc, at, text } => {
                // Each control edit gets its own session slot so repeated
                // edits interleave like distinct keystroke bursts.
                let session = self.edit_session_counter;
                self.edit_session_counter = self.edit_session_counter.wrapping_add(1) % 64;
                let script: std::sync::Arc<[FleetOp]> = vec![FleetOp::Insert {
                    session,
                    doc,
                    at,
                    text,
                }]
                .into();
                self.host.submit_script(&script);
                self.host.flush();
                self.sync_now(Instant::now());
                (obj(vec![("ok", Value::Bool(true))]), false)
            }
            ControlCmd::Script {
                docs,
                sessions,
                edits,
                seed,
            } => {
                let spec = FleetSpec {
                    docs: docs.max(1),
                    sessions: sessions.max(1),
                    edits,
                    seed,
                    ..FleetSpec::default()
                };
                let script: std::sync::Arc<[FleetOp]> = fleet_workload(&spec).into();
                let submitted = self.host.submit_script(&script);
                self.host.flush();
                self.sync_now(Instant::now());
                (
                    obj(vec![
                        ("ok", Value::Bool(true)),
                        ("edits", Value::UInt(submitted as u64)),
                    ]),
                    false,
                )
            }
            ControlCmd::Snapshot { full } => {
                let snap = self.host.snapshot();
                let hash = snapshot_hash(&snap);
                let mut fields = vec![
                    ("ok", Value::Bool(true)),
                    ("hash", Value::Str(format!("{hash:016x}"))),
                    ("docs", Value::UInt(snap.len() as u64)),
                ];
                let texts;
                if full {
                    texts = Value::Arr(
                        snap.iter()
                            .map(|(doc, version, text)| {
                                obj(vec![
                                    ("doc", Value::UInt(doc.0)),
                                    ("version_len", Value::UInt(version.len() as u64)),
                                    ("text", Value::Str(text.clone())),
                                ])
                            })
                            .collect(),
                    );
                    fields.push(("texts", texts));
                }
                (obj(fields), false)
            }
            ControlCmd::Status => {
                let peers = Value::Arr(
                    self.conns
                        .iter()
                        .flatten()
                        .map(|c| {
                            obj(vec![
                                (
                                    "peer",
                                    Value::Str(
                                        c.session.peer_name().unwrap_or("<pre-hello>").to_owned(),
                                    ),
                                ),
                                (
                                    "established",
                                    Value::Bool(c.session.state() == SessionState::Established),
                                ),
                                ("dialed", Value::Bool(c.dial_slot.is_some())),
                                ("outbox_bytes", Value::UInt(c.session.outbox_bytes() as u64)),
                            ])
                        })
                        .collect(),
                );
                let persist = self.host.persist_stats();
                (
                    obj(vec![
                        ("ok", Value::Bool(true)),
                        ("name", Value::Str(self.config.name.clone())),
                        ("peers", peers),
                        ("bytes_in", Value::UInt(self.stats.bytes_in)),
                        ("bytes_out", Value::UInt(self.stats.bytes_out)),
                        ("accepted", Value::UInt(self.stats.accepted as u64)),
                        ("reconnects", Value::UInt(self.stats.reconnects as u64)),
                        ("disconnects", Value::UInt(self.stats.disconnects as u64)),
                        (
                            "decode_errors",
                            Value::UInt(self.stats.decode_errors as u64),
                        ),
                        ("docs_loaded", Value::UInt(persist.docs_loaded as u64)),
                    ]),
                    false,
                )
            }
            ControlCmd::Checkpoint => {
                let written = self.host.checkpoint_all();
                (
                    obj(vec![
                        ("ok", Value::Bool(true)),
                        ("written", Value::UInt(written as u64)),
                    ]),
                    false,
                )
            }
            ControlCmd::SyncNow => {
                self.sync_now(Instant::now());
                (obj(vec![("ok", Value::Bool(true))]), false)
            }
            ControlCmd::Shutdown => {
                let written = self.host.checkpoint_all();
                (
                    obj(vec![
                        ("ok", Value::Bool(true)),
                        ("checkpoints", Value::UInt(written as u64)),
                    ]),
                    true,
                )
            }
        }
    }

    /// Blocks running the reactor until a Shutdown command (or every
    /// control sender hangs up).
    pub fn run(mut self, ctrl: Receiver<ControlMsg>) {
        loop {
            let mut progress = false;
            loop {
                match ctrl.try_recv() {
                    Ok(msg) => {
                        progress = true;
                        let (reply, quit) = self.handle_cmd(msg.cmd);
                        let _ = msg.reply.send(reply);
                        if quit {
                            let _ = std::fs::remove_file(&self.config.socket);
                            return;
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        let _ = std::fs::remove_file(&self.config.socket);
                        return;
                    }
                }
            }
            if self.poll_once() {
                progress = true;
            }
            if !progress {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// Control handle to a daemon running on its own thread (see
/// [`Daemon::spawn`]).
pub struct DaemonHandle {
    ctrl: Sender<ControlMsg>,
    thread: std::thread::JoinHandle<()>,
}

impl DaemonHandle {
    /// Sends a command and waits for its reply; `None` when the daemon
    /// has exited.
    pub fn control(&self, cmd: ControlCmd) -> Option<Value> {
        let (tx, rx) = std::sync::mpsc::channel();
        self.ctrl.send(ControlMsg { cmd, reply: tx }).ok()?;
        rx.recv().ok()
    }

    /// Orderly shutdown: checkpoint, stop the reactor, join the thread.
    pub fn shutdown(self) {
        let _ = self.control(ControlCmd::Shutdown);
        let _ = self.thread.join();
    }
}

/// FNV-1a over the canonical snapshot: doc ids, versions (agent + seq),
/// and text. Two daemons agree on this hash iff their non-empty document
/// sets are byte-identical.
pub fn snapshot_hash(snapshot: &[(DocId, Vec<RemoteId>, String)]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for (doc, version, text) in snapshot {
        eat(&doc.0.to_le_bytes());
        eat(&(version.len() as u64).to_le_bytes());
        for id in version {
            eat(&(id.agent.len() as u64).to_le_bytes());
            eat(id.agent.as_bytes());
            eat(&(id.seq as u64).to_le_bytes());
        }
        eat(&(text.len() as u64).to_le_bytes());
        eat(text.as_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_hash_discriminates() {
        let a = vec![(
            DocId(1),
            vec![RemoteId {
                agent: "alice".into(),
                seq: 4,
            }],
            "hello".to_owned(),
        )];
        let mut b = a.clone();
        assert_eq!(snapshot_hash(&a), snapshot_hash(&b));
        b[0].2.push('!');
        assert_ne!(snapshot_hash(&a), snapshot_hash(&b));
        let mut c = a.clone();
        c[0].1[0].seq = 5;
        assert_ne!(snapshot_hash(&a), snapshot_hash(&c));
        assert_ne!(snapshot_hash(&a), snapshot_hash(&[]));
    }

    #[test]
    fn two_in_process_daemons_converge_over_sockets() {
        let dir = std::env::temp_dir().join(format!("eg-daemon-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let sock_a = dir.join("a.sock");
        let sock_b = dir.join("b.sock");

        let fast = |name: &str, sock: &PathBuf, peers: Vec<PathBuf>| DaemonConfig {
            name: name.to_owned(),
            socket: sock.clone(),
            peers,
            workers: 1,
            sync_interval: Duration::from_millis(20),
            ..DaemonConfig::default()
        };
        let a = Daemon::spawn(fast("alpha", &sock_a, vec![])).unwrap();
        let b = Daemon::spawn(fast("beta", &sock_b, vec![sock_a.clone()])).unwrap();

        a.control(ControlCmd::Edit {
            doc: 1,
            at: 0,
            text: "from-alpha ".into(),
        })
        .unwrap();
        b.control(ControlCmd::Edit {
            doc: 2,
            at: 0,
            text: "from-beta ".into(),
        })
        .unwrap();

        let deadline = Instant::now() + Duration::from_secs(20);
        let converged = loop {
            let ha = a.control(ControlCmd::Snapshot { full: false }).unwrap();
            let hb = b.control(ControlCmd::Snapshot { full: false }).unwrap();
            let same = ha.get_field("hash") == hb.get_field("hash")
                && ha.get_field("docs") == Some(&Value::UInt(2));
            if same {
                break true;
            }
            if Instant::now() > deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        assert!(converged, "daemons converged over the Unix socket");
        a.shutdown();
        b.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
