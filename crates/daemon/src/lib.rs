//! Fault-tolerant cross-process sync daemon for the Eg-walker suite.
//!
//! Everything below `eg-server` syncs inside one OS process; this crate
//! is the jump across the process boundary, built so that flaky links —
//! the dominant failure mode of real collaborative deployments — are
//! survived by construction rather than by luck:
//!
//! * [`Daemon`] — a hand-rolled non-blocking reactor (no crates.io)
//!   hosting a [`eg_server::ServerHost`] behind a Unix-domain socket,
//!   with actor-per-connection [`PeerSession`]s.
//! * [`PeerSession`] — the per-link state machine: versioned handshake,
//!   pull-terminated anti-entropy rounds, idle heartbeats, and a
//!   bounded outbox that sheds and resyncs instead of growing without
//!   bound behind a slow peer.
//! * [`Backoff`] — capped exponential reconnect delays with
//!   deterministic jitter, so reconnect storms spread out but replays
//!   stay exact.
//! * [`FaultProxy`] — socket-level fault injection (drop, duplicate,
//!   delay, truncate-mid-frame, partition on command) proving the rest
//!   of the list: the tier-1 suite converges two OS processes through
//!   every seeded fault schedule and across a SIGKILL restart.
//!
//! Wire format and in-process fault injection live in `eg-sync`
//! ([`eg_sync::frame`], [`eg_sync::FaultyTransport`]); this crate owns
//! the sockets, the event loop, and the retry policy.

mod backoff;
pub mod control;
mod daemon;
mod peer;
mod proxy;

pub use backoff::Backoff;
pub use control::{parse_cmd, ControlCmd, ControlMsg};
pub use daemon::{snapshot_hash, Daemon, DaemonConfig, DaemonHandle, DaemonStats};
pub use peer::{PeerOutbox, PeerSession, SessionConfig, SessionError, SessionState, SessionStats};
pub use proxy::{FaultProxy, ProxyFaults, ProxyStats};
