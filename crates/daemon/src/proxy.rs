//! [`FaultProxy`]: socket-level fault injection between two daemons.
//!
//! The in-process [`eg_sync::FaultyTransport`] exercises the replica
//! layer; this proxy exercises the real thing — byte streams over Unix
//! sockets. It listens on one path, forwards to an upstream path, and
//! injects faults *frame-aware* (it reframes the stream with the same
//! [`FrameDecoder`] the daemons use), on a deterministic SplitMix64
//! schedule:
//!
//! | fault     | wire effect                                          |
//! |-----------|------------------------------------------------------|
//! | drop      | a whole frame vanishes                               |
//! | duplicate | a frame is delivered twice                           |
//! | delay     | a frame stalls up to `max_delay` before forwarding   |
//! | truncate  | half a frame is written, then the link is cut        |
//! | partition | both directions blackholed; new dials die instantly  |
//!
//! Hello/Ping/Pong frames are passed through untouched so the fault
//! pressure lands on sync traffic rather than on the handshake — a
//! schedule that only ever killed handshakes would test the backoff
//! ladder and nothing else. Truncation still severs the link mid-frame,
//! which is exactly the half-open / torn-stream case the decoder and
//! reconnect path must survive.

use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use eg_sync::frame::{is_bundle_body, FrameDecoder, TAG_SYNC};

use crate::backoff::splitmix64;

/// Per-frame fault probabilities (parts per thousand) for one proxy.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProxyFaults {
    /// Chance a sync frame is silently dropped.
    pub drop_per_mille: u16,
    /// Chance a sync frame is forwarded twice.
    pub duplicate_per_mille: u16,
    /// Chance a sync frame stalls before forwarding.
    pub delay_per_mille: u16,
    /// Upper bound of an injected stall.
    pub max_delay: Duration,
    /// Chance a sync frame is cut in half and the link severed.
    pub truncate_per_mille: u16,
}

impl ProxyFaults {
    /// A flat schedule: every fault class at `per_mille`, stalls up to
    /// 20ms.
    pub fn uniform(per_mille: u16) -> ProxyFaults {
        ProxyFaults {
            drop_per_mille: per_mille,
            duplicate_per_mille: per_mille,
            delay_per_mille: per_mille,
            max_delay: Duration::from_millis(20),
            truncate_per_mille: per_mille / 2,
        }
    }
}

/// Aggregate counters over both directions.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProxyStats {
    /// Frames forwarded intact.
    pub frames_forwarded: u64,
    /// Frames dropped.
    pub frames_dropped: u64,
    /// Frames duplicated.
    pub frames_duplicated: u64,
    /// Frames delayed.
    pub frames_delayed: u64,
    /// Frames truncated (each also severed its connection).
    pub frames_truncated: u64,
    /// Application bytes forwarded (sum of both directions).
    pub bytes_forwarded: u64,
    /// Subset of `bytes_forwarded` carrying event-bundle batches — the
    /// actual event transfer, as opposed to digest/heartbeat chatter.
    /// The reconnect byte-accounting test keys off this.
    pub bundle_bytes_forwarded: u64,
    /// Connections refused or severed by an active partition.
    pub partition_kills: u64,
}

#[derive(Default)]
struct Shared {
    partitioned: AtomicBool,
    shutdown: AtomicBool,
    frames_forwarded: AtomicU64,
    frames_dropped: AtomicU64,
    frames_duplicated: AtomicU64,
    frames_delayed: AtomicU64,
    frames_truncated: AtomicU64,
    bytes_forwarded: AtomicU64,
    bundle_bytes_forwarded: AtomicU64,
    partition_kills: AtomicU64,
}

/// A running fault proxy; dropping it (or calling
/// [`FaultProxy::shutdown`]) stops all pump threads.
pub struct FaultProxy {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Listens on `listen`, forwarding each connection to `upstream`
    /// with the fault schedule seeded by `seed`.
    pub fn spawn(
        listen: PathBuf,
        upstream: PathBuf,
        faults: ProxyFaults,
        seed: u64,
    ) -> io::Result<FaultProxy> {
        let _ = std::fs::remove_file(&listen);
        let listener = UnixListener::bind(&listen)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared::default());
        let shared_accept = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("eg-fault-proxy".to_owned())
            .spawn(move || {
                let mut conn_seq = 0u64;
                let mut pumps: Vec<JoinHandle<()>> = Vec::new();
                while !shared_accept.shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            conn_seq += 1;
                            if shared_accept.partitioned.load(Ordering::SeqCst) {
                                // Refuse by accept-then-close: the dialer
                                // sees an instant EOF and re-enters
                                // backoff.
                                shared_accept
                                    .partition_kills
                                    .fetch_add(1, Ordering::Relaxed);
                                drop(client);
                                continue;
                            }
                            match UnixStream::connect(&upstream) {
                                Ok(server) => {
                                    let up = pump(
                                        client.try_clone(),
                                        server.try_clone(),
                                        faults,
                                        splitmix64(seed ^ (conn_seq * 2)),
                                        Arc::clone(&shared_accept),
                                    );
                                    let down = pump(
                                        server.try_clone(),
                                        client.try_clone(),
                                        faults,
                                        splitmix64(seed ^ (conn_seq * 2 + 1)),
                                        Arc::clone(&shared_accept),
                                    );
                                    pumps.extend(up);
                                    pumps.extend(down);
                                }
                                Err(_) => drop(client),
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
                for p in pumps {
                    let _ = p.join();
                }
            })?;
        Ok(FaultProxy {
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// Turns the partition on or off. While on, existing connections are
    /// severed (pumps notice within their read timeout) and new dials
    /// die instantly.
    pub fn partition(&self, on: bool) {
        self.shared.partitioned.store(on, Ordering::SeqCst);
    }

    /// Snapshot of the fault counters.
    pub fn stats(&self) -> ProxyStats {
        ProxyStats {
            frames_forwarded: self.shared.frames_forwarded.load(Ordering::Relaxed),
            frames_dropped: self.shared.frames_dropped.load(Ordering::Relaxed),
            frames_duplicated: self.shared.frames_duplicated.load(Ordering::Relaxed),
            frames_delayed: self.shared.frames_delayed.load(Ordering::Relaxed),
            frames_truncated: self.shared.frames_truncated.load(Ordering::Relaxed),
            bytes_forwarded: self.shared.bytes_forwarded.load(Ordering::Relaxed),
            bundle_bytes_forwarded: self.shared.bundle_bytes_forwarded.load(Ordering::Relaxed),
            partition_kills: self.shared.partition_kills.load(Ordering::Relaxed),
        }
    }

    /// Stops the proxy and joins its threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Spawns one directional pump thread; returns `None` if cloning the
/// sockets failed (the connection is simply dropped).
fn pump(
    from: io::Result<UnixStream>,
    to: io::Result<UnixStream>,
    faults: ProxyFaults,
    seed: u64,
    shared: Arc<Shared>,
) -> Option<JoinHandle<()>> {
    let (from, to) = match (from, to) {
        (Ok(f), Ok(t)) => (f, t),
        _ => return None,
    };
    std::thread::Builder::new()
        .name("eg-proxy-pump".to_owned())
        .spawn(move || pump_main(from, to, faults, seed, shared))
        .ok()
}

fn pump_main(
    mut from: UnixStream,
    mut to: UnixStream,
    faults: ProxyFaults,
    seed: u64,
    shared: Arc<Shared>,
) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    let mut rolls = seed;
    fn roll(state: &mut u64, per_mille: u16) -> bool {
        *state = splitmix64(*state);
        per_mille > 0 && (*state % 1000) < u64::from(per_mille)
    }
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if shared.partitioned.load(Ordering::SeqCst) {
            shared.partition_kills.fetch_add(1, Ordering::Relaxed);
            let _ = from.shutdown(std::net::Shutdown::Both);
            let _ = to.shutdown(std::net::Shutdown::Both);
            return;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => {
                // Clean EOF: propagate and stop.
                let _ = to.shutdown(std::net::Shutdown::Both);
                return;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                let _ = to.shutdown(std::net::Shutdown::Both);
                return;
            }
        };
        decoder.push(&buf[..n]);
        loop {
            match decoder.next_frame() {
                Ok(Some(body)) => {
                    // Re-frame: 4-byte LE length prefix + body, exactly
                    // what was read.
                    let mut frame = Vec::with_capacity(4 + body.len());
                    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
                    frame.extend_from_slice(&body);
                    // Only sync frames are fault targets; the handshake
                    // and heartbeats pass clean (see module docs).
                    let is_sync = body.first() == Some(&TAG_SYNC);
                    if is_sync && roll(&mut rolls, faults.drop_per_mille) {
                        shared.frames_dropped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if is_sync && roll(&mut rolls, faults.truncate_per_mille) {
                        shared.frames_truncated.fetch_add(1, Ordering::Relaxed);
                        let half = frame.len() / 2;
                        let _ = to.write_all(&frame[..half]);
                        let _ = to.shutdown(std::net::Shutdown::Both);
                        let _ = from.shutdown(std::net::Shutdown::Both);
                        return;
                    }
                    if is_sync && roll(&mut rolls, faults.delay_per_mille) {
                        shared.frames_delayed.fetch_add(1, Ordering::Relaxed);
                        let ms = faults.max_delay.as_millis() as u64;
                        if ms > 0 {
                            rolls = splitmix64(rolls);
                            std::thread::sleep(Duration::from_millis(rolls % (ms + 1)));
                        }
                    }
                    let copies = if is_sync && roll(&mut rolls, faults.duplicate_per_mille) {
                        shared.frames_duplicated.fetch_add(1, Ordering::Relaxed);
                        2
                    } else {
                        1
                    };
                    for _ in 0..copies {
                        if to.write_all(&frame).is_err() {
                            let _ = from.shutdown(std::net::Shutdown::Both);
                            return;
                        }
                        shared.frames_forwarded.fetch_add(1, Ordering::Relaxed);
                        shared
                            .bytes_forwarded
                            .fetch_add(frame.len() as u64, Ordering::Relaxed);
                        if is_bundle_body(&body) {
                            shared
                                .bundle_bytes_forwarded
                                .fetch_add(frame.len() as u64, Ordering::Relaxed);
                        }
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // The stream itself is un-frameable (should not
                    // happen — daemons emit well-formed frames); sever.
                    let _ = to.shutdown(std::net::Shutdown::Both);
                    let _ = from.shutdown(std::net::Shutdown::Both);
                    return;
                }
            }
        }
    }
}
