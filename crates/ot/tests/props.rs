//! Property tests for the OT baseline's primitives: the classic TP1
//! convergence property of `transform`, the semantics of `compose`, and
//! apply/length invariants — all on randomised operations.

use eg_ot::{compose, transform, TextOp};
use eg_rope::Rope;
use proptest::prelude::*;

/// A random operation valid on a document of `doc_len` characters.
fn op_strategy(doc_len: usize) -> impl Strategy<Value = TextOp> {
    // A couple of edits at random positions, assembled left to right.
    prop::collection::vec(
        (
            0usize..=doc_len,
            prop_oneof![
                "[a-z]{1,5}".prop_map(Edit::Ins),
                (1usize..4).prop_map(Edit::Del),
            ],
        ),
        0..4,
    )
    .prop_map(move |mut edits| {
        edits.sort_by_key(|(pos, _)| *pos);
        let mut op = TextOp::identity();
        let mut cursor = 0usize;
        for (pos, edit) in edits {
            if pos < cursor {
                continue; // overlapping edit; skip to keep the op valid
            }
            op.retain(pos - cursor);
            cursor = pos;
            match edit {
                Edit::Ins(text) => op.insert(&text),
                Edit::Del(n) => {
                    let n = n.min(doc_len - pos);
                    if n == 0 {
                        continue;
                    }
                    op.delete(n);
                    cursor += n;
                }
            }
        }
        op.retain(doc_len - cursor);
        op.trim();
        op
    })
}

#[derive(Debug, Clone)]
enum Edit {
    Ins(String),
    Del(usize),
}

fn doc_strategy() -> impl Strategy<Value = String> {
    "[a-z ]{0,30}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// TP1: b ∘ transform(a, b) ≡ a ∘ transform(b, a) — both replicas
    /// converge after exchanging transformed operations.
    #[test]
    fn tp1_convergence((doc, a, b) in doc_strategy().prop_flat_map(|doc| {
        let n = doc.chars().count();
        (Just(doc), op_strategy(n), op_strategy(n))
    })) {
        // Replica 1 applies a, then b transformed against a.
        let mut doc1 = Rope::from_str(&doc);
        a.apply_to(&mut doc1);
        transform(&b, &a, false).apply_to(&mut doc1);

        // Replica 2 applies b, then a transformed against b.
        let mut doc2 = Rope::from_str(&doc);
        b.apply_to(&mut doc2);
        transform(&a, &b, true).apply_to(&mut doc2);

        prop_assert_eq!(doc1.to_string(), doc2.to_string());
    }

    /// Composition: applying `compose(a, b)` equals applying `a` then `b`.
    #[test]
    fn compose_equals_sequential((doc, a, b) in doc_strategy().prop_flat_map(|doc| {
        let n = doc.chars().count();
        (Just(doc), op_strategy(n), op_strategy(n).prop_flat_map(Just))
    })) {
        // Build b against the document *after* a.
        let mut after_a = Rope::from_str(&doc);
        a.apply_to(&mut after_a);
        let b_ops = op_for_doc(&b, after_a.len_chars());

        let mut sequential = after_a.clone();
        b_ops.apply_to(&mut sequential);

        let mut composed = Rope::from_str(&doc);
        compose(&a, &b_ops).apply_to(&mut composed);

        prop_assert_eq!(sequential.to_string(), composed.to_string());
    }

    /// pre_len/post_len bookkeeping matches what apply does.
    #[test]
    fn lengths_match_apply((doc, a) in doc_strategy().prop_flat_map(|doc| {
        let n = doc.chars().count();
        (Just(doc), op_strategy(n))
    })) {
        let n = doc.chars().count();
        prop_assert!(a.pre_len() <= n);
        let mut rope = Rope::from_str(&doc);
        a.apply_to(&mut rope);
        // The implicit trailing retain preserves everything past pre_len.
        prop_assert_eq!(rope.len_chars(), n - a.pre_len() + a.post_len());
    }

    /// Transforming against the identity is the identity transformation.
    #[test]
    fn transform_against_identity((doc, a) in doc_strategy().prop_flat_map(|doc| {
        let n = doc.chars().count();
        (Just(doc), op_strategy(n))
    })) {
        let id = TextOp::identity();
        let t = transform(&a, &id, true);
        let mut doc1 = Rope::from_str(&doc);
        a.apply_to(&mut doc1);
        let mut doc2 = Rope::from_str(&doc);
        t.apply_to(&mut doc2);
        prop_assert_eq!(doc1.to_string(), doc2.to_string());
    }
}

/// Clamps an arbitrary strategy-generated op so it is valid on a document
/// of `n` chars (regenerating the trailing retain).
fn op_for_doc(op: &TextOp, n: usize) -> TextOp {
    if op.pre_len() <= n {
        return op.clone();
    }
    // Rebuild, dropping edits beyond the document end.
    let mut out = TextOp::identity();
    let mut consumed = 0usize;
    for c in &op.components {
        match c {
            eg_ot::Component::Retain(k) => {
                let k = (*k).min(n - consumed);
                out.retain(k);
                consumed += k;
            }
            eg_ot::Component::Ins(s) => out.insert(s),
            eg_ot::Component::Del(k) => {
                let k = (*k).min(n - consumed);
                out.delete(k);
                consumed += k;
            }
        }
        if consumed >= n {
            break;
        }
    }
    out.trim();
    out
}

#[test]
fn figure1_transform() {
    // The paper's Figure 1 as raw OT: Insert(3, "l") vs Insert(4, "!").
    let a = TextOp::ins(3, "l");
    let b = TextOp::ins(4, "!");
    let mut doc1 = Rope::from_str("Helo");
    a.apply_to(&mut doc1);
    transform(&b, &a, false).apply_to(&mut doc1);
    assert_eq!(doc1.to_string(), "Hello!");

    let mut doc2 = Rope::from_str("Helo");
    b.apply_to(&mut doc2);
    transform(&a, &b, true).apply_to(&mut doc2);
    assert_eq!(doc2.to_string(), "Hello!");
}

#[test]
fn delete_delete_same_char() {
    // Concurrent deletion of the same character must not delete twice.
    let a = TextOp::del(2, 1);
    let b = TextOp::del(2, 1);
    let mut doc = Rope::from_str("abcd");
    a.apply_to(&mut doc);
    let t = transform(&b, &a, false);
    t.apply_to(&mut doc);
    assert_eq!(doc.to_string(), "abd");
}
