//! The OT control algorithm: merging an arbitrary event DAG by recursive
//! context transformation with memoisation.
//!
//! Classic OT transforms one operation against one other operation; to merge
//! divergent branches every new operation must be transformed against every
//! concurrent operation — `O(n²)` when two branches each hold `n` events
//! (paper §1, §5). Operations can only be transformed when they are
//! expressed in the *same context* (document version), so merging a DAG
//! requires recursively bringing concurrent operations into matching
//! contexts (the COT approach). Intermediate transformed operations are
//! memoised per `(events, context)` pair — which is precisely why the
//! paper measures multi-gigabyte peak memory for OT on the asynchronous
//! traces (§4.4).

use crate::textop::{compose, transform, TextOp};
use eg_dag::{Frontier, LV};
use eg_rle::{DTRange, HasLength};
use eg_rope::Rope;
use egwalker::{ListOpKind, OpLog};
use std::collections::HashMap;

/// Counters reported by [`replay_ot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OtStats {
    /// Pairwise transforms performed.
    pub transforms: usize,
    /// Entries in the `(events, context)` memo table.
    pub memo_entries: usize,
    /// Approximate bytes retained by the memo table at peak.
    pub memo_bytes: usize,
}

/// The OT replay engine. Holds the memo table for the duration of a merge.
pub struct OtMerger<'a> {
    oplog: &'a OpLog,
    memo: HashMap<(DTRange, Frontier), TextOp>,
    stats: OtStats,
}

/// A pending transformation: bring `x`'s operation from context `c` to
/// context `target`.
struct Frame {
    x: DTRange,
    target: Frontier,
    c: Frontier,
    op: TextOp,
}

impl<'a> OtMerger<'a> {
    /// Creates a merger for the given log.
    pub fn new(oplog: &'a OpLog) -> Self {
        OtMerger {
            oplog,
            memo: HashMap::new(),
            stats: OtStats::default(),
        }
    }

    /// The raw composed operation of a run of events (each event applies in
    /// the context left by its predecessor, so the run collapses into a
    /// single operation).
    fn run_op(&self, range: DTRange) -> TextOp {
        let mut acc: Option<TextOp> = None;
        for (_lvs, run) in self.oplog.ops_in(range) {
            let op = match run.kind {
                ListOpKind::Ins => {
                    let content = self
                        .oplog
                        .content_slice(run.content.expect("insert content"));
                    TextOp::ins(run.loc.start, content)
                }
                // Forward and backward delete runs both remove the
                // contiguous range `loc`.
                ListOpKind::Del => TextOp::del(run.loc.start, run.loc.len()),
            };
            acc = Some(match acc {
                None => op,
                Some(prev) => compose(&prev, &op),
            });
        }
        acc.unwrap_or_default()
    }

    /// Clips a diff range to a single graph run starting at its first LV.
    fn clip(&self, r: DTRange) -> DTRange {
        let (entry, _) = self.oplog.graph.entry_for(r.start);
        (r.start..r.end.min(entry.span.end)).into()
    }

    fn parents_frontier(&self, lv: LV) -> Frontier {
        self.oplog.graph.parents_of(lv)
    }

    /// Deterministic insert-insert tie-break: by agent name of the runs.
    fn a_first(&self, a: DTRange, b: DTRange) -> bool {
        let an = self
            .oplog
            .agents
            .agent_name(self.oplog.agents.lv_to_agent_span(a.start).agent);
        let bn = self
            .oplog
            .agents
            .agent_name(self.oplog.agents.lv_to_agent_span(b.start).agent);
        (an, a.start) < (bn, b.start)
    }

    /// Transforms the run `x`'s operation into context `target`
    /// (`Events(parents(x)) ⊆ Events(target)` required). Iterative with an
    /// explicit stack; memoised.
    pub fn xform(&mut self, x: DTRange, target: &Frontier) -> TextOp {
        let key = (x, target.clone());
        if let Some(op) = self.memo.get(&key) {
            return op.clone();
        }
        let mut stack: Vec<Frame> = vec![Frame {
            x,
            target: target.clone(),
            c: self.parents_frontier(x.start),
            op: self.run_op(x),
        }];
        while let Some(frame) = stack.last() {
            if frame.c == frame.target
                || self
                    .oplog
                    .graph
                    .diff(&frame.target, &frame.c)
                    .only_a
                    .is_empty()
            {
                let done = stack.pop().unwrap();
                self.stats.memo_bytes += done.op.approx_bytes();
                self.memo.insert((done.x, done.target), done.op);
                continue;
            }
            let d = self.oplog.graph.diff(&frame.target, &frame.c);
            let y = self.clip(*d.only_a.first().expect("context not below target"));
            let y_key = (y, frame.c.clone());
            if let Some(y_op) = self.memo.get(&y_key).cloned() {
                let frame = stack.last_mut().unwrap();
                let a_first = self.a_first(frame.x, y);
                frame.op = transform(&frame.op, &y_op, a_first);
                self.stats.transforms += 1;
                let parents = self.parents_frontier(y.start);
                frame.c.advance_by(y.last(), &parents);
            } else {
                let c = frame.c.clone();
                let op = self.run_op(y);
                let parents = self.parents_frontier(y.start);
                stack.push(Frame {
                    x: y,
                    target: c,
                    c: parents,
                    op,
                });
            }
        }
        self.stats.memo_entries = self.memo.len();
        self.memo.get(&key).expect("xform did not complete").clone()
    }

    /// Replays the whole event graph, applying each run's transformed
    /// operation in LV order. Returns the final document.
    pub fn replay(&mut self) -> Rope {
        let mut doc = Rope::new();
        let mut current = Frontier::root();
        let entries: Vec<(DTRange, Frontier)> = self
            .oplog
            .graph
            .iter()
            .map(|e| (e.span, e.parents.clone()))
            .collect();
        for (span, parents) in entries {
            if parents == current {
                // No concurrency: apply each op run directly (the fast
                // path production OT takes on sequential histories —
                // composing the whole run first would be quadratic).
                for (_lvs, run) in self.oplog.ops_in(span) {
                    let op = match run.kind {
                        egwalker::ListOpKind::Ins => {
                            let content = self
                                .oplog
                                .content_slice(run.content.expect("insert content"));
                            TextOp::ins(run.loc.start, content)
                        }
                        egwalker::ListOpKind::Del => TextOp::del(run.loc.start, run.loc.len()),
                    };
                    op.apply_clamped_to(&mut doc);
                }
            } else {
                let op = self.xform(span, &current);
                op.apply_clamped_to(&mut doc);
            }
            current.advance_by(span.last(), &parents);
        }
        doc
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> OtStats {
        let mut s = self.stats;
        s.memo_entries = self.memo.len();
        s
    }
}

/// Replays the full event graph with OT, returning the document text and
/// merge statistics.
pub fn replay_ot(oplog: &OpLog) -> (String, OtStats) {
    let mut merger = OtMerger::new(oplog);
    let doc = merger.replay();
    (doc.to_string(), merger.stats())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_replay() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        oplog.add_insert(a, 0, "hello world");
        oplog.add_delete(a, 0, 6);
        let (doc, stats) = replay_ot(&oplog);
        assert_eq!(doc, "world");
        // Sequential histories need zero transforms.
        assert_eq!(stats.transforms, 0);
        assert_eq!(stats.memo_entries, 0);
    }

    #[test]
    fn fig1_concurrent() {
        let mut oplog = OpLog::new();
        let u1 = oplog.get_or_create_agent("user1");
        let u2 = oplog.get_or_create_agent("user2");
        oplog.add_insert(u1, 0, "Helo");
        let base = oplog.version().clone();
        oplog.add_insert_at(u1, &base, 3, "l");
        oplog.add_insert_at(u2, &base, 4, "!");
        let (doc, stats) = replay_ot(&oplog);
        assert_eq!(doc, "Hello!");
        assert!(stats.transforms > 0);
    }

    /// On purely sequential histories OT must agree exactly with
    /// Eg-walker (no transformation happens at all).
    #[test]
    fn matches_egwalker_on_sequential_histories() {
        use egwalker::testgen::random_oplog;
        for seed in 0..20u64 {
            let oplog = random_oplog(seed, 150, 1, 0.0);
            let expected = oplog.checkout_tip().content.to_string();
            let (doc, stats) = replay_ot(&oplog);
            assert_eq!(doc, expected, "seed {seed}");
            assert_eq!(stats.transforms, 0);
        }
    }

    /// On concurrent histories OT replay must be deterministic and never
    /// crash. (Exact equality with the CRDT-based algorithms is *not*
    /// expected: the traces' indexes were generated under the reference
    /// merge semantics, and OT may order concurrent same-position
    /// insertions differently — see `TextOp::apply_clamped_to`.)
    #[test]
    fn deterministic_on_random_histories() {
        use egwalker::testgen::random_oplog;
        for seed in 0..30u64 {
            let oplog = random_oplog(seed, 100, 3, 0.35);
            let (doc1, _) = replay_ot(&oplog);
            let (doc2, _) = replay_ot(&oplog);
            assert_eq!(doc1, doc2, "seed {seed}");
        }
    }

    #[test]
    fn two_branch_merge_cost_is_quadratic_in_transforms() {
        // k events on each of two branches: expect ~k^2 transforms.
        let build = |k: usize| {
            let mut oplog = OpLog::new();
            let a = oplog.get_or_create_agent("alice");
            let b = oplog.get_or_create_agent("bob");
            oplog.add_insert(a, 0, "x");
            let base = oplog.version().clone();
            let mut va = base.clone();
            let mut vb = base.clone();
            for i in 0..k {
                let lvs = oplog.add_insert_at(a, &va, i + 1, "a");
                va = Frontier::new_1(lvs.last());
                let lvs = oplog.add_insert_at(b, &vb, 0, "b");
                vb = Frontier::new_1(lvs.last());
            }
            oplog
        };
        let (_, s1) = replay_ot(&build(8));
        let (_, s2) = replay_ot(&build(16));
        assert!(
            s2.transforms >= 3 * s1.transforms,
            "expected superlinear growth: {} -> {}",
            s1.transforms,
            s2.transforms
        );
    }
}
