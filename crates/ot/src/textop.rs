//! Component-based text operations and the classic OT primitives.
//!
//! An operation is a full-document traversal: a list of `Retain(n)`,
//! `Ins(text)` and `Del(n)` components (the representation used by
//! production OT systems such as ShareDB's text type). This form makes
//! [`transform`] and [`compose`] linear in the operation sizes.

use eg_rope::Rope;

/// One component of a [`TextOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Component {
    /// Skip over `n` characters.
    Retain(usize),
    /// Insert text at the current position.
    Ins(String),
    /// Delete `n` characters at the current position.
    Del(usize),
}

impl Component {
    fn is_empty(&self) -> bool {
        match self {
            Component::Retain(n) | Component::Del(n) => *n == 0,
            Component::Ins(s) => s.is_empty(),
        }
    }
}

/// A text operation: a normalised list of components.
///
/// `pre_len` (the document length the op applies to) and `post_len` (the
/// length afterwards) are implied by the components; helpers compute them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TextOp {
    /// The components, normalised: no empty components, no two adjacent
    /// components of the same kind, no trailing retain.
    pub components: Vec<Component>,
}

impl TextOp {
    /// The identity operation.
    pub fn identity() -> Self {
        Self::default()
    }

    /// An operation inserting `text` at `pos`.
    pub fn ins(pos: usize, text: &str) -> Self {
        let mut op = TextOp::default();
        op.retain(pos);
        op.insert(text);
        op
    }

    /// An operation deleting `len` characters at `pos`.
    pub fn del(pos: usize, len: usize) -> Self {
        let mut op = TextOp::default();
        op.retain(pos);
        op.delete(len);
        op
    }

    /// Returns `true` for the identity operation.
    pub fn is_identity(&self) -> bool {
        self.components.is_empty()
    }

    /// Appends a retain, merging with the tail.
    pub fn retain(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        if let Some(Component::Retain(m)) = self.components.last_mut() {
            *m += n;
            return;
        }
        self.components.push(Component::Retain(n));
    }

    /// Appends an insertion, merging with the tail.
    pub fn insert(&mut self, text: &str) {
        if text.is_empty() {
            return;
        }
        if let Some(Component::Ins(s)) = self.components.last_mut() {
            s.push_str(text);
            return;
        }
        self.components.push(Component::Ins(text.to_string()));
    }

    /// Appends a deletion, merging with the tail.
    pub fn delete(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        if let Some(Component::Del(m)) = self.components.last_mut() {
            *m += n;
            return;
        }
        self.components.push(Component::Del(n));
    }

    /// Drops a trailing retain (operations are retain-normalised).
    pub fn trim(&mut self) {
        while let Some(c) = self.components.last() {
            if matches!(c, Component::Retain(_)) || c.is_empty() {
                self.components.pop();
            } else {
                break;
            }
        }
    }

    /// Characters consumed from the source document.
    pub fn pre_len(&self) -> usize {
        self.components
            .iter()
            .map(|c| match c {
                Component::Retain(n) | Component::Del(n) => *n,
                Component::Ins(_) => 0,
            })
            .sum()
    }

    /// Characters produced in the target document.
    pub fn post_len(&self) -> usize {
        self.components
            .iter()
            .map(|c| match c {
                Component::Retain(n) => *n,
                Component::Del(_) => 0,
                Component::Ins(s) => s.chars().count(),
            })
            .sum()
    }

    /// The memory retained by this operation, in approximate bytes (used by
    /// the evaluation's memory measurements).
    pub fn approx_bytes(&self) -> usize {
        self.components
            .iter()
            .map(|c| {
                std::mem::size_of::<Component>()
                    + match c {
                        Component::Ins(s) => s.capacity(),
                        _ => 0,
                    }
            })
            .sum::<usize>()
            + std::mem::size_of::<Self>()
    }

    /// Applies the operation to a rope.
    ///
    /// # Panics
    ///
    /// Panics if the operation runs past the end of the document.
    pub fn apply_to(&self, doc: &mut Rope) {
        let mut pos = 0;
        for c in &self.components {
            match c {
                Component::Retain(n) => pos += n,
                Component::Ins(s) => {
                    doc.insert(pos, s);
                    pos += s.chars().count();
                }
                Component::Del(n) => doc.remove(pos, *n),
            }
        }
    }

    /// Applies the operation, clamping positions at the document end.
    ///
    /// Used when replaying *recorded* traces through OT: the traces'
    /// index-based events were generated against the reference (CRDT)
    /// merge semantics, and OT may legitimately order concurrent
    /// same-position insertions differently, letting later indexes drift
    /// past the OT document's end. Clamping keeps the replay well-defined
    /// (the costs being benchmarked are unaffected).
    pub fn apply_clamped_to(&self, doc: &mut Rope) {
        let mut pos = 0;
        for c in &self.components {
            let len = doc.len_chars();
            match c {
                Component::Retain(n) => pos = (pos + n).min(len),
                Component::Ins(s) => {
                    doc.insert(pos.min(len), s);
                    pos = (pos + s.chars().count()).min(doc.len_chars());
                }
                Component::Del(n) => {
                    let pos2 = pos.min(len);
                    let n2 = (*n).min(len - pos2);
                    if n2 > 0 {
                        doc.remove(pos2, n2);
                    }
                }
            }
        }
    }
}

/// Iterator cursor over components, yielding unit-aligned slices.
struct OpReader<'a> {
    components: &'a [Component],
    idx: usize,
    offset: usize,
}

/// A borrowed piece of a component.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Piece<'a> {
    Retain(usize),
    Ins(&'a str),
    Del(usize),
}

impl<'a> OpReader<'a> {
    fn new(op: &'a TextOp) -> Self {
        OpReader {
            components: &op.components,
            idx: 0,
            offset: 0,
        }
    }

    fn peek_is_ins(&self) -> bool {
        matches!(self.components.get(self.idx), Some(Component::Ins(_)))
    }

    fn done(&self) -> bool {
        self.idx >= self.components.len()
    }

    /// Takes up to `max` units from the current component (insertions are
    /// measured in characters).
    fn take(&mut self, max: usize) -> Option<Piece<'a>> {
        let c = self.components.get(self.idx)?;
        let piece = match c {
            Component::Retain(n) => {
                let take = max.min(n - self.offset);
                self.offset += take;
                if self.offset == *n {
                    self.idx += 1;
                    self.offset = 0;
                }
                Piece::Retain(take)
            }
            Component::Del(n) => {
                let take = max.min(n - self.offset);
                self.offset += take;
                if self.offset == *n {
                    self.idx += 1;
                    self.offset = 0;
                }
                Piece::Del(take)
            }
            Component::Ins(s) => {
                let chars: Vec<(usize, char)> = s.char_indices().collect();
                let total = chars.len();
                let take = max.min(total - self.offset);
                let b0 = chars[self.offset].0;
                let b1 = if self.offset + take < total {
                    chars[self.offset + take].0
                } else {
                    s.len()
                };
                self.offset += take;
                let piece = Piece::Ins(&s[b0..b1]);
                if self.offset == total {
                    self.idx += 1;
                    self.offset = 0;
                }
                piece
            }
        };
        Some(piece)
    }
}

/// Transforms `a` against `b`: returns `a'` such that applying `b` then
/// `a'` has `a`'s intended effect (the IT function of OT).
///
/// Both operations must apply to the same document. When both insert at the
/// same position, `a_first` decides which text ends up first.
pub fn transform(a: &TextOp, b: &TextOp, a_first: bool) -> TextOp {
    let mut out = TextOp::default();
    let mut ra = OpReader::new(a);
    let mut rb = OpReader::new(b);

    loop {
        // b-insertions consume no source; they become retains in a'.
        // At insert-insert conflicts, `a_first` decides who goes first.
        if rb.peek_is_ins() && (!ra.peek_is_ins() || !a_first) {
            if let Some(Piece::Ins(s)) = rb.take(usize::MAX) {
                out.retain(s.chars().count());
            }
            continue;
        }
        if ra.peek_is_ins() {
            if let Some(Piece::Ins(s)) = ra.take(usize::MAX) {
                out.insert(s);
            }
            continue;
        }
        if ra.done() {
            break;
        }
        // Both sides now consume source characters.
        let pa = ra.take(chunk_of(&rb)).expect("a exhausted");
        match pa {
            Piece::Retain(n) => {
                // Consume n source units from b.
                let mut left = n;
                while left > 0 {
                    match rb.take(left) {
                        Some(Piece::Retain(m)) => {
                            out.retain(m);
                            left -= m;
                        }
                        Some(Piece::Del(m)) => {
                            // b deleted these characters: nothing to keep.
                            left -= m;
                        }
                        Some(Piece::Ins(_)) => unreachable!("handled above"),
                        None => {
                            // b ended (implicit retain).
                            out.retain(left);
                            left = 0;
                        }
                    }
                }
            }
            Piece::Del(n) => {
                let mut left = n;
                while left > 0 {
                    match rb.take(left) {
                        Some(Piece::Retain(m)) => {
                            out.delete(m);
                            left -= m;
                        }
                        Some(Piece::Del(m)) => {
                            // Already deleted by b: skip.
                            left -= m;
                        }
                        Some(Piece::Ins(_)) => unreachable!("handled above"),
                        None => {
                            out.delete(left);
                            left = 0;
                        }
                    }
                }
            }
            Piece::Ins(_) => unreachable!("handled above"),
        }
    }
    out.trim();
    out
}

/// How many source units the next `take` on `r`'s current component could
/// consume without crossing a boundary — used to align chunks.
fn chunk_of(r: &OpReader<'_>) -> usize {
    match r.components.get(r.idx) {
        Some(Component::Retain(n)) | Some(Component::Del(n)) => (*n - r.offset).max(1),
        _ => usize::MAX,
    }
}

/// Composes `a` then `b` into a single operation with the same effect.
pub fn compose(a: &TextOp, b: &TextOp) -> TextOp {
    let mut out = TextOp::default();
    let mut ra = OpReader::new(a);
    let mut rb = OpReader::new(b);

    loop {
        // a-deletions happen before b sees the document.
        if let Some(Component::Del(_)) = ra.components.get(ra.idx) {
            if let Some(Piece::Del(n)) = ra.take(usize::MAX) {
                out.delete(n);
            }
            continue;
        }
        // Next b component decides.
        match rb.components.get(rb.idx) {
            None => {
                // Remainder of a passes through.
                while let Some(p) = ra.take(usize::MAX) {
                    match p {
                        Piece::Retain(n) => out.retain(n),
                        Piece::Ins(s) => out.insert(s),
                        Piece::Del(n) => out.delete(n),
                    }
                }
                break;
            }
            Some(Component::Ins(_)) => {
                if let Some(Piece::Ins(s)) = rb.take(usize::MAX) {
                    out.insert(s);
                }
            }
            Some(Component::Retain(_)) | Some(Component::Del(_)) => {
                let deleting = matches!(rb.components.get(rb.idx), Some(Component::Del(_)));
                let want = chunk_of(&rb);
                // Pull `want` post-a units from a.
                match ra.take(want) {
                    None => {
                        // a ended: implicit retain.
                        match rb.take(usize::MAX) {
                            Some(Piece::Retain(n)) => out.retain(n),
                            Some(Piece::Del(n)) => out.delete(n),
                            _ => unreachable!(),
                        }
                    }
                    Some(Piece::Retain(n)) => {
                        let consumed = consume(&mut rb, n);
                        if deleting {
                            out.delete(consumed);
                        } else {
                            out.retain(consumed);
                        }
                    }
                    Some(Piece::Ins(s)) => {
                        let n = s.chars().count();
                        let consumed = consume(&mut rb, n);
                        if deleting {
                            // a inserted it, b deleted it: cancels out.
                        } else {
                            let text: String = s.chars().take(consumed).collect();
                            out.insert(&text);
                        }
                        debug_assert_eq!(consumed, n.min(consumed.max(n.min(consumed))));
                    }
                    Some(Piece::Del(_)) => unreachable!("handled above"),
                }
            }
        }
    }
    out.trim();
    out
}

/// Consumes up to `n` units from `rb`'s current (retain/del) component,
/// returning how many were consumed.
fn consume(rb: &mut OpReader<'_>, n: usize) -> usize {
    match rb.take(n) {
        Some(Piece::Retain(m)) | Some(Piece::Del(m)) => m,
        _ => n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply_str(op: &TextOp, s: &str) -> String {
        let mut r = Rope::from_str(s);
        op.apply_to(&mut r);
        r.to_string()
    }

    #[test]
    fn basic_apply() {
        assert_eq!(apply_str(&TextOp::ins(2, "XY"), "abcd"), "abXYcd");
        assert_eq!(apply_str(&TextOp::del(1, 2), "abcd"), "ad");
        assert_eq!(apply_str(&TextOp::identity(), "abcd"), "abcd");
    }

    #[test]
    fn tp1_simple_cases() {
        // TP1: apply(apply(d, a), transform(b, a)) == apply(apply(d, b), transform(a, b)).
        let doc = "hello world";
        let cases = vec![
            (TextOp::ins(3, "AB"), TextOp::ins(7, "XY")),
            (TextOp::ins(3, "AB"), TextOp::del(1, 4)),
            (TextOp::del(0, 5), TextOp::del(3, 6)),
            (TextOp::del(2, 3), TextOp::ins(4, "Q")),
            (TextOp::ins(5, "A"), TextOp::ins(5, "B")),
            (TextOp::del(2, 2), TextOp::del(2, 2)),
        ];
        for (a, b) in cases {
            let ab = apply_str(&transform(&b, &a, false), &apply_str(&a, doc));
            let ba = apply_str(&transform(&a, &b, true), &apply_str(&b, doc));
            assert_eq!(ab, ba, "TP1 violated for {a:?} / {b:?}");
        }
    }

    #[test]
    fn compose_matches_sequential_apply() {
        let doc = "abcdefgh";
        let a = TextOp::del(1, 3);
        let b = TextOp::ins(2, "ZZ");
        let c = compose(&a, &b);
        assert_eq!(apply_str(&c, doc), apply_str(&b, &apply_str(&a, doc)));
    }

    #[test]
    fn insert_insert_priority() {
        let doc = "xy";
        let a = TextOp::ins(1, "A");
        let b = TextOp::ins(1, "B");
        // a first.
        let b2 = transform(&b, &a, false);
        assert_eq!(apply_str(&b2, &apply_str(&a, doc)), "xABy");
        let a2 = transform(&a, &b, true);
        assert_eq!(apply_str(&a2, &apply_str(&b, doc)), "xABy");
    }

    #[test]
    fn pre_post_lens() {
        let op = TextOp::ins(2, "AB");
        assert_eq!(op.pre_len(), 2);
        assert_eq!(op.post_len(), 4);
        let op = TextOp::del(1, 3);
        assert_eq!(op.pre_len(), 4);
        assert_eq!(op.post_len(), 1);
    }

    /// Randomised TP1 check over many op pairs.
    #[test]
    fn tp1_randomised() {
        let mut seed = 0x5ee1_u64;
        let mut rand = move |bound: usize| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as usize) % bound.max(1)
        };
        let base: String = "abcdefghijklmnopqrstuvwxyz".repeat(3);
        for case in 0..800 {
            let len = base.chars().count();
            let mk = |rand: &mut dyn FnMut(usize) -> usize| -> TextOp {
                if rand(2) == 0 {
                    let pos = rand(len + 1);
                    let n = 1 + rand(4);
                    TextOp::ins(pos, &"XYZW"[..n.min(4)])
                } else {
                    let pos = rand(len);
                    let n = (1 + rand(5)).min(len - pos);
                    TextOp::del(pos, n)
                }
            };
            let a = mk(&mut rand);
            let b = mk(&mut rand);
            let ab = apply_str(&transform(&b, &a, false), &apply_str(&a, &base));
            let ba = apply_str(&transform(&a, &b, true), &apply_str(&b, &base));
            assert_eq!(ab, ba, "TP1 violated (case {case}) for {a:?} / {b:?}");
        }
    }

    /// Randomised compose check.
    #[test]
    fn compose_randomised() {
        let mut seed = 0xc0ffee_u64;
        let mut rand = move |bound: usize| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as usize) % bound.max(1)
        };
        let base: String = "abcdefghij".repeat(4);
        for case in 0..800 {
            let len0 = base.chars().count();
            let a = if rand(2) == 0 {
                TextOp::ins(rand(len0 + 1), "PQ")
            } else {
                let pos = rand(len0);
                TextOp::del(pos, (1 + rand(4)).min(len0 - pos))
            };
            let mid = apply_str(&a, &base);
            let len1 = mid.chars().count();
            let b = if rand(2) == 0 {
                TextOp::ins(rand(len1 + 1), "Z")
            } else if len1 > 0 {
                let pos = rand(len1);
                TextOp::del(pos, (1 + rand(4)).min(len1 - pos))
            } else {
                TextOp::ins(0, "Z")
            };
            let expect = apply_str(&b, &mid);
            let c = compose(&a, &b);
            assert_eq!(
                apply_str(&c, &base),
                expect,
                "compose broken (case {case}) {a:?} / {b:?}"
            );
        }
    }
}
