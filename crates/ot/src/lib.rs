//! Reference operational-transformation baseline for the Eg-walker
//! evaluation (paper §4.2).
//!
//! OT keeps only the document text plus recent history, making it cheap in
//! memory and instant to load — but merging long-running branches costs
//! `O(n²)` transforms (or worse) and, with memoisation, gigabytes of
//! transient state (paper §1, §4.3–4.4). This crate reproduces that
//! behaviour honestly:
//!
//! * [`textop`]: component-based text operations (`retain`/`insert`/
//!   `delete`) with the classic `transform` and `compose` primitives;
//! * [`merge`]: a control algorithm that merges arbitrary event DAGs by
//!   memoised recursive context transformation (COT-style) — fast and
//!   transform-free on sequential histories, quadratic on divergent ones.
//!
//! Server-based OT algorithms (Jupiter/ShareDB) are not used because they
//! cannot replay the asynchronous traces' branching patterns, as the paper
//! notes in §4.2.

pub mod merge;
pub mod textop;

pub use merge::{replay_ot, OtMerger, OtStats};
pub use textop::{compose, transform, Component, TextOp};
