//! A minimal hand-rolled Rust lexer — the same "no syn, no quote"
//! constraint the in-tree derive macro lives under.
//!
//! The passes need line-accurate tokens, comments preserved (the unsafe
//! audit reads `// SAFETY:` markers and the allocation pass reads
//! `// ALLOC:` waivers), and correct skipping of string/char literals so
//! a `"unwrap()"` inside a string never trips a check. Full fidelity to
//! the reference grammar is *not* needed: floats may lex as
//! `Number . Number`, and shebangs/frontmatter don't occur in this
//! workspace. Every consumer works on the token *stream*, never on spans
//! back into the source, so those simplifications are safe.

/// Token classes the scanners distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `as`, …).
    Ident,
    /// A lifetime (`'a`, `'_`, `'static`).
    Lifetime,
    /// Integer-ish literal run (`0xFF`, `123`, `1u32`; a float lexes as
    /// two `Number`s around a `.` punct).
    Number,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    CharLit,
    /// A single punctuation character (`{`, `[`, `+`, `#`, …).
    Punct,
    /// Line or block comment, text preserved (including the delimiters).
    Comment,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True when the token is exactly the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True when the token is exactly the identifier/keyword `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream. Never fails: unterminated literals
/// simply consume to end of input (the tool lints source that `rustc`
/// already accepted, so this path only matters for robustness).
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let collect = |from: usize, to: usize| -> String { chars[from..to].iter().collect() };

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Comment,
                text: collect(start, i),
                line,
            });
            continue;
        }
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::Comment,
                text: collect(start, i),
                line: start_line,
            });
            continue;
        }

        // Raw / byte string prefixes: r"", r#""#, b"", br#""#.
        if c == 'r' || c == 'b' {
            let mut j = i;
            if chars[j] == 'b' {
                j += 1;
            }
            let mut raw = false;
            if j < n && chars[j] == 'r' {
                raw = true;
                j += 1;
            }
            let mut hashes = 0usize;
            if raw {
                while j < n && chars[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
            }
            if j < n && chars[j] == '"' && (raw || j == i + 1) {
                // A string literal with this prefix. (A plain ident like
                // `rb` followed by `"..."` cannot occur: `rb` is not a
                // valid literal prefix and rustc rejects it.)
                let start = i;
                let start_line = line;
                i = j + 1;
                if raw {
                    // Scan for `"` followed by `hashes` hash marks.
                    'outer: while i < n {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        if chars[i] == '"' {
                            let mut k = 0;
                            while k < hashes && i + 1 + k < n && chars[i + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                i += 1 + hashes;
                                break 'outer;
                            }
                        }
                        i += 1;
                    }
                } else {
                    consume_quoted(&chars, &mut i, &mut line, '"');
                }
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: collect(start, i.min(n)),
                    line: start_line,
                });
                continue;
            }
            if c == 'b' && i + 1 < n && chars[i + 1] == '\'' {
                // Byte char literal b'x'.
                let start = i;
                i += 2;
                consume_quoted(&chars, &mut i, &mut line, '\'');
                toks.push(Tok {
                    kind: TokKind::CharLit,
                    text: collect(start, i.min(n)),
                    line,
                });
                continue;
            }
            // Fall through: ordinary identifier starting with r/b.
        }

        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            consume_quoted(&chars, &mut i, &mut line, '"');
            toks.push(Tok {
                kind: TokKind::Str,
                text: collect(start, i.min(n)),
                line: start_line,
            });
            continue;
        }

        if c == '\'' {
            // Lifetime vs char literal: `'a` with no closing quote right
            // after the ident char is a lifetime.
            let next_is_ident = i + 1 < n && is_ident_start(chars[i + 1]);
            let closes_as_char = i + 2 < n && chars[i + 2] == '\'';
            if next_is_ident && !closes_as_char {
                let start = i;
                i += 1;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: collect(start, i),
                    line,
                });
            } else {
                let start = i;
                i += 1;
                consume_quoted(&chars, &mut i, &mut line, '\'');
                toks.push(Tok {
                    kind: TokKind::CharLit,
                    text: collect(start, i.min(n)),
                    line,
                });
            }
            continue;
        }

        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: collect(start, i),
                line,
            });
            continue;
        }

        if c.is_ascii_digit() {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Number,
                text: collect(start, i),
                line,
            });
            continue;
        }

        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

/// Consumes a quoted literal body up to (and including) the unescaped
/// closing `quote`; `i` starts just past the opening quote.
fn consume_quoted(chars: &[char], i: &mut usize, line: &mut u32, quote: char) {
    let n = chars.len();
    while *i < n {
        let c = chars[*i];
        if c == '\n' {
            *line += 1;
        }
        if c == '\\' {
            *i = (*i + 2).min(n);
            continue;
        }
        *i += 1;
        if c == quote {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn basic_tokens() {
        let t = kinds("fn foo(x: u32) -> u32 { x + 1 }");
        assert_eq!(t[0], (TokKind::Ident, "fn".into()));
        assert_eq!(t[1], (TokKind::Ident, "foo".into()));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Number && s == "1"));
    }

    #[test]
    fn strings_hide_their_content() {
        let t = kinds(r#"let s = "unwrap() [0] panic!";"#);
        assert_eq!(
            t.iter().filter(|(k, _)| *k == TokKind::Str).count(),
            1,
            "{t:?}"
        );
        assert!(!t.iter().any(|(k, s)| *k == TokKind::Ident && s == "unwrap"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let t = kinds(r##"let s = r#"has "quotes" inside"#; x"##);
        assert!(t.iter().any(|(k, _)| *k == TokKind::Str));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && s == "x"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'y'; let nl = '\\n'; }");
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(), 2);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::CharLit).count(), 2);
    }

    #[test]
    fn comments_preserved_with_lines() {
        let toks = lex("// SAFETY: fine\nunsafe {}\n/* block\nspans */ fn f() {}");
        assert_eq!(toks[0].kind, TokKind::Comment);
        assert_eq!(toks[0].line, 1);
        assert!(toks[0].text.contains("SAFETY"));
        let unsafe_tok = toks.iter().find(|t| t.is_ident("unsafe")).unwrap();
        assert_eq!(unsafe_tok.line, 2);
        let f = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 4, "block comment newlines counted");
    }

    #[test]
    fn nested_block_comments() {
        let t = kinds("/* outer /* inner */ still comment */ ident");
        assert_eq!(t.len(), 2);
        assert_eq!(t[1], (TokKind::Ident, "ident".into()));
    }
}
