//! Pass 2 — allocation discipline. Builds a name-based intra-workspace
//! call graph from the token stream and walks it from the hot-path
//! manifest (`[alloc] hot` in `analyze.toml`), flagging any fn reached
//! from a hot entry that contains a known allocating call.
//!
//! Name-based resolution over-approximates (every same-named fn in the
//! configured crates is a candidate callee), which is the safe
//! direction for a regression gate: it can only over-report, never
//! silently miss an edge. Three escape hatches keep it quiet on audited
//! code: `[[alloc.setup]]` fns (amortised pool/slab growth) stop the
//! walk, `[alloc] ignore` names are never followed (collision-prone
//! trait methods), and a `// ALLOC:` comment on the line of — or the
//! line above — an allocating call waives that one site.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use crate::config::Config;
use crate::diag::{Check, Finding};
use crate::lexer::TokKind;
use crate::scan::FileScan;

/// Path-qualified constructors that always allocate.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Box", "new"),
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("Rc", "new"),
    ("Arc", "new"),
];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Method names that (may) allocate on the receiver.
const ALLOC_METHODS: &[&str] = &[
    "push",
    "extend",
    "extend_from_slice",
    "to_owned",
    "to_string",
    "to_vec",
    "collect",
    "reserve",
    "append",
];

/// Constructor-ish path tails never followed as edges (see harvest).
const CTOR_NAMES: &[&str] = &["new", "with_capacity", "from", "default"];

/// Rust keywords that look like calls when followed by `(`.
const CALLISH_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "fn", "as", "in", "let", "move",
];

#[derive(Debug)]
struct AllocSite {
    line: u32,
    what: String,
}

#[derive(Debug)]
struct FnNode {
    scan: usize,
    name: String,
    sites: Vec<AllocSite>,
    callees: BTreeSet<String>,
}

/// Extracts per-fn allocation sites and callees for one file.
fn harvest(scan_idx: usize, scan: &FileScan, nodes: &mut Vec<FnNode>) {
    let toks = &scan.toks;

    // Lines waived by `// ALLOC:` comments (the comment's own line and
    // the line after, mirroring how `// SAFETY:` sits above `unsafe`).
    let mut waived: BTreeSet<u32> = BTreeSet::new();
    for t in toks {
        if t.kind == TokKind::Comment && t.text.contains("ALLOC:") {
            waived.insert(t.line);
            waived.insert(t.line + 1);
        }
    }

    for f in &scan.fns {
        if f.in_test || f.body.is_empty() {
            continue;
        }
        let mut node = FnNode {
            scan: scan_idx,
            name: f.name.clone(),
            sites: Vec::new(),
            callees: BTreeSet::new(),
        };
        let body = f.body.clone();
        let code: Vec<usize> = body
            .clone()
            .filter(|&i| toks[i].kind != TokKind::Comment)
            .collect();
        for (ci, &i) in code.iter().enumerate() {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let next = code.get(ci + 1).map(|&j| &toks[j]);
            let next2 = code.get(ci + 2).map(|&j| &toks[j]);
            let next3 = code.get(ci + 3).map(|&j| &toks[j]);
            let prev = ci.checked_sub(1).map(|p| &toks[code[p]]);

            // `Type::ctor(` allocating paths.
            if next.is_some_and(|p| p.is_punct(':')) && next2.is_some_and(|p| p.is_punct(':')) {
                if let Some(tail) = next3 {
                    if ALLOC_PATHS
                        .iter()
                        .any(|(ty, m)| t.is_ident(ty) && tail.is_ident(m))
                        && !waived.contains(&t.line)
                    {
                        node.sites.push(AllocSite {
                            line: t.line,
                            what: format!("{}::{}", t.text, tail.text),
                        });
                    }
                }
                continue;
            }
            // `vec![` / `format!(` macros.
            if next.is_some_and(|p| p.is_punct('!')) && ALLOC_MACROS.contains(&t.text.as_str()) {
                if !waived.contains(&t.line) {
                    node.sites.push(AllocSite {
                        line: t.line,
                        what: format!("{}!", t.text),
                    });
                }
                continue;
            }
            // Calls: `name(`, `.name(`, or the tail of `Path::name(`.
            if next.is_some_and(|p| p.is_punct('(')) {
                let is_method = prev.is_some_and(|p| p.is_punct('.'));
                if is_method && ALLOC_METHODS.contains(&t.text.as_str()) {
                    if !waived.contains(&t.line) {
                        node.sites.push(AllocSite {
                            line: t.line,
                            what: format!(".{}()", t.text),
                        });
                    }
                    continue;
                }
                let is_path_tail = prev.is_some_and(|p| p.is_punct(':'));
                if is_path_tail && CTOR_NAMES.contains(&t.text.as_str()) {
                    // `Foo::new(...)` resolved by bare name would alias
                    // every constructor in the workspace; constructors
                    // in a *reused* hot path are setup by definition.
                    continue;
                }
                if !CALLISH_KEYWORDS.contains(&t.text.as_str()) {
                    node.callees.insert(t.text.clone());
                }
            }
        }
        nodes.push(node);
    }
}

/// Runs the pass: harvest every configured crate, then BFS from each
/// hot entry fn, reporting reachable allocation sites with their call
/// chain.
pub fn check(scans: &[FileScan], cfg: &Config, findings: &mut Vec<Finding>) {
    if cfg.alloc_hot.is_empty() {
        return;
    }
    let mut nodes: Vec<FnNode> = Vec::new();
    for (si, scan) in scans.iter().enumerate() {
        if cfg.alloc_crates.iter().any(|c| c == &scan.crate_name) {
            harvest(si, scan, &mut nodes);
        }
    }
    // Name -> node indices (over-approximate resolution).
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (ni, node) in nodes.iter().enumerate() {
        by_name.entry(node.name.as_str()).or_default().push(ni);
    }

    let setup: BTreeSet<&str> = cfg.alloc_setup.iter().map(|s| s.fn_name.as_str()).collect();
    let ignore: BTreeSet<&str> = cfg.alloc_ignore.iter().map(String::as_str).collect();

    // Same-crate candidates shadow cross-crate ones: a `self.clear()`
    // in `core` must not resolve into every `clear` in the workspace.
    let resolve = |name: &str, caller_crate: &str| -> Vec<usize> {
        let Some(all) = by_name.get(name) else {
            return Vec::new();
        };
        let same: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&ni| scans[nodes[ni].scan].crate_name == caller_crate)
            .collect();
        if same.is_empty() {
            all.clone()
        } else {
            same
        }
    };

    // Each allocating site is reported once, under the first hot root
    // that reaches it.
    let mut reported: BTreeSet<(usize, u32, String)> = BTreeSet::new();

    for hot in &cfg.alloc_hot {
        let Some(roots) = by_name.get(hot.as_str()) else {
            findings.push(Finding {
                check: Check::Config,
                file: "analyze.toml".into(),
                line: 0,
                fn_name: Some(hot.clone()),
                snippet: String::new(),
                message: format!(
                    "alloc.hot names `{hot}` but no fn with that name exists in crates {:?}",
                    cfg.alloc_crates
                ),
            });
            continue;
        };
        let mut visited: BTreeSet<usize> = BTreeSet::new();
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if visited.insert(r) {
                queue.push_back(r);
            }
        }
        while let Some(ni) = queue.pop_front() {
            let node = &nodes[ni];
            if setup.contains(node.name.as_str()) && !cfg.alloc_hot.iter().any(|h| h == &node.name)
            {
                continue; // audited setup fn: stop the walk here
            }
            let chain = chain_of(&nodes, &parent, ni);
            let scan = &scans[node.scan];
            for site in &node.sites {
                if !reported.insert((node.scan, site.line, site.what.clone())) {
                    continue;
                }
                findings.push(Finding {
                    check: Check::Alloc,
                    file: scan.path.clone(),
                    line: site.line,
                    fn_name: Some(node.name.clone()),
                    snippet: scan.snippet(site.line).to_string(),
                    message: format!(
                        "hot path `{hot}` reaches allocating `{}` via {chain}",
                        site.what
                    ),
                });
            }
            let caller_crate = scans[node.scan].crate_name.clone();
            for callee in nodes[ni].callees.clone() {
                if ignore.contains(callee.as_str()) {
                    continue;
                }
                for t in resolve(&callee, &caller_crate) {
                    if visited.insert(t) {
                        parent.insert(t, ni);
                        queue.push_back(t);
                    }
                }
            }
        }
    }
}

/// `a -> b -> c` chain from the BFS root to `ni`.
fn chain_of(nodes: &[FnNode], parent: &HashMap<usize, usize>, ni: usize) -> String {
    let mut path = vec![ni];
    let mut cur = ni;
    while let Some(&p) = parent.get(&cur) {
        path.push(p);
        cur = p;
        if path.len() > 64 {
            break; // defensive: graphs here are tiny
        }
    }
    path.reverse();
    path.iter()
        .map(|&i| nodes[i].name.as_str())
        .collect::<Vec<_>>()
        .join(" -> ")
}
