//! Workspace file discovery: every `.rs` under `crates/*/src` and the
//! facade's `src/`, lexed and scanned. `vendor/` holds in-tree
//! stand-ins for third-party crates and is deliberately out of scope;
//! `tests/`, `benches/`, and `examples/` never ship in the library
//! binary, so the invariants don't apply there.

use std::path::{Path, PathBuf};

use crate::scan::{scan_file, FileScan};

/// Discovers and scans the workspace rooted at `root`. Files come back
/// sorted by workspace-relative path so every report is deterministic.
pub fn scan_workspace(root: &Path) -> Result<Vec<FileScan>, String> {
    let mut sources: Vec<(String, String, PathBuf)> = Vec::new(); // (rel, crate, abs)

    let crates_dir = root.join("crates");
    for entry in read_dir_sorted(&crates_dir)? {
        let crate_name = entry
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let src_dir = entry.join("src");
        if src_dir.is_dir() {
            collect_rs(&src_dir, root, &crate_name, &mut sources)?;
        }
    }
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        collect_rs(&facade_src, root, "root", &mut sources)?;
    }

    sources.sort_by(|a, b| a.0.cmp(&b.0));
    let mut scans = Vec::with_capacity(sources.len());
    for (rel, crate_name, abs) in sources {
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        scans.push(scan_file(rel, crate_name, &src));
    }
    Ok(scans)
}

fn collect_rs(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    out: &mut Vec<(String, String, PathBuf)>,
) -> Result<(), String> {
    for entry in read_dir_sorted(dir)? {
        if entry.is_dir() {
            collect_rs(&entry, root, crate_name, out)?;
        } else if entry.extension().and_then(|e| e.to_str()) == Some("rs") {
            let rel = entry
                .strip_prefix(root)
                .map_err(|_| format!("{} escapes workspace root", entry.display()))?
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, crate_name.to_string(), entry));
        }
    }
    Ok(())
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = Vec::new();
    for e in rd {
        let e = e.map_err(|err| format!("readdir {}: {err}", dir.display()))?;
        entries.push(e.path());
    }
    entries.sort();
    Ok(entries)
}
