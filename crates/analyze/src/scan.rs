//! Item and attribute scanner: function boundaries, `#[cfg(test)]`
//! regions, and per-token attribution, built on the raw token stream.

use crate::lexer::{lex, Tok, TokKind};

/// One `fn` item (free function, method, or nested fn).
#[derive(Debug, Clone)]
pub struct FnInfo {
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body *including* the outer braces; empty for
    /// bodyless declarations (trait methods, extern).
    pub body: std::ops::Range<usize>,
    /// True when the fn carries `#[test]`/`#[cfg(test)]` or lives inside
    /// a `#[cfg(test)]` module.
    pub in_test: bool,
}

/// One lexed-and-scanned source file.
#[derive(Debug)]
pub struct FileScan {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Crate directory name (`core`, `analyze`, `vendor/serde`, or
    /// `root` for the facade's `src/`).
    pub crate_name: String,
    pub toks: Vec<Tok>,
    pub fns: Vec<FnInfo>,
    /// Innermost containing fn per token index.
    pub fn_of: Vec<Option<usize>>,
    /// True per token index when inside a `#[cfg(test)]` region or a
    /// `#[test]` fn.
    pub in_test: Vec<bool>,
    /// Source lines (for diagnostics snippets), 0-based.
    pub lines: Vec<String>,
}

impl FileScan {
    /// The trimmed source text of 1-based line `line`.
    pub fn snippet(&self, line: u32) -> &str {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|s| s.trim())
            .unwrap_or("")
    }

    /// Name of the innermost fn containing token `idx`, if any.
    pub fn fn_name_at(&self, idx: usize) -> Option<&str> {
        self.fn_of
            .get(idx)
            .copied()
            .flatten()
            .map(|fi| self.fns[fi].name.as_str())
    }
}

/// True when an attribute's token text marks test-only code: `#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, …))]`. A `not(…)` anywhere makes it
/// non-test (`#[cfg(not(test))]` guards production code).
fn attr_is_test(attr_toks: &[Tok]) -> bool {
    let has_test = attr_toks.iter().any(|t| t.is_ident("test"));
    let has_not = attr_toks.iter().any(|t| t.is_ident("not"));
    has_test && !has_not
}

/// Scans one file into functions, test regions, and token attribution.
pub fn scan_file(path: String, crate_name: String, src: &str) -> FileScan {
    let toks = lex(src);
    let lines: Vec<String> = src.lines().map(str::to_string).collect();
    let n = toks.len();

    let mut fns: Vec<FnInfo> = Vec::new();
    let mut in_test = vec![false; n];

    // Brace stack: `true` per frame when the region is test-only.
    let mut stack: Vec<bool> = Vec::new();
    // Set when an item decorated with a test attribute (fn/mod/impl) was
    // seen and its opening brace is still ahead.
    let mut carry_test = false;
    // Attributes seen since the last item token.
    let mut pending_attr_test = false;

    let mut i = 0usize;
    while i < n {
        let t = &toks[i];
        match t.kind {
            TokKind::Comment => {
                i += 1;
                continue;
            }
            TokKind::Punct => {
                if t.is_punct('#') {
                    // `#[...]` or `#![...]`: skip, noting test markers.
                    let mut j = i + 1;
                    if j < n && toks[j].is_punct('!') {
                        j += 1;
                    }
                    if j < n && toks[j].is_punct('[') {
                        let start = j + 1;
                        let mut depth = 1usize;
                        j += 1;
                        while j < n && depth > 0 {
                            if toks[j].is_punct('[') {
                                depth += 1;
                            } else if toks[j].is_punct(']') {
                                depth -= 1;
                            }
                            j += 1;
                        }
                        if attr_is_test(&toks[start..j.saturating_sub(1)]) {
                            pending_attr_test = true;
                        }
                        // Tokens inside the attribute inherit the current
                        // region's test flag (already defaulted below).
                        let region_test = stack.iter().any(|&b| b);
                        for k in i..j {
                            in_test[k] = region_test;
                        }
                        i = j;
                        continue;
                    }
                }
                if t.is_punct('{') {
                    let parent_test = stack.iter().any(|&b| b);
                    stack.push(parent_test || carry_test);
                    carry_test = false;
                } else if t.is_punct('}') {
                    stack.pop();
                    // Leaving a region ends any decorated-item carry too.
                    carry_test = false;
                } else if t.is_punct(';') {
                    carry_test = false;
                }
                in_test[i] = stack.iter().any(|&b| b);
                i += 1;
                continue;
            }
            TokKind::Ident => {}
            _ => {
                in_test[i] = stack.iter().any(|&b| b);
                i += 1;
                continue;
            }
        }

        in_test[i] = stack.iter().any(|&b| b);

        if t.is_ident("fn") {
            // Name (skip comments between `fn` and the name).
            let mut j = i + 1;
            while j < n && toks[j].kind == TokKind::Comment {
                j += 1;
            }
            let name = if j < n && toks[j].kind == TokKind::Ident {
                toks[j].text.clone()
            } else {
                // `fn` inside a macro pattern or similar; skip.
                i += 1;
                continue;
            };
            let fn_line = t.line;
            let fn_is_test = pending_attr_test || stack.iter().any(|&b| b);
            pending_attr_test = false;
            // Find the body opening `{` (or `;` for bodyless decls).
            // `;` inside `(...)`/`[...]` — e.g. a `[u8; 4]` parameter —
            // must not read as end-of-declaration, so track depth.
            let mut k = j + 1;
            let mut body = 0..0;
            let mut depth = 0usize;
            while k < n {
                if toks[k].is_punct('(') || toks[k].is_punct('[') {
                    depth += 1;
                } else if toks[k].is_punct(')') || toks[k].is_punct(']') {
                    depth = depth.saturating_sub(1);
                }
                if depth == 0 && toks[k].is_punct('{') {
                    // Match braces to find the body extent.
                    let open = k;
                    let mut depth = 1usize;
                    k += 1;
                    while k < n && depth > 0 {
                        if toks[k].is_punct('{') {
                            depth += 1;
                        } else if toks[k].is_punct('}') {
                            depth -= 1;
                        }
                        k += 1;
                    }
                    body = open..k;
                    break;
                }
                if depth == 0 && toks[k].is_punct(';') {
                    break;
                }
                k += 1;
            }
            fns.push(FnInfo {
                name,
                line: fn_line,
                body,
                in_test: fn_is_test,
            });
            if fn_is_test {
                carry_test = true;
            }
            // Continue scanning *inside* the body (nested fns, braces).
            i += 1;
            continue;
        }

        if (t.is_ident("mod") || t.is_ident("impl") || t.is_ident("trait") || t.is_ident("struct"))
            && pending_attr_test
        {
            carry_test = true;
            pending_attr_test = false;
        } else if pending_attr_test
            && (t.is_ident("use")
                || t.is_ident("const")
                || t.is_ident("static")
                || t.is_ident("type")
                || t.is_ident("enum"))
        {
            // Attribute consumed by a braceless-or-irrelevant item; a
            // test-gated `enum`/`struct` body is type-only anyway.
            pending_attr_test = false;
        }
        i += 1;
    }

    // Innermost-fn attribution: outer fns appear first, nested fns later
    // overwrite their subrange.
    let mut fn_of = vec![None; n];
    for (fi, f) in fns.iter().enumerate() {
        for slot in &mut fn_of[f.body.clone()] {
            *slot = Some(fi);
        }
    }
    // Tokens inside a `#[test]` fn body count as test tokens even though
    // the enclosing module is not test-gated.
    for f in &fns {
        if f.in_test {
            for flag in &mut in_test[f.body.clone()] {
                *flag = true;
            }
        }
    }

    FileScan {
        path,
        crate_name,
        toks,
        fns,
        fn_of,
        in_test,
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
pub fn outer(x: usize) -> usize {
    fn inner(y: usize) -> usize { y + 1 }
    inner(x)
}

#[cfg(test)]
mod tests {
    fn helper() { data[0]; }
    #[test]
    fn a_test() { assert!(true); }
}

#[cfg(not(test))]
fn production() { }

#[test]
fn top_level_test() { }
"#;

    #[test]
    fn finds_functions() {
        let s = scan_file("f.rs".into(), "demo".into(), SRC);
        let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "outer",
                "inner",
                "helper",
                "a_test",
                "production",
                "top_level_test"
            ]
        );
    }

    #[test]
    fn test_regions_marked() {
        let s = scan_file("f.rs".into(), "demo".into(), SRC);
        let by_name = |n: &str| s.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("outer").in_test);
        assert!(!by_name("inner").in_test);
        assert!(by_name("helper").in_test, "inside cfg(test) mod");
        assert!(by_name("a_test").in_test);
        assert!(!by_name("production").in_test, "cfg(not(test))");
        assert!(by_name("top_level_test").in_test, "#[test] attr");
        // Token-level: the indexing inside the test mod is a test token.
        let idx = s
            .toks
            .iter()
            .position(|t| t.is_ident("data"))
            .expect("data token");
        assert!(s.in_test[idx]);
    }

    #[test]
    fn innermost_attribution() {
        let s = scan_file("f.rs".into(), "demo".into(), SRC);
        let plus = s.toks.iter().position(|t| t.is_punct('+')).unwrap();
        assert_eq!(s.fn_name_at(plus), Some("inner"));
    }
}
