//! A hand-rolled parser for the TOML subset the analyzer's config files
//! use: `[table]` headers, `[[array-of-tables]]` headers, and
//! `key = value` pairs where a value is a string, a (possibly
//! multi-line) array of strings, a bool, or an integer. No external
//! crates — same constraint as the rest of the tool.

use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    Str(String),
    Array(Vec<String>),
    Bool(bool),
    Int(i64),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[String]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

pub type Table = BTreeMap<String, Value>;

/// A parsed document: plain tables by dotted name, and array-of-tables
/// by dotted name. Keys before any header land in the `""` table.
#[derive(Debug, Default)]
pub struct Doc {
    pub tables: BTreeMap<String, Table>,
    pub arrays: BTreeMap<String, Vec<Table>>,
}

impl Doc {
    /// The plain table `name`, or an empty one.
    pub fn table(&self, name: &str) -> Table {
        self.tables.get(name).cloned().unwrap_or_default()
    }

    /// The array-of-tables `name`, or empty.
    pub fn array_of(&self, name: &str) -> &[Table] {
        self.arrays.get(name).map(Vec::as_slice).unwrap_or(&[])
    }
}

enum Target {
    Table(String),
    Array(String),
}

/// Parses `src`; errors carry a 1-based line number.
pub fn parse(src: &str) -> Result<Doc, String> {
    let mut doc = Doc::default();
    let mut target = Target::Table(String::new());

    let mut lines = src.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }

        if let Some(inner) = line.strip_prefix("[[") {
            let name = inner
                .strip_suffix("]]")
                .ok_or_else(|| format!("line {lineno}: malformed [[header]]"))?
                .trim()
                .to_string();
            doc.arrays
                .entry(name.clone())
                .or_default()
                .push(Table::new());
            target = Target::Array(name);
            continue;
        }
        if let Some(inner) = line.strip_prefix('[') {
            let name = inner
                .strip_suffix(']')
                .ok_or_else(|| format!("line {lineno}: malformed [header]"))?
                .trim()
                .to_string();
            target = Target::Table(name);
            continue;
        }

        let eq = line
            .find('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
        let key = line[..eq].trim().to_string();
        let mut rest = line[eq + 1..].trim().to_string();

        // Multi-line arrays: keep consuming lines until the bracket
        // balance closes (strings in these files never contain `[`/`]`).
        if rest.starts_with('[') {
            while bracket_balance(&rest) > 0 {
                let (_, cont) = lines
                    .next()
                    .ok_or_else(|| format!("line {lineno}: unterminated array"))?;
                rest.push(' ');
                rest.push_str(strip_comment(cont).trim());
            }
        }

        let value = parse_value(&rest).map_err(|e| format!("line {lineno}: {e}"))?;
        let table = match &target {
            Target::Table(name) => doc.tables.entry(name.clone()).or_default(),
            Target::Array(name) => doc
                .arrays
                .get_mut(name)
                .and_then(|v| v.last_mut())
                .ok_or_else(|| format!("line {lineno}: internal: no open array table"))?,
        };
        table.insert(key, value);
    }
    Ok(doc)
}

/// Drops a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn bracket_balance(s: &str) -> i32 {
    let mut bal = 0;
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '[' if !in_str => bal += 1,
            ']' if !in_str => bal -= 1,
            _ => {}
        }
    }
    bal
}

fn parse_value(s: &str) -> Result<Value, String> {
    let s = s.trim();
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if s.starts_with('"') {
        return Ok(Value::Str(parse_string(s)?.0));
    }
    if let Some(inner) = s.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array".to_string())?;
        let mut items = Vec::new();
        let mut rest = inner.trim();
        while !rest.is_empty() {
            if rest.starts_with(',') {
                rest = rest[1..].trim_start();
                continue;
            }
            let (item, remainder) = parse_string(rest)?;
            items.push(item);
            rest = remainder.trim_start();
        }
        return Ok(Value::Array(items));
    }
    s.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("unrecognised value `{s}`"))
}

/// Parses one leading double-quoted string; returns (content, rest).
fn parse_string(s: &str) -> Result<(String, &str), String> {
    let body = s
        .strip_prefix('"')
        .ok_or_else(|| format!("expected string, got `{s}`"))?;
    let mut out = String::new();
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            out.push(match c {
                'n' => '\n',
                't' => '\t',
                '\\' => '\\',
                '"' => '"',
                other => other,
            });
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '"' => return Ok((out, &body[i + 1..])),
            other => out.push(other),
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
# top comment
[panic_free]
files = [
  "crates/a/src/x.rs",   # inline comment
  "crates/b/src/y.rs",
]

[[panic_free.exclude]]
file = "crates/a/src/x.rs"
fn = "encode"
reason = "encode side"

[[panic_free.exclude]]
file = "crates/b/src/y.rs"
fn = "emit"
reason = "writer"

[alloc]
hot = ["walk_reusing"]
max = 10
strict = true
"#;

    #[test]
    fn parses_tables_arrays_and_values() {
        let doc = parse(SRC).unwrap();
        let pf = doc.table("panic_free");
        assert_eq!(
            pf["files"].as_array().unwrap(),
            ["crates/a/src/x.rs", "crates/b/src/y.rs"]
        );
        let ex = doc.array_of("panic_free.exclude");
        assert_eq!(ex.len(), 2);
        assert_eq!(ex[0]["fn"].as_str(), Some("encode"));
        assert_eq!(ex[1]["reason"].as_str(), Some("writer"));
        let al = doc.table("alloc");
        assert_eq!(al["max"], Value::Int(10));
        assert_eq!(al["strict"], Value::Bool(true));
    }

    #[test]
    fn strings_with_escapes_and_hashes() {
        let doc = parse(r#"k = "a \"q\" # not comment""#).unwrap();
        assert_eq!(doc.table("")["k"].as_str(), Some(r#"a "q" # not comment"#));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("[broken\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }
}
