//! Pass 3 — unsafe audit. Every `unsafe` block/fn/impl/trait in the
//! workspace must carry a `// SAFETY:` comment within the three lines
//! above it (or on its own line), and the full inventory is committed
//! as `unsafe_inventory.txt` so CI diffs flag undocumented additions.

use std::path::Path;

use crate::config::Config;
use crate::diag::{Check, Finding};
use crate::lexer::TokKind;
use crate::scan::FileScan;

/// One `unsafe` occurrence, rendered as `path:line kind context`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct UnsafeSite {
    pub file: String,
    pub line: u32,
    pub kind: String,
    pub context: String,
    pub documented: bool,
}

impl UnsafeSite {
    fn inventory_line(&self) -> String {
        format!("{}:{} {} {}", self.file, self.line, self.kind, self.context)
    }
}

/// Collects every `unsafe` site in the scanned workspace, sorted.
pub fn collect_sites(scans: &[FileScan]) -> Vec<UnsafeSite> {
    let mut sites = Vec::new();
    for scan in scans {
        let toks = &scan.toks;
        for (i, t) in toks.iter().enumerate() {
            if !t.is_ident("unsafe") {
                continue;
            }
            let next = toks[i + 1..].iter().find(|nt| nt.kind != TokKind::Comment);
            let kind = match next {
                Some(nt) if nt.is_ident("fn") => "fn",
                Some(nt) if nt.is_ident("impl") => "impl",
                Some(nt) if nt.is_ident("trait") => "trait",
                Some(nt) if nt.is_ident("extern") => "extern",
                Some(nt) if nt.is_punct('{') => "block",
                // `&unsafe`? `unsafe` in attr? Anything else is still
                // an unsafe surface worth inventorying.
                _ => "other",
            };
            // A SAFETY comment counts when it sits on the same line or
            // up to three lines above the `unsafe` token.
            let lo = t.line.saturating_sub(3);
            let documented = toks.iter().any(|c| {
                c.kind == TokKind::Comment
                    && c.text.contains("SAFETY:")
                    && c.line >= lo
                    && c.line <= t.line
            });
            let context = match kind {
                "fn" | "impl" | "trait" => {
                    // First few code tokens after `unsafe` name the item.
                    let words: Vec<&str> = toks[i + 1..]
                        .iter()
                        .filter(|nt| nt.kind != TokKind::Comment)
                        .take_while(|nt| !nt.is_punct('{') && !nt.is_punct('('))
                        .take(6)
                        .map(|nt| nt.text.as_str())
                        .collect();
                    words.join(" ")
                }
                _ => scan
                    .fn_name_at(i)
                    .map(|n| format!("in fn {n}"))
                    .unwrap_or_else(|| "at module scope".into()),
            };
            sites.push(UnsafeSite {
                file: scan.path.clone(),
                line: t.line,
                kind: kind.to_string(),
                context,
                documented,
            });
        }
    }
    sites.sort();
    sites
}

/// Renders the committed inventory format.
pub fn render_inventory(sites: &[UnsafeSite]) -> String {
    let mut out = String::from(
        "# unsafe inventory — regenerate with `cargo run -p eg-analyze -- check --write-inventory`\n",
    );
    for s in sites {
        out.push_str(&s.inventory_line());
        out.push('\n');
    }
    out
}

/// Runs the pass: undocumented sites are findings, and the committed
/// inventory must match the scan exactly. With `write_inventory` the
/// file is rewritten instead of diffed.
pub fn check(
    scans: &[FileScan],
    cfg: &Config,
    root: &Path,
    write_inventory: bool,
    findings: &mut Vec<Finding>,
) -> Result<(), String> {
    let sites = collect_sites(scans);
    for s in &sites {
        if !s.documented {
            findings.push(Finding {
                check: Check::UnsafeDoc,
                file: s.file.clone(),
                line: s.line,
                fn_name: None,
                snippet: s.context.clone(),
                message: format!(
                    "`unsafe` {} without a `// SAFETY:` comment within 3 lines above",
                    s.kind
                ),
            });
        }
    }

    let inv_path = root.join(&cfg.inventory_path);
    let rendered = render_inventory(&sites);
    if write_inventory {
        std::fs::write(&inv_path, &rendered)
            .map_err(|e| format!("cannot write {}: {e}", inv_path.display()))?;
        return Ok(());
    }
    let committed = std::fs::read_to_string(&inv_path).unwrap_or_default();
    let committed_lines: Vec<&str> = committed
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .collect();
    let current_lines: Vec<String> = sites.iter().map(UnsafeSite::inventory_line).collect();

    for line in &current_lines {
        if !committed_lines.iter().any(|c| c == line) {
            findings.push(Finding {
                check: Check::Inventory,
                file: cfg.inventory_path.clone(),
                line: 0,
                fn_name: None,
                snippet: line.clone(),
                message: "new unsafe site not in committed inventory — audit it, then \
                          rerun with --write-inventory"
                    .into(),
            });
        }
    }
    for line in &committed_lines {
        if !current_lines.iter().any(|c| c == line) {
            findings.push(Finding {
                check: Check::Inventory,
                file: cfg.inventory_path.clone(),
                line: 0,
                fn_name: None,
                snippet: (*line).to_string(),
                message: "inventory lists an unsafe site that no longer exists — \
                          rerun with --write-inventory"
                    .into(),
            });
        }
    }
    Ok(())
}
