//! CLI for the workspace invariant checker.
//!
//! ```text
//! eg-analyze check [--root DIR] [--write-inventory]   # the CI gate
//! eg-analyze inventory [--root DIR]                   # print unsafe sites
//! ```
//!
//! `check` exits 1 when any finding survives the allowlist.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: eg-analyze <check|inventory> [--root DIR] [--write-inventory]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    let mut root = PathBuf::from(".");
    let mut write_inventory = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(dir) = args.next() else {
                    return usage();
                };
                root = PathBuf::from(dir);
            }
            "--write-inventory" => write_inventory = true,
            _ => return usage(),
        }
    }

    match cmd.as_str() {
        "check" => match eg_analyze::run_check(&root, write_inventory) {
            Ok(findings) => {
                print!("{}", eg_analyze::render_report(&findings));
                if findings.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("eg-analyze: error: {e}");
                ExitCode::from(2)
            }
        },
        "inventory" => match eg_analyze::workspace::scan_workspace(&root) {
            Ok(scans) => {
                let sites = eg_analyze::unsafe_audit::collect_sites(&scans);
                print!("{}", eg_analyze::unsafe_audit::render_inventory(&sites));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("eg-analyze: error: {e}");
                ExitCode::from(2)
            }
        },
        _ => usage(),
    }
}
