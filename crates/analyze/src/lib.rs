//! `eg-analyze` — workspace invariant checker.
//!
//! Three passes over a hand-rolled token stream (no syn/quote):
//!
//! 1. **Panic-freedom** ([`panic_free`]): files listed in
//!    `analyze.toml [panic_free]` must not call the panicking surface
//!    outside tests and per-fn carve-outs.
//! 2. **Allocation discipline** ([`alloc`]): fns in the hot-path
//!    manifest must not transitively reach allocating calls.
//! 3. **Unsafe audit** ([`unsafe_audit`]): every `unsafe` needs a
//!    `// SAFETY:` comment and a committed inventory line.
//!
//! Findings surviving the committed allowlist fail the run; allowlist
//! entries that match nothing are themselves findings (stale-allow).

pub mod alloc;
pub mod config;
pub mod diag;
pub mod lexer;
pub mod panic_free;
pub mod scan;
pub mod toml_lite;
pub mod unsafe_audit;
pub mod workspace;

use std::path::Path;

use diag::Finding;

/// Runs all three passes on the workspace at `root` and returns the
/// post-allowlist findings, sorted. An empty vec means the gate passes.
pub fn run_check(root: &Path, write_inventory: bool) -> Result<Vec<Finding>, String> {
    let cfg = config::load_config(root)?;
    let allow = config::load_allowlist(root)?;
    let scans = workspace::scan_workspace(root)?;

    let mut findings = Vec::new();
    panic_free::check(&scans, &cfg, &mut findings);
    alloc::check(&scans, &cfg, &mut findings);
    unsafe_audit::check(&scans, &cfg, root, write_inventory, &mut findings)?;

    let mut findings = diag::apply_allowlist(findings, &allow);
    diag::sort_findings(&mut findings);
    Ok(findings)
}

/// Renders findings plus a one-line verdict, exactly as the golden
/// fixture files record it.
pub fn render_report(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    if findings.is_empty() {
        out.push_str("eg-analyze: clean\n");
    } else {
        out.push_str(&format!("eg-analyze: {} finding(s)\n", findings.len()));
    }
    out
}
