//! Findings, rendering, and allowlist suppression.

use std::fmt;

/// Which pass/check produced a finding. The string form is what
/// allowlist entries name in their `check` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Check {
    /// `unwrap`/`expect`/`panic!`-family in a panic-free module.
    Panic,
    /// Raw slice/array indexing in a panic-free module.
    Index,
    /// Unguarded `+`/`*` on length-typed operands in a panic-free module.
    Arith,
    /// Narrowing `as` cast on a length-typed operand.
    Cast,
    /// Hot-path fn transitively reaches an allocating call.
    Alloc,
    /// `unsafe` without a `// SAFETY:` comment.
    UnsafeDoc,
    /// Committed `unsafe_inventory.txt` out of date.
    Inventory,
    /// Allowlist entry matched nothing (stale).
    StaleAllow,
    /// analyze.toml / allowlist problems.
    Config,
}

impl Check {
    pub fn name(self) -> &'static str {
        match self {
            Check::Panic => "panic",
            Check::Index => "index",
            Check::Arith => "arith",
            Check::Cast => "cast",
            Check::Alloc => "alloc",
            Check::UnsafeDoc => "unsafe-doc",
            Check::Inventory => "inventory",
            Check::StaleAllow => "stale-allow",
            Check::Config => "config",
        }
    }
}

/// One diagnostic. Renders as
/// `path:line: [check] message (in fn_name)` followed by the source
/// snippet, matching the golden fixture files.
#[derive(Debug, Clone)]
pub struct Finding {
    pub check: Check,
    pub file: String,
    pub line: u32,
    pub fn_name: Option<String>,
    pub snippet: String,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.check.name(),
            self.message
        )?;
        if let Some(name) = &self.fn_name {
            write!(f, " (in {name})")?;
        }
        if !self.snippet.is_empty() {
            write!(f, "\n    | {}", self.snippet)?;
        }
        Ok(())
    }
}

/// One committed allowlist entry. `file` + `check` are required; `fn`
/// and `snippet` narrow the match; `reason` is mandatory prose.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub file: String,
    pub check: String,
    pub fn_name: Option<String>,
    pub snippet: Option<String>,
    pub reason: String,
}

impl AllowEntry {
    fn matches(&self, f: &Finding) -> bool {
        if self.file != f.file || self.check != f.check.name() {
            return false;
        }
        if let Some(fn_name) = &self.fn_name {
            if f.fn_name.as_deref() != Some(fn_name.as_str()) {
                return false;
            }
        }
        if let Some(snip) = &self.snippet {
            if !f.snippet.contains(snip.as_str()) {
                return false;
            }
        }
        true
    }
}

/// Drops findings matched by the allowlist; any entry that matched
/// nothing becomes a `stale-allow` finding so dead suppressions cannot
/// linger after the underlying code is fixed.
pub fn apply_allowlist(findings: Vec<Finding>, allow: &[AllowEntry]) -> Vec<Finding> {
    let mut used = vec![false; allow.len()];
    let mut kept: Vec<Finding> = Vec::new();
    for f in findings {
        let mut suppressed = false;
        for (i, entry) in allow.iter().enumerate() {
            if entry.matches(&f) {
                used[i] = true;
                suppressed = true;
                // Keep scanning so overlapping entries all count as used.
            }
        }
        if !suppressed {
            kept.push(f);
        }
    }
    for (entry, used) in allow.iter().zip(used) {
        if !used {
            kept.push(Finding {
                check: Check::StaleAllow,
                file: entry.file.clone(),
                line: 0,
                fn_name: entry.fn_name.clone(),
                snippet: String::new(),
                message: format!(
                    "allowlist entry (check = \"{}\") matched nothing — remove it",
                    entry.check
                ),
            });
        }
    }
    kept
}

/// Stable output order: file, then line, then check.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.check)
            .partial_cmp(&(&b.file, b.line, b.check))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, fn_name: &str, snippet: &str) -> Finding {
        Finding {
            check: Check::Panic,
            file: file.into(),
            line: 3,
            fn_name: Some(fn_name.into()),
            snippet: snippet.into(),
            message: "call to unwrap()".into(),
        }
    }

    #[test]
    fn allowlist_suppresses_and_flags_stale() {
        let allow = vec![
            AllowEntry {
                file: "a.rs".into(),
                check: "panic".into(),
                fn_name: Some("f".into()),
                snippet: None,
                reason: "guarded".into(),
            },
            AllowEntry {
                file: "never.rs".into(),
                check: "panic".into(),
                fn_name: None,
                snippet: None,
                reason: "obsolete".into(),
            },
        ];
        let out = apply_allowlist(
            vec![
                finding("a.rs", "f", "x.unwrap()"),
                finding("a.rs", "g", "y.unwrap()"),
            ],
            &allow,
        );
        // f suppressed, g kept, stale entry reported.
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|f| f.fn_name.as_deref() == Some("g")));
        assert!(out.iter().any(|f| f.check == Check::StaleAllow));
    }

    #[test]
    fn snippet_narrowing() {
        let allow = vec![AllowEntry {
            file: "a.rs".into(),
            check: "panic".into(),
            fn_name: None,
            snippet: Some("TABLES".into()),
            reason: "masked".into(),
        }];
        let out = apply_allowlist(vec![finding("a.rs", "f", "x.unwrap()")], &allow);
        // Snippet does not match -> finding kept AND entry stale.
        assert_eq!(out.len(), 2);
    }
}
