//! Pass 1 — panic-freedom. In files declared panic-free, non-test code
//! must not call the panicking surface: `unwrap`/`expect`, the
//! `panic!`-family macros, non-debug asserts, raw slice indexing, or
//! unguarded length arithmetic / narrowing casts. Encode-side fns are
//! carved out per-fn in `analyze.toml` with a written reason.

use crate::config::Config;
use crate::diag::{Check, Finding};
use crate::lexer::{Tok, TokKind};
use crate::scan::FileScan;

/// Macros that abort on reach.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
/// Asserts compiled into release builds (debug_assert* stays legal).
const ASSERT_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne"];

/// Keywords that may directly precede `[` without being an indexed
/// value (slice patterns, array types after `mut`, …).
const NON_OPERAND_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "trait", "type", "union", "unsafe", "use", "where", "while",
    "yield",
];

/// Integer types an `as` cast can truncate length values into.
const NARROW_INT_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Heuristic: does this identifier smell like a length/count/size?
fn is_lenlike(name: &str) -> bool {
    name.split('_').any(|part| {
        matches!(
            part,
            "len" | "length" | "count" | "size" | "capacity" | "total" | "n" | "num"
        ) || part.ends_with("len")
    })
}

fn is_operand_end(t: &Tok) -> bool {
    match t.kind {
        TokKind::Ident => !NON_OPERAND_KEYWORDS.contains(&t.text.as_str()),
        TokKind::Number => true,
        TokKind::Punct => t.is_punct(')') || t.is_punct(']') || t.is_punct('?'),
        _ => false,
    }
}

fn is_operand_start(t: &Tok) -> bool {
    matches!(t.kind, TokKind::Ident | TokKind::Number) || t.is_punct('(')
}

/// Index of the previous/next non-comment token.
fn prev_code(toks: &[Tok], i: usize) -> Option<usize> {
    toks[..i].iter().rposition(|t| t.kind != TokKind::Comment)
}

fn next_code(toks: &[Tok], i: usize) -> Option<usize> {
    toks[i + 1..]
        .iter()
        .position(|t| t.kind != TokKind::Comment)
        .map(|off| i + 1 + off)
}

/// Any length-smelling identifier in the ±`radius` token window?
fn lenlike_nearby(toks: &[Tok], i: usize, radius: usize) -> bool {
    let lo = i.saturating_sub(radius);
    let hi = (i + radius + 1).min(toks.len());
    toks[lo..hi]
        .iter()
        .any(|t| t.kind == TokKind::Ident && is_lenlike(&t.text))
}

/// Runs the pass over every configured panic-free file.
pub fn check(scans: &[FileScan], cfg: &Config, findings: &mut Vec<Finding>) {
    for file in &cfg.panic_free_files {
        if !scans.iter().any(|s| &s.path == file) {
            findings.push(Finding {
                check: Check::Config,
                file: file.clone(),
                line: 0,
                fn_name: None,
                snippet: String::new(),
                message: "panic_free.files names a file that does not exist".into(),
            });
        }
    }
    for scan in scans {
        if cfg.panic_free_files.iter().any(|f| f == &scan.path) {
            check_file(scan, cfg, findings);
        }
    }
}

fn check_file(scan: &FileScan, cfg: &Config, findings: &mut Vec<Finding>) {
    let toks = &scan.toks;
    let n = toks.len();

    // Token mask for excluded (encode-side) fns; nested fns inherit
    // because body ranges nest.
    let excluded_names = cfg.excluded_fns(&scan.path);
    let mut excluded = vec![false; n];
    for f in &scan.fns {
        if excluded_names.contains(&f.name.as_str()) {
            for flag in &mut excluded[f.body.clone()] {
                *flag = true;
            }
        }
    }

    let mut push = |check: Check, i: usize, message: String| {
        findings.push(Finding {
            check,
            file: scan.path.clone(),
            line: toks[i].line,
            fn_name: scan.fn_name_at(i).map(str::to_string),
            snippet: scan.snippet(toks[i].line).to_string(),
            message,
        });
    };

    for i in 0..n {
        if scan.in_test[i] || excluded[i] {
            continue;
        }
        let t = &toks[i];
        match t.kind {
            TokKind::Ident => {}
            TokKind::Punct if t.is_punct('[') => {
                if let Some(p) = prev_code(toks, i) {
                    if !scan.in_test[p] && !excluded[p] && is_operand_end(&toks[p]) {
                        push(
                            Check::Index,
                            i,
                            "raw slice indexing — use `.get(..)` and downgrade".into(),
                        );
                    }
                }
                continue;
            }
            TokKind::Punct if t.is_punct('+') || t.is_punct('*') => {
                let (Some(p), Some(nx)) = (prev_code(toks, i), next_code(toks, i)) else {
                    continue;
                };
                if is_operand_end(&toks[p])
                    && is_operand_start(&toks[nx])
                    && lenlike_nearby(toks, i, 5)
                {
                    push(
                        Check::Arith,
                        i,
                        format!(
                            "unchecked `{}` on length-typed operands — use checked_{}",
                            t.text,
                            if t.is_punct('+') { "add" } else { "mul" }
                        ),
                    );
                }
                continue;
            }
            _ => continue,
        }

        // Identifier checks.
        let next = next_code(toks, i);
        let next_tok = next.map(|j| &toks[j]);

        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && next_tok.is_some_and(|nt| nt.is_punct('('))
            && prev_code(toks, i).is_some_and(|p| toks[p].is_punct('.'))
        {
            push(Check::Panic, i, format!("call to `{}()`", t.text));
            continue;
        }
        if next_tok.is_some_and(|nt| nt.is_punct('!')) {
            if PANIC_MACROS.contains(&t.text.as_str()) {
                push(Check::Panic, i, format!("`{}!` macro", t.text));
                continue;
            }
            if ASSERT_MACROS.contains(&t.text.as_str()) {
                push(
                    Check::Panic,
                    i,
                    format!(
                        "non-debug `{}!` — use debug_{}! or return an error",
                        t.text, t.text
                    ),
                );
                continue;
            }
        }
        if t.is_ident("as") {
            if let Some(nt) = next_tok {
                if nt.kind == TokKind::Ident
                    && NARROW_INT_TYPES.contains(&nt.text.as_str())
                    && lenlike_nearby(toks, i, 5)
                {
                    push(
                        Check::Cast,
                        i,
                        format!(
                            "narrowing `as {}` on length-typed operand — use try_from",
                            nt.text
                        ),
                    );
                }
            }
        }
    }
}
