//! Loading `analyze.toml` (what to check) and `analyze-allowlist.toml`
//! (accepted findings, each with a reason).

use std::collections::BTreeMap;
use std::path::Path;

use crate::diag::AllowEntry;
use crate::toml_lite::{self, Table};

/// An encode-side or otherwise out-of-scope fn inside a panic-free file.
#[derive(Debug, Clone)]
pub struct ExcludedFn {
    pub file: String,
    pub fn_name: String,
    pub reason: String,
}

/// A setup fn the allocation pass may traverse into without flagging
/// (amortised slab growth, pool construction).
#[derive(Debug, Clone)]
pub struct SetupFn {
    pub fn_name: String,
    pub reason: String,
}

#[derive(Debug, Default)]
pub struct Config {
    /// Workspace-relative files whose non-test code must be panic-free.
    pub panic_free_files: Vec<String>,
    /// fn-level carve-outs within those files.
    pub panic_free_excludes: Vec<ExcludedFn>,
    /// Hot-path entry fn names for the allocation pass.
    pub alloc_hot: Vec<String>,
    /// Crate dirs (names under `crates/`) the call graph resolves into.
    pub alloc_crates: Vec<String>,
    /// Callee names never followed (name-collision false positives).
    pub alloc_ignore: Vec<String>,
    /// Allocation-pass carve-outs.
    pub alloc_setup: Vec<SetupFn>,
    /// Committed inventory path, workspace-relative.
    pub inventory_path: String,
}

impl Config {
    /// The set of excluded fn names for one panic-free file.
    pub fn excluded_fns(&self, file: &str) -> Vec<&str> {
        self.panic_free_excludes
            .iter()
            .filter(|e| e.file == file)
            .map(|e| e.fn_name.as_str())
            .collect()
    }
}

fn req_str(t: &Table, key: &str, ctx: &str) -> Result<String, String> {
    t.get(key)
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("{ctx}: missing string key `{key}`"))
}

fn str_list(t: &Table, key: &str) -> Vec<String> {
    t.get(key)
        .and_then(|v| v.as_array())
        .map(|a| a.to_vec())
        .unwrap_or_default()
}

/// Loads `analyze.toml` from the workspace root.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("analyze.toml");
    let src = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = toml_lite::parse(&src).map_err(|e| format!("analyze.toml: {e}"))?;

    let pf = doc.table("panic_free");
    let al = doc.table("alloc");
    let ua = doc.table("unsafe_audit");

    let mut cfg = Config {
        panic_free_files: str_list(&pf, "files"),
        panic_free_excludes: Vec::new(),
        alloc_hot: str_list(&al, "hot"),
        alloc_crates: str_list(&al, "crates"),
        alloc_ignore: str_list(&al, "ignore"),
        alloc_setup: Vec::new(),
        inventory_path: ua
            .get("inventory")
            .and_then(|v| v.as_str())
            .unwrap_or("unsafe_inventory.txt")
            .to_string(),
    };

    for (i, t) in doc.array_of("panic_free.exclude").iter().enumerate() {
        let ctx = format!("analyze.toml [[panic_free.exclude]] #{}", i + 1);
        cfg.panic_free_excludes.push(ExcludedFn {
            file: req_str(t, "file", &ctx)?,
            fn_name: req_str(t, "fn", &ctx)?,
            reason: req_str(t, "reason", &ctx)?,
        });
    }
    for (i, t) in doc.array_of("alloc.setup").iter().enumerate() {
        let ctx = format!("analyze.toml [[alloc.setup]] #{}", i + 1);
        cfg.alloc_setup.push(SetupFn {
            fn_name: req_str(t, "fn", &ctx)?,
            reason: req_str(t, "reason", &ctx)?,
        });
    }

    // Excluded fns must point at configured panic-free files, so a file
    // rename cannot silently orphan its carve-outs.
    for e in &cfg.panic_free_excludes {
        if !cfg.panic_free_files.iter().any(|f| f == &e.file) {
            return Err(format!(
                "analyze.toml: exclude for `{}` names `{}` which is not in panic_free.files",
                e.fn_name, e.file
            ));
        }
    }
    Ok(cfg)
}

/// Loads `analyze-allowlist.toml`; a missing file means an empty list.
pub fn load_allowlist(root: &Path) -> Result<Vec<AllowEntry>, String> {
    let path = root.join("analyze-allowlist.toml");
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    let doc = toml_lite::parse(&src).map_err(|e| format!("analyze-allowlist.toml: {e}"))?;

    let mut entries = Vec::new();
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    for (i, t) in doc.array_of("allow").iter().enumerate() {
        let ctx = format!("analyze-allowlist.toml [[allow]] #{}", i + 1);
        let entry = AllowEntry {
            file: req_str(t, "file", &ctx)?,
            check: req_str(t, "check", &ctx)?,
            fn_name: t.get("fn").and_then(|v| v.as_str()).map(str::to_string),
            snippet: t
                .get("snippet")
                .and_then(|v| v.as_str())
                .map(str::to_string),
            reason: req_str(t, "reason", &ctx)?,
        };
        if entry.reason.trim().len() < 10 {
            return Err(format!("{ctx}: reason is too short to be meaningful"));
        }
        let key = format!(
            "{}|{}|{}|{}",
            entry.file,
            entry.check,
            entry.fn_name.as_deref().unwrap_or(""),
            entry.snippet.as_deref().unwrap_or("")
        );
        if let Some(prev) = seen.insert(key, i + 1) {
            return Err(format!("{ctx}: duplicate of entry #{prev}"));
        }
        entries.push(entry);
    }
    Ok(entries)
}
