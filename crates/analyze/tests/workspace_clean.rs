//! Self-check: the real workspace must pass its own gate — the exact
//! invocation CI runs. A stale allowlist entry is itself a finding, so
//! `clean` also proves the committed allowlist carries no dead weight.

use std::path::Path;

#[test]
fn workspace_gate_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = eg_analyze::run_check(&root, false).expect("workspace gate must run");
    assert!(
        findings.is_empty(),
        "eg-analyze found regressions:\n{}",
        eg_analyze::render_report(&findings)
    );
}
