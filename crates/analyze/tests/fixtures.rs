//! Golden tests: each fixture workspace under `tests/fixtures/` runs the
//! full gate and must render exactly its committed `expected.txt`.
//!
//! Regenerate the goldens after an intentional diagnostic change with
//! `EG_ANALYZE_BLESS=1 cargo test -p eg-analyze --test fixtures`.

use std::path::{Path, PathBuf};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Runs the gate on one fixture workspace and compares against the
/// golden. `must_contain` pins the load-bearing fragments so a blessed
/// regression (e.g. a pass silently going quiet) still fails loudly.
fn run_fixture(name: &str, must_contain: &[&str], must_not_contain: &[&str]) {
    let root = fixture_root(name);
    let findings = eg_analyze::run_check(&root, false).expect("fixture config must load");
    let got = eg_analyze::render_report(&findings);
    for frag in must_contain {
        assert!(
            got.contains(frag),
            "fixture `{name}`: report is missing `{frag}`:\n{got}"
        );
    }
    for frag in must_not_contain {
        assert!(
            !got.contains(frag),
            "fixture `{name}`: report wrongly contains `{frag}`:\n{got}"
        );
    }
    let golden = root.join("expected.txt");
    if std::env::var_os("EG_ANALYZE_BLESS").is_some() {
        std::fs::write(&golden, &got).expect("bless write");
        return;
    }
    let want = std::fs::read_to_string(&golden).unwrap_or_default();
    assert_eq!(
        got, want,
        "fixture `{name}` diverged from expected.txt; if intentional, \
         rerun with EG_ANALYZE_BLESS=1"
    );
}

#[test]
fn panic_pass_fires_and_suppresses() {
    run_fixture(
        "panic_ws",
        &[
            "[panic] call to `unwrap()` (in decode)",
            "[index] raw slice indexing",
            "[arith] unchecked `+`",
            "[cast] narrowing `as u16`",
            "non-debug `assert!`",
            // The allowlist entry that matches nothing must surface.
            "[stale-allow]",
        ],
        &[
            // Suppressed by the live allowlist entry.
            "masked_lookup",
            // Carved out via [[panic_free.exclude]].
            "(in encode)",
            // cfg(test) code is out of scope.
            "test_only_code_is_ignored",
        ],
    );
}

#[test]
fn alloc_pass_flags_transitive_chain() {
    run_fixture(
        "alloc_ws",
        &[
            // The finding names the full call chain from the hot entry.
            "hot_loop -> step -> grow",
            "[alloc]",
        ],
        &[
            // Setup fn, line waiver, and unreachable fn stay quiet.
            "prepare",
            "waived",
            "cold_path",
        ],
    );
}

#[test]
fn unsafe_audit_diffs_inventory() {
    run_fixture(
        "unsafe_ws",
        &[
            "[unsafe-doc] `unsafe` block without a `// SAFETY:` comment",
            "new unsafe site not in committed inventory",
            "inventory lists an unsafe site that no longer exists",
        ],
        &[
            // The documented fn and its block are audited, not flagged.
            "fn documented",
        ],
    );
}
