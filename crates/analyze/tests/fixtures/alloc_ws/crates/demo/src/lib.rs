//! Fixture: the allocation pass must follow `hot_loop -> step -> grow`
//! and flag the transitive `push`, stop at the `prepare` setup fn,
//! honour the `// ALLOC:` line waiver in `waived`, and never reach
//! `cold_path`.

pub fn hot_loop(buf: &mut Vec<u8>, n: usize) {
    for _ in 0..n {
        step(buf);
    }
    prepare(buf);
    waived(buf);
}

fn step(buf: &mut Vec<u8>) {
    grow(buf);
}

fn grow(buf: &mut Vec<u8>) {
    buf.push(1);
}

fn prepare(buf: &mut Vec<u8>) {
    buf.reserve(64);
}

fn waived(buf: &mut Vec<u8>) {
    // ALLOC: fixed-capacity inline buffer in the real workspace
    buf.push(2);
}

pub fn cold_path(out: &mut Vec<u8>) {
    out.extend_from_slice(b"unreached");
}
