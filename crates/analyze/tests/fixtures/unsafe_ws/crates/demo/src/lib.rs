//! Fixture: the unsafe audit must accept the documented fn, flag the
//! undocumented block, and diff both directions against the committed
//! inventory (one new site, one stale line).

/// Reads the byte `ptr` points at.
///
/// # Safety
/// `ptr` must be valid for reads.
// SAFETY: the caller contract above is the whole obligation.
pub unsafe fn documented(ptr: *const u8) -> u8 {
    // SAFETY: caller guarantees `ptr` is valid for reads.
    unsafe { *ptr }
}

pub fn undocumented(bytes: &[u8]) -> u8 {
    unsafe { bytes.as_ptr().read() }
}
