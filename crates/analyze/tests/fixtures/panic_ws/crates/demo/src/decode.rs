//! Fixture: the panic-freedom pass must flag every pattern below in
//! `decode`, suppress `masked_lookup` via the allowlist, skip `encode`
//! via the config carve-out, and ignore the test module entirely.

const TABLE: [u32; 16] = [0; 16];

pub fn decode(bytes: &[u8]) -> usize {
    let first = bytes.first().copied().unwrap();
    let second = bytes[1];
    let total = bytes.len() + second as usize;
    let small = total as u16;
    assert!(total > 0);
    first as usize + small as usize
}

pub fn masked_lookup(i: usize) -> u32 {
    TABLE[i & 0xF]
}

pub fn encode(out: &mut Vec<u8>, vals: &[usize]) {
    for k in 0..vals.len() {
        out.push(vals[k] as u8);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_only_code_is_ignored() {
        let v = [1, 2, 3];
        assert_eq!(v[0], 1);
    }
}
