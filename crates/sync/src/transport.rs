//! The [`Transport`] seam: how encoded sync messages move between nodes.
//!
//! The sync engine never touches a socket or a queue directly — it hands
//! opaque payload bytes to a [`Transport`] and polls deliveries back out.
//! [`InMemoryTransport`] is the deterministic simulated implementation
//! (per-message random delay, probabilistic loss, reordering); a real
//! deployment would implement the same four methods over TCP, QUIC, or a
//! message broker without the engine changing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Index of a node in the sync engine (position in the replica vector).
pub type NodeId = usize;

/// Simulated time, in integer ticks.
pub type Tick = u64;

/// Behaviour of every link in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// Minimum delivery delay, in ticks.
    pub min_delay: u64,
    /// Maximum delivery delay, in ticks (inclusive).
    pub max_delay: u64,
    /// Probability of losing a message, in parts per thousand.
    pub drop_per_mille: u16,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            min_delay: 1,
            max_delay: 8,
            drop_per_mille: 0,
        }
    }
}

/// A message handed back by [`Transport::poll`].
#[derive(Debug, Clone)]
pub struct Delivery {
    /// The sending node.
    pub src: NodeId,
    /// The receiving node.
    pub dst: NodeId,
    /// The encoded message.
    pub payload: Vec<u8>,
}

/// What a transport did with a submitted message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The message is in flight and will be delivered by a later poll.
    Queued,
    /// The message was lost at send time (lossy link).
    Dropped,
}

/// Point-to-point movement of encoded messages between nodes.
///
/// Implementations own delay, loss, and ordering; the engine owns what to
/// send and what delivery means. All methods must be deterministic given
/// the construction seed.
pub trait Transport: std::fmt::Debug {
    /// Hands a payload to the network at time `now`.
    fn send(&mut self, now: Tick, src: NodeId, dst: NodeId, payload: Vec<u8>) -> SendOutcome;

    /// Drains every message due at or before `now`, in deterministic
    /// (delivery time, send order) order.
    fn poll(&mut self, now: Tick) -> Vec<Delivery>;

    /// The number of messages queued but not yet delivered.
    fn in_flight(&self) -> usize;

    /// Drops queued messages for which `sever(src, dst)` returns `true`
    /// (e.g. links cut by a partition), returning how many were lost.
    fn cut(&mut self, sever: &mut dyn FnMut(NodeId, NodeId) -> bool) -> usize;
}

#[derive(Debug, Clone)]
struct InFlight {
    deliver_at: Tick,
    /// Tie-break so equal-time messages deliver in send order.
    seq: u64,
    src: NodeId,
    dst: NodeId,
    payload: Vec<u8>,
}

/// A deterministic single-process transport: per-message seeded random
/// delay and loss, which together with the engine's anti-entropy rounds
/// models the paper's reliable-broadcast assumption (§2.1) over an
/// unreliable network.
#[derive(Debug)]
pub struct InMemoryTransport {
    link: LinkConfig,
    rng: StdRng,
    queue: Vec<InFlight>,
    next_seq: u64,
}

impl InMemoryTransport {
    /// Creates a transport with the given link model and RNG seed.
    pub fn new(link: LinkConfig, seed: u64) -> Self {
        assert!(link.min_delay <= link.max_delay, "invalid delay range");
        assert!(link.drop_per_mille <= 1000, "invalid drop probability");
        InMemoryTransport {
            link,
            rng: StdRng::seed_from_u64(seed),
            queue: Vec::new(),
            next_seq: 0,
        }
    }
}

impl Transport for InMemoryTransport {
    fn send(&mut self, now: Tick, src: NodeId, dst: NodeId, payload: Vec<u8>) -> SendOutcome {
        if self.link.drop_per_mille > 0
            && self.rng.gen_range(0..1000u32) < self.link.drop_per_mille as u32
        {
            return SendOutcome::Dropped;
        }
        let delay = self
            .rng
            .gen_range(self.link.min_delay..=self.link.max_delay);
        self.queue.push(InFlight {
            deliver_at: now + delay,
            seq: self.next_seq,
            src,
            dst,
            payload,
        });
        self.next_seq += 1;
        SendOutcome::Queued
    }

    fn poll(&mut self, now: Tick) -> Vec<Delivery> {
        let mut due: Vec<InFlight> = Vec::new();
        self.queue.retain(|m| {
            if m.deliver_at <= now {
                due.push(m.clone());
                false
            } else {
                true
            }
        });
        due.sort_by_key(|m| (m.deliver_at, m.seq));
        due.into_iter()
            .map(|m| Delivery {
                src: m.src,
                dst: m.dst,
                payload: m.payload,
            })
            .collect()
    }

    fn in_flight(&self) -> usize {
        self.queue.len()
    }

    fn cut(&mut self, sever: &mut dyn FnMut(NodeId, NodeId) -> bool) -> usize {
        let before = self.queue.len();
        self.queue.retain(|m| !sever(m.src, m.dst));
        before - self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossless() -> InMemoryTransport {
        InMemoryTransport::new(
            LinkConfig {
                min_delay: 1,
                max_delay: 4,
                drop_per_mille: 0,
            },
            7,
        )
    }

    #[test]
    fn delivers_within_delay_bounds() {
        let mut t = lossless();
        t.send(0, 0, 1, vec![1]);
        t.send(0, 0, 2, vec![2]);
        assert_eq!(t.in_flight(), 2);
        let mut got = 0;
        for now in 1..=4 {
            got += t.poll(now).len();
        }
        assert_eq!(got, 2);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn equal_time_messages_deliver_in_send_order() {
        let mut t = InMemoryTransport::new(
            LinkConfig {
                min_delay: 2,
                max_delay: 2,
                drop_per_mille: 0,
            },
            1,
        );
        for i in 0..10u8 {
            t.send(0, 0, 1, vec![i]);
        }
        let due = t.poll(2);
        let order: Vec<u8> = due.iter().map(|d| d.payload[0]).collect();
        assert_eq!(order, (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn lossy_link_drops_deterministically() {
        let run = |seed| {
            let mut t = InMemoryTransport::new(
                LinkConfig {
                    min_delay: 1,
                    max_delay: 1,
                    drop_per_mille: 500,
                },
                seed,
            );
            (0..100)
                .filter(|_| t.send(0, 0, 1, vec![]) == SendOutcome::Dropped)
                .count()
        };
        assert_eq!(run(42), run(42));
        let dropped = run(42);
        assert!((20..80).contains(&dropped), "drops wildly off: {dropped}");
    }

    #[test]
    fn cut_severs_matching_messages() {
        let mut t = lossless();
        t.send(0, 0, 1, vec![]);
        t.send(0, 1, 2, vec![]);
        t.send(0, 2, 0, vec![]);
        let lost = t.cut(&mut |src, _| src == 0);
        assert_eq!(lost, 1);
        assert_eq!(t.in_flight(), 2);
    }
}
