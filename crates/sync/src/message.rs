//! [`Message`]: what the sync engine puts on the wire.
//!
//! Exactly two message kinds exist, both framed by `eg-encoding` with
//! magic + CRC so a transport can carry them as opaque bytes:
//!
//! * [`Message::Digest`] — per-document frontier digests, the compact
//!   "what I have" probe of batched anti-entropy;
//! * [`Message::Bundles`] — per-document event bundles, the coalesced
//!   payload of an outbox flush or a digest repair.

use crate::replica::DocId;
use eg_dag::RemoteId;
use eg_encoding::varint::DecodeError;
use eg_encoding::{
    decode_bundle_batch, decode_digest, encode_bundle_batch, encode_digest, BUNDLE_BATCH_MAGIC,
    DIGEST_MAGIC,
};
use egwalker::EventBundle;

/// One sync-engine message, as carried (encoded) by a
/// [`crate::Transport`].
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Per-document frontier digests: the sender's whole shard space in
    /// network form.
    Digest(Vec<(DocId, Vec<RemoteId>)>),
    /// Batched per-document event bundles.
    Bundles(Vec<(DocId, EventBundle)>),
}

impl Message {
    /// Serialises the message for a transport.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Message::Digest(docs) => {
                let raw: Vec<(u64, Vec<RemoteId>)> =
                    docs.iter().map(|(d, v)| (d.0, v.clone())).collect();
                encode_digest(&raw)
            }
            Message::Bundles(docs) => {
                let raw: Vec<(u64, EventBundle)> =
                    docs.iter().map(|(d, b)| (d.0, b.clone())).collect();
                encode_bundle_batch(&raw)
            }
        }
    }

    /// Deserialises a message, dispatching on the frame magic.
    pub fn decode(bytes: &[u8]) -> Result<Message, DecodeError> {
        match bytes.get(..4) {
            Some(magic) if magic == DIGEST_MAGIC => Ok(Message::Digest(
                decode_digest(bytes)?
                    .into_iter()
                    .map(|(d, v)| (DocId(d), v))
                    .collect(),
            )),
            Some(magic) if magic == BUNDLE_BATCH_MAGIC => Ok(Message::Bundles(
                decode_bundle_batch(bytes)?
                    .into_iter()
                    .map(|(d, b)| (DocId(d), b))
                    .collect(),
            )),
            _ => Err(DecodeError::BadMagic),
        }
    }

    /// Returns `true` for [`Message::Digest`].
    pub fn is_digest(&self) -> bool {
        matches!(self, Message::Digest(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::Replica;

    #[test]
    fn digest_message_roundtrips() {
        let mut r = Replica::new("alice");
        r.insert_doc(DocId(1), 0, "a");
        r.insert_doc(DocId(2), 0, "b");
        let msg = Message::Digest(r.digest_all());
        let decoded = Message::decode(&msg.encode()).unwrap();
        assert_eq!(decoded, msg);
        assert!(decoded.is_digest());
    }

    #[test]
    fn bundles_message_roundtrips() {
        let mut r = Replica::new("alice");
        let b1 = r.insert_doc(DocId(1), 0, "alpha");
        let b2 = r.insert_doc(DocId(9), 0, "beta");
        let msg = Message::Bundles(vec![(DocId(1), b1), (DocId(9), b2)]);
        let decoded = Message::decode(&msg.encode()).unwrap();
        assert_eq!(decoded, msg);
        assert!(!decoded.is_digest());
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(Message::decode(b"nonsense").is_err());
        assert!(Message::decode(b"").is_err());
    }
}
