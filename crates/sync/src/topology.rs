//! The [`Topology`] seam: who talks to whom, and how information spreads.
//!
//! The event-graph model makes sync composable — any replica can ship any
//! subset of events to any other (paper §2) — so the *shape* of the
//! network is policy, not architecture. A topology decides three things:
//!
//! 1. **Links** — which peers a node keeps an [`crate::Outbox`] to;
//! 2. **Relaying** — which outboxes to mark dirty when a node gains new
//!    events (locally, or forwarded from a peer);
//! 3. **Anti-entropy scheduling** — which directed digest probes to run
//!    in each repair round.
//!
//! Two implementations ship: [`Mesh`] (full-mesh p2p: everyone pushes
//! their own edits to everyone, O(n²) links) and [`Star`] (server relay:
//! leaves talk only to a hub, which forwards, O(n) links). Partitions are
//! an overlay on either: nodes in different groups stop being linked
//! until [`Topology::heal`].
//!
//! To add a topology, implement the trait: `links` defines the outbox
//! graph, `relay_targets` defines the gossip rule (return the peers that
//! should hear about events `node` just gained, given where they came
//! from), and `digest_pairs` defines the repair schedule. The engine
//! handles everything else (batching, digests, delivery, convergence).

use crate::transport::NodeId;
use std::collections::BTreeMap;

/// A network shape: link structure, relay rule, and anti-entropy
/// schedule, with a partition overlay.
pub trait Topology: std::fmt::Debug {
    /// The number of nodes.
    fn len(&self) -> usize;

    /// Returns `true` if the topology has no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The peers `node` maintains outboxes to (its edges, ignoring any
    /// active partition).
    fn links(&self, node: NodeId) -> Vec<NodeId>;

    /// Whether a message can pass directly between `a` and `b` right now
    /// (requires an edge *and* the same partition group).
    fn linked(&self, a: NodeId, b: NodeId) -> bool;

    /// The outboxes to mark dirty when `node` gains new events. `from` is
    /// the peer that delivered them, or `None` for local edits.
    fn relay_targets(&self, node: NodeId, from: Option<NodeId>) -> Vec<NodeId>;

    /// The directed digest probes `(sender, receiver)` for anti-entropy
    /// round `round`. The engine skips pairs that are not currently
    /// linked.
    fn digest_pairs(&self, round: usize) -> Vec<(NodeId, NodeId)>;

    /// Splits the nodes into partition groups; unlisted nodes keep group
    /// 0. Messages only pass within a group.
    fn set_partition(&mut self, groups: &[&[NodeId]]);

    /// Removes all partitions.
    fn heal(&mut self);
}

/// The partition overlay shared by the built-in topologies.
#[derive(Debug, Clone)]
struct Groups(Vec<u32>);

impl Groups {
    fn new(n: usize) -> Self {
        Groups(vec![0; n])
    }

    fn same(&self, a: NodeId, b: NodeId) -> bool {
        self.0[a] == self.0[b]
    }

    fn set(&mut self, groups: &[&[NodeId]]) {
        for g in self.0.iter_mut() {
            *g = 0;
        }
        for (gi, members) in groups.iter().enumerate() {
            for &m in *members {
                self.0[m] = gi as u32;
            }
        }
    }

    fn heal(&mut self) {
        for g in self.0.iter_mut() {
            *g = 0;
        }
    }
}

/// Full-mesh peer-to-peer: every node links to every other.
///
/// Each node pushes its own edits directly to all peers, so nothing is
/// relayed on receive. Anti-entropy probes follow a doubling-stride ring
/// (node `i` probes `i + 2^k`), which spreads repairs in O(log n) rounds.
#[derive(Debug, Clone)]
pub struct Mesh {
    groups: Groups,
}

impl Mesh {
    /// A full mesh over `n` nodes.
    pub fn new(n: usize) -> Self {
        Mesh {
            groups: Groups::new(n),
        }
    }
}

impl Topology for Mesh {
    fn len(&self) -> usize {
        self.groups.0.len()
    }

    fn links(&self, node: NodeId) -> Vec<NodeId> {
        (0..self.len()).filter(|&j| j != node).collect()
    }

    fn linked(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.groups.same(a, b)
    }

    fn relay_targets(&self, node: NodeId, from: Option<NodeId>) -> Vec<NodeId> {
        match from {
            // Local edits go straight to every peer; received events came
            // from a peer who is already pushing to everyone.
            None => self.links(node),
            Some(_) => Vec::new(),
        }
    }

    fn digest_pairs(&self, round: usize) -> Vec<(NodeId, NodeId)> {
        // Doubling stride over a ring *per partition group*: rounds cycle
        // through strides 1, 2, 4, … so any pair exchanges state within
        // O(log n) rounds. Grouping matters: partition groups can be any
        // subset of the indices (not a contiguous ring segment), and a
        // plain index ring would schedule only cross-group probes for
        // some co-grouped pairs, leaving losses between them unrepairable.
        let mut by_group: BTreeMap<u32, Vec<NodeId>> = BTreeMap::new();
        for (node, &g) in self.groups.0.iter().enumerate() {
            by_group.entry(g).or_default().push(node);
        }
        let mut pairs = Vec::new();
        for members in by_group.values() {
            let m = members.len();
            if m < 2 {
                continue;
            }
            let strides = usize::BITS - (m - 1).leading_zeros();
            let stride = 1usize << (round as u32 % strides);
            for k in 0..m {
                pairs.push((members[k], members[(k + stride) % m]));
            }
        }
        pairs
    }

    fn set_partition(&mut self, groups: &[&[NodeId]]) {
        self.groups.set(groups);
    }

    fn heal(&mut self) {
        self.groups.heal();
    }
}

/// Star / server-relay: every leaf links only to a hub, which forwards.
///
/// Local edits at a leaf go to the hub; the hub relays everything it
/// learns to every other spoke. This keeps the link count at O(n) and
/// concentrates fan-out at the server, like a relay deployment.
#[derive(Debug, Clone)]
pub struct Star {
    hub: NodeId,
    groups: Groups,
}

impl Star {
    /// A star over `n` nodes with `hub` at the centre.
    pub fn new(n: usize, hub: NodeId) -> Self {
        assert!(hub < n, "hub out of range");
        Star {
            hub,
            groups: Groups::new(n),
        }
    }

    /// The hub node.
    pub fn hub(&self) -> NodeId {
        self.hub
    }
}

impl Topology for Star {
    fn len(&self) -> usize {
        self.groups.0.len()
    }

    fn links(&self, node: NodeId) -> Vec<NodeId> {
        if node == self.hub {
            (0..self.len()).filter(|&j| j != self.hub).collect()
        } else {
            vec![self.hub]
        }
    }

    fn linked(&self, a: NodeId, b: NodeId) -> bool {
        a != b && (a == self.hub || b == self.hub) && self.groups.same(a, b)
    }

    fn relay_targets(&self, node: NodeId, from: Option<NodeId>) -> Vec<NodeId> {
        if node == self.hub {
            // The hub forwards everything to every other spoke.
            (0..self.len())
                .filter(|&j| j != self.hub && Some(j) != from)
                .collect()
        } else if from.is_none() {
            vec![self.hub]
        } else {
            Vec::new()
        }
    }

    fn digest_pairs(&self, round: usize) -> Vec<(NodeId, NodeId)> {
        // Alternate probe direction so both hub-side and leaf-side losses
        // are found.
        (0..self.len())
            .filter(|&leaf| leaf != self.hub)
            .map(|leaf| {
                if round % 2 == 0 {
                    (leaf, self.hub)
                } else {
                    (self.hub, leaf)
                }
            })
            .collect()
    }

    fn set_partition(&mut self, groups: &[&[NodeId]]) {
        self.groups.set(groups);
    }

    fn heal(&mut self) {
        self.groups.heal();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_links_everyone() {
        let m = Mesh::new(4);
        assert_eq!(m.links(1), vec![0, 2, 3]);
        assert!(m.linked(0, 3));
        assert!(!m.linked(2, 2));
        assert_eq!(m.relay_targets(0, None), vec![1, 2, 3]);
        assert!(m.relay_targets(0, Some(1)).is_empty());
    }

    #[test]
    fn mesh_digest_strides_double() {
        let m = Mesh::new(8);
        let stride = |round: usize| m.digest_pairs(round)[0].1;
        assert_eq!(stride(0), 1);
        assert_eq!(stride(1), 2);
        assert_eq!(stride(2), 4);
        assert_eq!(stride(3), 1); // cycles
    }

    #[test]
    fn mesh_partition_blocks_cross_group() {
        let mut m = Mesh::new(4);
        m.set_partition(&[&[0, 1], &[2, 3]]);
        assert!(m.linked(0, 1));
        assert!(!m.linked(1, 2));
        m.heal();
        assert!(m.linked(1, 2));
    }

    #[test]
    fn star_links_through_hub_only() {
        let s = Star::new(4, 0);
        assert_eq!(s.links(0), vec![1, 2, 3]);
        assert_eq!(s.links(2), vec![0]);
        assert!(s.linked(0, 2));
        assert!(!s.linked(1, 2), "leaves must not talk directly");
    }

    #[test]
    fn star_hub_relays_except_to_source() {
        let s = Star::new(4, 0);
        assert_eq!(s.relay_targets(0, Some(2)), vec![1, 3]);
        assert_eq!(s.relay_targets(0, None), vec![1, 2, 3]);
        assert_eq!(s.relay_targets(2, None), vec![0]);
        assert!(s.relay_targets(2, Some(0)).is_empty());
    }

    #[test]
    fn star_digest_pairs_alternate_direction() {
        let s = Star::new(3, 0);
        assert_eq!(s.digest_pairs(0), vec![(1, 0), (2, 0)]);
        assert_eq!(s.digest_pairs(1), vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn star_partition_isolates_hubless_leaves() {
        let mut s = Star::new(5, 0);
        s.set_partition(&[&[0, 1, 2], &[3, 4]]);
        assert!(s.linked(0, 1));
        assert!(!s.linked(0, 3));
        // Leaves 3 and 4 share a group but have no hub: not linked.
        assert!(!s.linked(3, 4));
    }
}
