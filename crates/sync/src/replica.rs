//! [`Replica`]: one collaborating node — a keyed shard space of documents,
//! each with its own oplog, live branch, and causal delivery buffer.
//!
//! The paper's replication model is per-document: an event graph, a
//! materialised branch, and causal delivery of event bundles (§2.1–2.2).
//! A real node serves *many* documents at once, so a [`Replica`] hosts a
//! keyed map of [`DocId`] → document state with per-document frontiers;
//! digests and bundles are always scoped to one shard. The single-document
//! methods ([`Replica::insert`], [`Replica::receive`], …) operate on
//! [`DocId::DEFAULT`] so simple call sites stay simple.

use eg_dag::RemoteId;
use eg_rle::HasLength;
use egwalker::{Branch, BundleError, EventBundle, Frontier, OpLog, Tracker};
use std::collections::BTreeMap;

/// Identifies one document in a replica's shard space.
///
/// Document ids are global, application-assigned keys (a real deployment
/// would hash a path or UUID into one); every digest and bundle on the
/// wire is scoped to a `DocId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DocId(pub u64);

impl DocId {
    /// The document the single-document convenience APIs operate on.
    pub const DEFAULT: DocId = DocId(0);
}

impl std::fmt::Display for DocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "doc{}", self.0)
    }
}

/// Counters describing a replica's replication behaviour (summed across
/// all documents), for tests and the examples' narration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Bundles applied directly on arrival.
    pub applied_direct: usize,
    /// Bundles that had to wait in the causal buffer first.
    pub buffered: usize,
    /// Bundles that turned out to be pure duplicates.
    pub duplicates: usize,
    /// Events ingested from remote bundles.
    pub remote_events: usize,
}

/// What [`Replica::receive_doc`] did with a bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiveOutcome {
    /// The bundle (and possibly previously buffered ones) applied; this many
    /// new events were ingested in total.
    Applied(usize),
    /// The bundle is causally premature and was buffered.
    Buffered,
    /// Every event in the bundle was already known.
    Duplicate,
    /// The bundle was structurally invalid and dropped.
    Rejected,
}

/// One document's replicated state: the event graph, the materialised
/// branch, and the causal buffer for out-of-order bundles.
#[derive(Debug)]
struct DocState {
    /// The event graph and operations (durable state).
    oplog: OpLog,
    /// The live document (text + version).
    branch: Branch,
    /// Causal buffer: bundles whose parents have not all arrived yet.
    pending: Vec<EventBundle>,
    /// Reused walker scratch state: every merge for this document drives
    /// the same tracker, so its slabs / ID index / scratch buffers are
    /// allocated once and recycled (the per-merge allocation storm the
    /// slab arena exists to kill).
    tracker: Tracker,
}

impl DocState {
    fn new(agent_name: &str) -> Self {
        let mut oplog = OpLog::new();
        oplog.get_or_create_agent(agent_name);
        DocState {
            oplog,
            branch: Branch::new(),
            pending: Vec::new(),
            tracker: Tracker::new(),
        }
    }

    fn merge(&mut self) {
        self.branch.merge_reusing(&self.oplog, &mut self.tracker);
    }
}

impl Clone for DocState {
    fn clone(&self) -> Self {
        // The tracker is transient scratch state; a clone starts fresh.
        DocState {
            oplog: self.oplog.clone(),
            branch: self.branch.clone(),
            pending: self.pending.clone(),
            tracker: Tracker::new(),
        }
    }
}

/// One collaborating node (paper §2.1), hosting a shard space of
/// documents. Each document keeps the full editing history, the
/// materialised text, and a buffer of causally premature bundles.
///
/// Local edits apply to the branch immediately ("without waiting for a
/// network round-trip"); remote bundles are merged through the walker,
/// which transforms their indexes against any concurrent local edits.
#[derive(Debug, Clone)]
pub struct Replica {
    name: String,
    docs: BTreeMap<DocId, DocState>,
    stats: ReplicaStats,
}

impl Replica {
    /// Creates an empty replica named `name` (the name is its agent ID on
    /// the wire, so it must be unique among collaborators).
    pub fn new(name: &str) -> Self {
        Replica {
            name: name.to_string(),
            docs: BTreeMap::new(),
            stats: ReplicaStats::default(),
        }
    }

    /// The replica's name / agent ID.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replication counters, summed across documents.
    pub fn stats(&self) -> ReplicaStats {
        self.stats
    }

    /// The documents this replica holds at least one event for, in
    /// ascending id order.
    pub fn doc_ids(&self) -> Vec<DocId> {
        self.docs
            .iter()
            .filter(|(_, d)| !d.oplog.is_empty())
            .map(|(&id, _)| id)
            .collect()
    }

    fn doc(&self, doc: DocId) -> Option<&DocState> {
        self.docs.get(&doc)
    }

    // --- default-document conveniences ----------------------------------

    /// The current text of the default document.
    pub fn text(&self) -> String {
        self.text_doc(DocId::DEFAULT)
    }

    /// The number of characters in the default document.
    pub fn len_chars(&self) -> usize {
        self.len_chars_doc(DocId::DEFAULT)
    }

    /// The default document's digest; see [`Replica::digest_doc`].
    pub fn digest(&self) -> Vec<RemoteId> {
        self.digest_doc(DocId::DEFAULT)
    }

    /// Everything the default document knows that a peer with `digest` is
    /// missing.
    pub fn bundle_since(&self, digest: &[RemoteId]) -> EventBundle {
        self.bundle_since_doc(DocId::DEFAULT, digest)
    }

    /// Inserts into the default document; see [`Replica::insert_doc`].
    pub fn insert(&mut self, pos: usize, text: &str) -> EventBundle {
        self.insert_doc(DocId::DEFAULT, pos, text)
    }

    /// Deletes from the default document; see [`Replica::delete_doc`].
    pub fn delete(&mut self, pos: usize, len: usize) -> EventBundle {
        self.delete_doc(DocId::DEFAULT, pos, len)
    }

    /// Ingests a bundle for the default document; see
    /// [`Replica::receive_doc`].
    pub fn receive(&mut self, bundle: &EventBundle) -> ReceiveOutcome {
        self.receive_doc(DocId::DEFAULT, bundle)
    }

    // --- per-document API ------------------------------------------------

    /// The current text of `doc` (empty if the replica has never seen it).
    pub fn text_doc(&self, doc: DocId) -> String {
        self.doc(doc)
            .map(|d| d.branch.content.to_string())
            .unwrap_or_default()
    }

    /// The number of characters in `doc`.
    pub fn len_chars_doc(&self, doc: DocId) -> usize {
        self.doc(doc).map_or(0, |d| d.branch.len_chars())
    }

    /// The replica's anti-entropy digest of `doc`: a per-agent version
    /// vector rather than the causal frontier. Version vectors stay
    /// meaningful to a peer whose history has diverged — frontier tips the
    /// peer has never seen say nothing about their ancestry, which made
    /// post-partition resume degenerate to near-full re-sends. Empty if
    /// the document is unknown. Same wire shape as a frontier digest, so
    /// the EGWD codec and older peers are unaffected.
    pub fn digest_doc(&self, doc: DocId) -> Vec<RemoteId> {
        self.doc(doc)
            .map(|d| d.oplog.version_vector())
            .unwrap_or_default()
    }

    /// Digests for every non-empty document, in ascending id order: the
    /// replica's whole shard space in network form.
    pub fn digest_all(&self) -> Vec<(DocId, Vec<RemoteId>)> {
        self.docs
            .iter()
            .filter(|(_, d)| !d.oplog.is_empty())
            .map(|(&id, d)| (id, d.oplog.version_vector()))
            .collect()
    }

    /// Everything this replica knows about `doc` that a peer with `digest`
    /// is missing.
    pub fn bundle_since_doc(&self, doc: DocId, digest: &[RemoteId]) -> EventBundle {
        self.doc(doc)
            .map(|d| d.oplog.bundle_since(digest))
            .unwrap_or_default()
    }

    /// [`Replica::bundle_since_doc`] against a *local* frontier, for
    /// send-side delta tracking (outboxes). The frontier must have been
    /// produced by this replica's own oplog for `doc`.
    pub fn bundle_since_frontier(&self, doc: DocId, have: &Frontier) -> EventBundle {
        self.doc(doc)
            .map(|d| d.oplog.bundle_since_local(have))
            .unwrap_or_default()
    }

    /// The local frontier of `doc` (root if unknown).
    pub fn frontier_doc(&self, doc: DocId) -> Frontier {
        self.doc(doc)
            .map(|d| d.oplog.version().clone())
            .unwrap_or_else(Frontier::root)
    }

    /// Reduces a peer-reported remote frontier to this replica's local
    /// frontier form. Ids ahead of our knowledge are clamped to the local
    /// per-agent maximum (sound: an agent's events form a causal chain);
    /// agents we have never seen carry no information and are dropped.
    pub fn map_remote_frontier(&self, doc: DocId, version: &[RemoteId]) -> Frontier {
        match self.doc(doc) {
            Some(d) => {
                let known: Vec<_> = version
                    .iter()
                    .filter_map(|id| d.oplog.clamp_remote_to_lv(id))
                    .collect();
                d.oplog.graph.find_dominators(&known)
            }
            None => Frontier::root(),
        }
    }

    /// Returns `true` if this replica has the event `id` in `doc`.
    pub fn knows_remote(&self, doc: DocId, id: &RemoteId) -> bool {
        self.doc(doc)
            .is_some_and(|d| d.oplog.remote_to_lv(id).is_some())
    }

    /// Inserts `text` at `pos` in `doc`, returning the bundle to replicate.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is beyond the end of the document or `text` is
    /// empty.
    pub fn insert_doc(&mut self, doc: DocId, pos: usize, text: &str) -> EventBundle {
        let Self { name, docs, .. } = self;
        let d = docs.entry(doc).or_insert_with(|| DocState::new(name));
        assert!(pos <= d.branch.len_chars(), "insert out of bounds");
        let before = d.branch.version.clone();
        let agent = d.oplog.get_or_create_agent(name);
        d.oplog.add_insert_at(agent, &before, pos, text);
        d.merge();
        d.oplog.bundle_since_local(&before)
    }

    /// Deletes `len` characters at `pos` in `doc`, returning the bundle to
    /// replicate.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or empty.
    pub fn delete_doc(&mut self, doc: DocId, pos: usize, len: usize) -> EventBundle {
        let Self { name, docs, .. } = self;
        let d = docs.entry(doc).or_insert_with(|| DocState::new(name));
        assert!(pos + len <= d.branch.len_chars(), "delete out of bounds");
        let before = d.branch.version.clone();
        let agent = d.oplog.get_or_create_agent(name);
        d.oplog.add_delete_at(agent, &before, pos, len);
        d.merge();
        d.oplog.bundle_since_local(&before)
    }

    /// Inserts `text` at `pos` in `doc` **authored by `agent`**, without
    /// extracting a per-edit bundle — the server-host hot path.
    ///
    /// [`Replica::insert_doc`] authors every edit as the replica itself
    /// and pays for a replication bundle per keystroke; a multi-session
    /// host authors edits as the originating session and replicates later
    /// via batched anti-entropy, so this path does neither. It also skips
    /// the pre-edit frontier clone (the edit parents directly at the live
    /// branch version), keeping the steady state allocation-free apart
    /// from the log append itself.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is beyond the end of the document or `text` is
    /// empty.
    pub fn edit_insert_as(&mut self, doc: DocId, agent: &str, pos: usize, text: &str) {
        let Self { name, docs, .. } = self;
        let d = docs.entry(doc).or_insert_with(|| DocState::new(name));
        assert!(pos <= d.branch.len_chars(), "insert out of bounds");
        let agent = d.oplog.get_or_create_agent(agent);
        d.oplog.add_insert_at(agent, &d.branch.version, pos, text);
        d.merge();
    }

    /// Deletes `len` characters at `pos` in `doc` authored by `agent`;
    /// the delete-side twin of [`Replica::edit_insert_as`].
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or empty.
    pub fn edit_delete_as(&mut self, doc: DocId, agent: &str, pos: usize, len: usize) {
        let Self { name, docs, .. } = self;
        let d = docs.entry(doc).or_insert_with(|| DocState::new(name));
        assert!(pos + len <= d.branch.len_chars(), "delete out of bounds");
        let agent = d.oplog.get_or_create_agent(agent);
        d.oplog.add_delete_at(agent, &d.branch.version, pos, len);
        d.merge();
    }

    /// Ingests a remote bundle for `doc` with causal buffering.
    ///
    /// Premature bundles are stashed; each successful application retries
    /// the stash to a fixpoint, so delivery order does not matter as long
    /// as everything arrives eventually.
    pub fn receive_doc(&mut self, doc: DocId, bundle: &EventBundle) -> ReceiveOutcome {
        let Self {
            name, docs, stats, ..
        } = self;
        let d = docs.entry(doc).or_insert_with(|| DocState::new(name));
        match d.oplog.apply_bundle(bundle) {
            Ok(new) if new.is_empty() => {
                stats.duplicates += 1;
                ReceiveOutcome::Duplicate
            }
            Ok(new) => {
                let mut total = new.len();
                total += Self::drain_pending(d);
                d.merge();
                stats.applied_direct += 1;
                stats.remote_events += total;
                ReceiveOutcome::Applied(total)
            }
            Err(BundleError::MissingParents(_)) => {
                stats.buffered += 1;
                // Keep at most one copy of identical bundles.
                if !d.pending.contains(bundle) {
                    d.pending.push(bundle.clone());
                }
                ReceiveOutcome::Buffered
            }
            Err(BundleError::Malformed(_)) => ReceiveOutcome::Rejected,
        }
    }

    /// Retries buffered bundles until none can make progress. Returns the
    /// number of events ingested.
    fn drain_pending(d: &mut DocState) -> usize {
        let mut total = 0;
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < d.pending.len() {
                match d.oplog.apply_bundle(&d.pending[i].clone()) {
                    Ok(new) => {
                        total += new.len();
                        d.pending.swap_remove(i);
                        progressed = true;
                    }
                    Err(BundleError::MissingParents(_)) => i += 1,
                    Err(BundleError::Malformed(_)) => {
                        d.pending.swap_remove(i);
                    }
                }
            }
            if !progressed {
                return total;
            }
        }
    }

    /// The number of bundles waiting in causal buffers, across all
    /// documents.
    pub fn pending_len(&self) -> usize {
        self.docs.values().map(|d| d.pending.len()).sum()
    }

    /// The number of bundles waiting in `doc`'s causal buffer.
    pub fn pending_len_doc(&self, doc: DocId) -> usize {
        self.doc(doc).map_or(0, |d| d.pending.len())
    }

    /// Borrows `doc`'s oplog and branch, e.g. for a persistence layer
    /// appending the log tail and writing checkpoints.
    pub fn doc_parts(&self, doc: DocId) -> Option<(&OpLog, &Branch)> {
        self.doc(doc).map(|d| (&d.oplog, &d.branch))
    }

    /// Installs a document rebuilt by a persistence layer (a segment-store
    /// reopen): the full oplog plus the branch materialised at its tip.
    /// Replaces any state this replica held for `doc`; the causal buffer
    /// starts empty and the walker tracker starts fresh.
    pub fn install_doc(&mut self, doc: DocId, mut oplog: OpLog, branch: Branch) {
        debug_assert_eq!(&branch.version, oplog.version(), "branch must be at tip");
        oplog.get_or_create_agent(&self.name);
        self.docs.insert(
            doc,
            DocState {
                oplog,
                branch,
                pending: Vec::new(),
                tracker: Tracker::new(),
            },
        );
    }

    /// Canonical comparable state: per non-empty document, the sorted
    /// digest and the text. Two replicas (or any unions of per-shard
    /// replicas, e.g. a worker pool's) hold the same documents iff their
    /// snapshots are equal.
    pub fn snapshot(&self) -> Vec<(DocId, Vec<RemoteId>, String)> {
        self.docs
            .iter()
            .filter(|(_, d)| !d.oplog.is_empty())
            .map(|(&id, d)| {
                let mut digest = d.oplog.remote_version();
                digest.sort();
                (id, digest, d.branch.content.to_string())
            })
            .collect()
    }

    /// Two-way state comparison: `true` if both replicas have the same
    /// events and the same text in every document either of them holds.
    pub fn converged_with(&self, other: &Replica) -> bool {
        self.snapshot() == other.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_edits_apply_immediately() {
        let mut r = Replica::new("alice");
        r.insert(0, "hello");
        r.insert(5, " world");
        r.delete(0, 1);
        assert_eq!(r.text(), "ello world");
    }

    #[test]
    fn direct_exchange_converges() {
        let mut a = Replica::new("alice");
        let mut b = Replica::new("bob");
        let ba = a.insert(0, "from alice ");
        let bb = b.insert(0, "from bob ");
        assert!(matches!(b.receive(&ba), ReceiveOutcome::Applied(11)));
        assert!(matches!(a.receive(&bb), ReceiveOutcome::Applied(9)));
        assert!(a.converged_with(&b));
    }

    #[test]
    fn out_of_order_delivery_buffers_then_applies() {
        let mut a = Replica::new("alice");
        let mut b = Replica::new("bob");
        let first = a.insert(0, "one ");
        let second = a.insert(4, "two");
        // Deliver in the wrong order.
        assert_eq!(b.receive(&second), ReceiveOutcome::Buffered);
        assert_eq!(b.pending_len(), 1);
        assert!(matches!(b.receive(&first), ReceiveOutcome::Applied(7)));
        assert_eq!(b.pending_len(), 0);
        assert!(a.converged_with(&b));
        assert_eq!(b.stats().buffered, 1);
    }

    #[test]
    fn duplicates_are_detected() {
        let mut a = Replica::new("alice");
        let mut b = Replica::new("bob");
        let bundle = a.insert(0, "x");
        assert!(matches!(b.receive(&bundle), ReceiveOutcome::Applied(1)));
        assert_eq!(b.receive(&bundle), ReceiveOutcome::Duplicate);
    }

    #[test]
    fn concurrent_positions_transform() {
        // The Figure 1 scenario, end to end through replicas.
        let mut u1 = Replica::new("user1");
        let mut u2 = Replica::new("user2");
        let seed = u1.insert(0, "Helo");
        u2.receive(&seed);
        let b1 = u1.insert(3, "l"); // "Hello"
        let b2 = u2.insert(4, "!"); // "Helo!"
        u2.receive(&b1);
        u1.receive(&b2);
        assert_eq!(u1.text(), "Hello!");
        assert_eq!(u2.text(), "Hello!");
    }

    #[test]
    fn anti_entropy_bundle_since() {
        let mut a = Replica::new("alice");
        let mut b = Replica::new("bob");
        a.insert(0, "shared");
        let missing = a.bundle_since(&b.digest());
        b.receive(&missing);
        // Now in sync: the delta is empty.
        assert!(a.bundle_since(&b.digest()).is_empty());
        assert!(b.bundle_since(&a.digest()).is_empty());
    }

    #[test]
    fn documents_are_isolated_shards() {
        let mut r = Replica::new("alice");
        r.insert_doc(DocId(1), 0, "first doc");
        r.insert_doc(DocId(2), 0, "second doc");
        assert_eq!(r.text_doc(DocId(1)), "first doc");
        assert_eq!(r.text_doc(DocId(2)), "second doc");
        assert_eq!(r.text_doc(DocId(3)), "");
        assert_eq!(r.doc_ids(), vec![DocId(1), DocId(2)]);
        // Digests are scoped per shard.
        assert_eq!(r.digest_doc(DocId(1)).len(), 1);
        assert!(r.digest_doc(DocId(3)).is_empty());
        assert_ne!(r.digest_doc(DocId(1)), r.digest_doc(DocId(2)));
    }

    #[test]
    fn per_doc_exchange_converges_independently() {
        let mut a = Replica::new("alice");
        let mut b = Replica::new("bob");
        let d1 = DocId(10);
        let d2 = DocId(20);
        let b1 = a.insert_doc(d1, 0, "alpha");
        let b2 = b.insert_doc(d2, 0, "beta");
        // Cross-deliver: each side learns the other's document.
        assert!(matches!(b.receive_doc(d1, &b1), ReceiveOutcome::Applied(5)));
        assert!(matches!(a.receive_doc(d2, &b2), ReceiveOutcome::Applied(4)));
        assert!(a.converged_with(&b));
        assert_eq!(a.text_doc(d2), "beta");
        assert_eq!(b.text_doc(d1), "alpha");
    }

    #[test]
    fn converged_compares_whole_shard_space() {
        let mut a = Replica::new("alice");
        let mut b = Replica::new("bob");
        let bundle = a.insert_doc(DocId(5), 0, "only in a");
        assert!(!a.converged_with(&b));
        b.receive_doc(DocId(5), &bundle);
        assert!(a.converged_with(&b));
        // A doc id mismatch is divergence even with identical content.
        let c5 = a.insert_doc(DocId(6), 0, "z");
        b.receive_doc(DocId(7), &c5);
        assert!(!a.converged_with(&b));
    }

    #[test]
    fn agent_scoped_edits_author_as_their_session() {
        let mut r = Replica::new("server");
        r.edit_insert_as(DocId(1), "s0", 0, "hello");
        r.edit_insert_as(DocId(1), "s1", 5, " world");
        r.edit_delete_as(DocId(1), "s0", 0, 1);
        assert_eq!(r.text_doc(DocId(1)), "ello world");
        // The digest names the authoring sessions, not the host.
        let digest = r.digest_doc(DocId(1));
        assert!(digest.iter().all(|id| id.agent.starts_with('s')));
        // And the edits replicate like any other events.
        let mut peer = Replica::new("peer");
        let bundle = r.bundle_since_doc(DocId(1), &peer.digest_doc(DocId(1)));
        assert!(matches!(
            peer.receive_doc(DocId(1), &bundle),
            ReceiveOutcome::Applied(12)
        ));
        assert!(peer.converged_with(&r));
    }

    #[test]
    fn digest_all_lists_every_shard() {
        let mut r = Replica::new("alice");
        r.insert_doc(DocId(2), 0, "two");
        r.insert_doc(DocId(9), 0, "nine");
        let all = r.digest_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, DocId(2));
        assert_eq!(all[1].0, DocId(9));
        assert!(all.iter().all(|(_, v)| !v.is_empty()));
    }
}
