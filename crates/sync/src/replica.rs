//! [`Replica`]: one collaborating device — an oplog, a live document, and
//! the causal delivery buffer.

use eg_dag::RemoteId;
use eg_rle::{DTRange, HasLength};
use egwalker::{Branch, BundleError, EventBundle, Frontier, OpLog};

/// Counters describing a replica's replication behaviour, for tests and
/// the examples' narration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Bundles applied directly on arrival.
    pub applied_direct: usize,
    /// Bundles that had to wait in the causal buffer first.
    pub buffered: usize,
    /// Bundles that turned out to be pure duplicates.
    pub duplicates: usize,
    /// Events ingested from remote bundles.
    pub remote_events: usize,
}

/// What [`Replica::receive`] did with a bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiveOutcome {
    /// The bundle (and possibly previously buffered ones) applied; this many
    /// new events were ingested in total.
    Applied(usize),
    /// The bundle is causally premature and was buffered.
    Buffered,
    /// Every event in the bundle was already known.
    Duplicate,
    /// The bundle was structurally invalid and dropped.
    Rejected,
}

/// One collaborating replica (paper §2.1): the full editing history, the
/// materialised document, and a buffer of causally premature bundles.
///
/// Local edits apply to the rope immediately ("without waiting for a
/// network round-trip"); remote bundles are merged through the walker,
/// which transforms their indexes against any concurrent local edits.
#[derive(Debug, Clone)]
pub struct Replica {
    name: String,
    /// The event graph and operations (durable state).
    pub oplog: OpLog,
    /// The live document (text + version).
    pub doc: Branch,
    /// Causal buffer: bundles whose parents have not all arrived yet.
    pending: Vec<EventBundle>,
    stats: ReplicaStats,
}

impl Replica {
    /// Creates an empty replica named `name` (the name is its agent ID on
    /// the wire, so it must be unique among collaborators).
    pub fn new(name: &str) -> Self {
        let mut oplog = OpLog::new();
        oplog.get_or_create_agent(name);
        Replica {
            name: name.to_string(),
            oplog,
            doc: Branch::new(),
            pending: Vec::new(),
            stats: ReplicaStats::default(),
        }
    }

    /// The replica's name / agent ID.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current document text.
    pub fn text(&self) -> String {
        self.doc.content.to_string()
    }

    /// The number of characters in the document.
    pub fn len_chars(&self) -> usize {
        self.doc.len_chars()
    }

    /// Replication counters.
    pub fn stats(&self) -> ReplicaStats {
        self.stats
    }

    /// The number of bundles waiting in the causal buffer.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The replica's current version in network form (its digest for
    /// anti-entropy).
    pub fn digest(&self) -> Vec<RemoteId> {
        self.oplog.remote_version()
    }

    /// Everything this replica knows that a peer with `digest` is missing.
    pub fn bundle_since(&self, digest: &[RemoteId]) -> EventBundle {
        self.oplog.bundle_since(digest)
    }

    /// Inserts `text` at `pos` in the local document, returning the bundle
    /// to broadcast.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is beyond the end of the document or `text` is
    /// empty.
    pub fn insert(&mut self, pos: usize, text: &str) -> EventBundle {
        assert!(pos <= self.doc.len_chars(), "insert out of bounds");
        let before = self.doc.version.clone();
        let agent = self.oplog.get_or_create_agent(&self.name);
        self.oplog.add_insert_at(agent, &before, pos, text);
        self.doc.merge(&self.oplog);
        self.local_bundle(&before)
    }

    /// Deletes `len` characters at `pos`, returning the bundle to
    /// broadcast.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or empty.
    pub fn delete(&mut self, pos: usize, len: usize) -> EventBundle {
        assert!(pos + len <= self.doc.len_chars(), "delete out of bounds");
        let before = self.doc.version.clone();
        let agent = self.oplog.get_or_create_agent(&self.name);
        self.oplog.add_delete_at(agent, &before, pos, len);
        self.doc.merge(&self.oplog);
        self.local_bundle(&before)
    }

    /// The events between `before` and the current version, as a bundle.
    fn local_bundle(&self, before: &Frontier) -> EventBundle {
        self.oplog.bundle_since_local(before)
    }

    /// Ingests a remote bundle with causal buffering.
    ///
    /// Premature bundles are stashed; each successful application retries
    /// the stash to a fixpoint, so delivery order does not matter as long
    /// as everything arrives eventually.
    pub fn receive(&mut self, bundle: &EventBundle) -> ReceiveOutcome {
        match self.try_apply(bundle) {
            Ok(new) if new.is_empty() => {
                self.stats.duplicates += 1;
                ReceiveOutcome::Duplicate
            }
            Ok(new) => {
                self.stats.applied_direct += 1;
                let mut total = new.len();
                total += self.drain_pending();
                self.stats.remote_events += total;
                self.doc.merge(&self.oplog);
                ReceiveOutcome::Applied(total)
            }
            Err(BundleError::MissingParents(_)) => {
                self.stats.buffered += 1;
                // Keep at most one copy of identical bundles.
                if !self.pending.contains(bundle) {
                    self.pending.push(bundle.clone());
                }
                ReceiveOutcome::Buffered
            }
            Err(BundleError::Malformed(_)) => ReceiveOutcome::Rejected,
        }
    }

    fn try_apply(&mut self, bundle: &EventBundle) -> Result<DTRange, BundleError> {
        self.oplog.apply_bundle(bundle)
    }

    /// Retries buffered bundles until none can make progress. Returns the
    /// number of events ingested.
    fn drain_pending(&mut self) -> usize {
        let mut total = 0;
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < self.pending.len() {
                match self.oplog.apply_bundle(&self.pending[i].clone()) {
                    Ok(new) => {
                        total += new.len();
                        self.pending.swap_remove(i);
                        progressed = true;
                    }
                    Err(BundleError::MissingParents(_)) => i += 1,
                    Err(BundleError::Malformed(_)) => {
                        self.pending.swap_remove(i);
                    }
                }
            }
            if !progressed {
                return total;
            }
        }
    }

    /// Two-way state comparison: `true` if both replicas have the same
    /// events and the same text.
    pub fn converged_with(&self, other: &Replica) -> bool {
        let mut a = self.digest();
        let mut b = other.digest();
        a.sort();
        b.sort();
        a == b && self.text() == other.text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_edits_apply_immediately() {
        let mut r = Replica::new("alice");
        r.insert(0, "hello");
        r.insert(5, " world");
        r.delete(0, 1);
        assert_eq!(r.text(), "ello world");
    }

    #[test]
    fn direct_exchange_converges() {
        let mut a = Replica::new("alice");
        let mut b = Replica::new("bob");
        let ba = a.insert(0, "from alice ");
        let bb = b.insert(0, "from bob ");
        assert!(matches!(b.receive(&ba), ReceiveOutcome::Applied(11)));
        assert!(matches!(a.receive(&bb), ReceiveOutcome::Applied(9)));
        assert!(a.converged_with(&b));
    }

    #[test]
    fn out_of_order_delivery_buffers_then_applies() {
        let mut a = Replica::new("alice");
        let mut b = Replica::new("bob");
        let first = a.insert(0, "one ");
        let second = a.insert(4, "two");
        // Deliver in the wrong order.
        assert_eq!(b.receive(&second), ReceiveOutcome::Buffered);
        assert_eq!(b.pending_len(), 1);
        assert!(matches!(b.receive(&first), ReceiveOutcome::Applied(7)));
        assert_eq!(b.pending_len(), 0);
        assert!(a.converged_with(&b));
        assert_eq!(b.stats().buffered, 1);
    }

    #[test]
    fn duplicates_are_detected() {
        let mut a = Replica::new("alice");
        let mut b = Replica::new("bob");
        let bundle = a.insert(0, "x");
        assert!(matches!(b.receive(&bundle), ReceiveOutcome::Applied(1)));
        assert_eq!(b.receive(&bundle), ReceiveOutcome::Duplicate);
    }

    #[test]
    fn concurrent_positions_transform() {
        // The Figure 1 scenario, end to end through replicas.
        let mut u1 = Replica::new("user1");
        let mut u2 = Replica::new("user2");
        let seed = u1.insert(0, "Helo");
        u2.receive(&seed);
        let b1 = u1.insert(3, "l"); // "Hello"
        let b2 = u2.insert(4, "!"); // "Helo!"
        u2.receive(&b1);
        u1.receive(&b2);
        assert_eq!(u1.text(), "Hello!");
        assert_eq!(u2.text(), "Hello!");
    }

    #[test]
    fn anti_entropy_bundle_since() {
        let mut a = Replica::new("alice");
        let mut b = Replica::new("bob");
        a.insert(0, "shared");
        let missing = a.bundle_since(&b.digest());
        b.receive(&missing);
        // Now in sync: the delta is empty.
        assert!(a.bundle_since(&b.digest()).is_empty());
        assert!(b.bundle_since(&a.digest()).is_empty());
    }
}
