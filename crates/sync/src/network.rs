//! [`NetworkSim`]: a deterministic discrete-event network connecting
//! replicas.
//!
//! Broadcast bundles travel as encoded bytes (exercising the wire codec)
//! through per-link queues with seeded random delay and loss. Lost
//! messages are repaired by anti-entropy: digest exchange followed by a
//! delta bundle, which is the "detects and retransmits lost messages" half
//! of the paper's reliable-broadcast assumption (§2.1).

use crate::replica::Replica;
use eg_encoding::{decode_bundle, encode_bundle};
use egwalker::EventBundle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Behaviour of every link in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// Minimum delivery delay, in ticks.
    pub min_delay: u64,
    /// Maximum delivery delay, in ticks (inclusive).
    pub max_delay: u64,
    /// Probability of losing a message, in parts per thousand.
    pub drop_per_mille: u16,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            min_delay: 1,
            max_delay: 8,
            drop_per_mille: 0,
        }
    }
}

/// Counters for the whole simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Broadcast messages enqueued.
    pub sent: usize,
    /// Messages delivered to a replica.
    pub delivered: usize,
    /// Messages dropped by the lossy link.
    pub dropped: usize,
    /// Anti-entropy exchanges performed.
    pub syncs: usize,
    /// Total bytes moved (broadcast payloads only).
    pub bytes: usize,
}

#[derive(Debug, Clone)]
struct InFlight {
    deliver_at: u64,
    /// Tie-break so equal-time messages deliver in send order.
    seq: u64,
    src: usize,
    dst: usize,
    payload: Vec<u8>,
}

/// A deterministic in-memory network of [`Replica`]s.
///
/// Time advances in integer ticks via [`NetworkSim::tick`]. Local edits
/// broadcast a bundle to every peer reachable under the current partition;
/// each message independently samples a delay and a drop from the seeded
/// RNG. [`NetworkSim::run_until_quiescent`] then drains the network,
/// running anti-entropy rounds to repair drops and partitions.
#[derive(Debug)]
pub struct NetworkSim {
    replicas: Vec<Replica>,
    in_flight: Vec<InFlight>,
    now: u64,
    next_seq: u64,
    rng: StdRng,
    link: LinkConfig,
    /// Partition group of each replica; messages cross groups only when
    /// the network is healed.
    group: Vec<u32>,
    stats: NetStats,
}

impl NetworkSim {
    /// Creates a fully connected network of empty replicas.
    pub fn new(names: &[&str], seed: u64) -> Self {
        Self::with_link(names, seed, LinkConfig::default())
    }

    /// [`NetworkSim::new`] with an explicit link model.
    pub fn with_link(names: &[&str], seed: u64, link: LinkConfig) -> Self {
        assert!(link.min_delay <= link.max_delay, "invalid delay range");
        assert!(link.drop_per_mille <= 1000, "invalid drop probability");
        NetworkSim {
            replicas: names.iter().map(|n| Replica::new(n)).collect(),
            in_flight: Vec::new(),
            now: 0,
            next_seq: 0,
            rng: StdRng::seed_from_u64(seed),
            link,
            group: vec![0; names.len()],
            stats: NetStats::default(),
        }
    }

    /// The number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Returns `true` if the network has no replicas.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Read access to a replica.
    pub fn replica(&self, i: usize) -> &Replica {
        &self.replicas[i]
    }

    /// The current simulation time, in ticks.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Simulation counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Inserts text at replica `i` and broadcasts the resulting bundle.
    pub fn edit_insert(&mut self, i: usize, pos: usize, text: &str) {
        let bundle = self.replicas[i].insert(pos, text);
        self.broadcast(i, &bundle);
    }

    /// Deletes characters at replica `i` and broadcasts the resulting
    /// bundle.
    pub fn edit_delete(&mut self, i: usize, pos: usize, len: usize) {
        let bundle = self.replicas[i].delete(pos, len);
        self.broadcast(i, &bundle);
    }

    /// Splits the network: replicas in different groups stop exchanging
    /// messages (in-flight messages crossing the new boundary are lost).
    ///
    /// `groups` assigns each listed replica to one group; unlisted replicas
    /// keep group 0.
    pub fn partition(&mut self, groups: &[&[usize]]) {
        for g in self.group.iter_mut() {
            *g = 0;
        }
        for (gi, members) in groups.iter().enumerate() {
            for &m in *members {
                self.group[m] = gi as u32;
            }
        }
        // Messages already in flight across the new boundary are lost — a
        // partition severs links mid-delivery. Anti-entropy repairs this
        // after healing.
        let group = &self.group;
        let before = self.in_flight.len();
        self.in_flight.retain(|m| group[m.src] == group[m.dst]);
        self.stats.dropped += before - self.in_flight.len();
    }

    /// Heals all partitions. Anti-entropy (in
    /// [`NetworkSim::run_until_quiescent`]) then reconciles the groups.
    pub fn heal(&mut self) {
        for g in self.group.iter_mut() {
            *g = 0;
        }
    }

    /// Sends `bundle` from replica `src` to every peer in the same
    /// partition group, with per-message delay and loss.
    pub fn broadcast(&mut self, src: usize, bundle: &EventBundle) {
        if bundle.is_empty() {
            return;
        }
        let payload = encode_bundle(bundle);
        for dst in 0..self.replicas.len() {
            if dst == src || self.group[dst] != self.group[src] {
                continue;
            }
            self.stats.sent += 1;
            if self.link.drop_per_mille > 0
                && self.rng.gen_range(0..1000u32) < self.link.drop_per_mille as u32
            {
                self.stats.dropped += 1;
                continue;
            }
            let delay = self
                .rng
                .gen_range(self.link.min_delay..=self.link.max_delay);
            self.stats.bytes += payload.len();
            self.in_flight.push(InFlight {
                deliver_at: self.now + delay,
                seq: self.next_seq,
                src,
                dst,
                payload: payload.clone(),
            });
            self.next_seq += 1;
        }
    }

    /// Advances time by one tick, delivering every message that is due.
    pub fn tick(&mut self) {
        self.now += 1;
        let now = self.now;
        let mut due: Vec<InFlight> = Vec::new();
        self.in_flight.retain(|m| {
            if m.deliver_at <= now {
                due.push(m.clone());
                false
            } else {
                true
            }
        });
        due.sort_by_key(|m| (m.deliver_at, m.seq));
        for m in due {
            self.stats.delivered += 1;
            match decode_bundle(&m.payload) {
                Ok(bundle) => {
                    self.replicas[m.dst].receive(&bundle);
                }
                Err(_) => unreachable!("simulator does not corrupt payloads"),
            }
        }
    }

    /// One anti-entropy exchange between replicas `i` and `j` (both
    /// directions, immediate — this models a reliable repair channel).
    pub fn sync_pair(&mut self, i: usize, j: usize) {
        if self.group[i] != self.group[j] {
            return;
        }
        self.stats.syncs += 1;
        let delta_ij = self.replicas[i].bundle_since(&self.replicas[j].digest());
        if !delta_ij.is_empty() {
            let wire = encode_bundle(&delta_ij);
            self.stats.bytes += wire.len();
            let decoded = decode_bundle(&wire).expect("self-encoded bundle");
            self.replicas[j].receive(&decoded);
        }
        let delta_ji = self.replicas[j].bundle_since(&self.replicas[i].digest());
        if !delta_ji.is_empty() {
            let wire = encode_bundle(&delta_ji);
            self.stats.bytes += wire.len();
            let decoded = decode_bundle(&wire).expect("self-encoded bundle");
            self.replicas[i].receive(&decoded);
        }
    }

    /// Returns `true` if every pair of replicas in the same group has the
    /// same events and text.
    pub fn all_converged(&self) -> bool {
        for i in 0..self.replicas.len() {
            for j in (i + 1)..self.replicas.len() {
                if self.group[i] == self.group[j]
                    && !self.replicas[i].converged_with(&self.replicas[j])
                {
                    return false;
                }
            }
        }
        true
    }

    /// Drains the network: ticks until no messages are in flight, then
    /// runs anti-entropy rounds (ring order) until every replica in each
    /// group converges.
    ///
    /// Returns `true` on convergence, `false` if `max_ticks` elapsed first
    /// (which indicates a bug — convergence is guaranteed once delivery is
    /// repaired).
    pub fn run_until_quiescent(&mut self, max_ticks: u64) -> bool {
        let deadline = self.now + max_ticks;
        while !self.in_flight.is_empty() {
            if self.now >= deadline {
                return false;
            }
            self.tick();
        }
        // Repair losses and causal stalls: each round syncs the ring
        // 0→1→…→n−1→0. Information spreads to everyone within two rounds.
        let n = self.replicas.len();
        for _round in 0..n.max(2) {
            if self.all_converged() {
                return true;
            }
            for i in 0..n {
                self.sync_pair(i, (i + 1) % n);
            }
        }
        self.all_converged()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_broadcast_converges() {
        let mut net = NetworkSim::new(&["a", "b", "c"], 7);
        net.edit_insert(0, 0, "alpha ");
        net.edit_insert(1, 0, "bravo ");
        net.edit_insert(2, 0, "charlie ");
        assert!(net.run_until_quiescent(1000));
        let text = net.replica(0).text();
        assert_eq!(text.len(), "alpha bravo charlie ".len());
        for i in 1..3 {
            assert_eq!(net.replica(i).text(), text);
        }
    }

    #[test]
    fn lossy_network_repaired_by_anti_entropy() {
        let link = LinkConfig {
            min_delay: 1,
            max_delay: 5,
            drop_per_mille: 400,
        };
        let mut net = NetworkSim::with_link(&["a", "b", "c", "d"], 99, link);
        for round in 0..20 {
            let who = round % 4;
            let len = net.replica(who).len_chars();
            net.edit_insert(who, len / 2, "xy");
        }
        assert!(net.run_until_quiescent(10_000));
        assert!(net.stats().dropped > 0, "seed should exercise loss");
        assert!(net.all_converged());
    }

    #[test]
    fn partition_then_heal() {
        let mut net = NetworkSim::new(&["a", "b", "c", "d"], 3);
        net.edit_insert(0, 0, "base ");
        assert!(net.run_until_quiescent(1000));

        net.partition(&[&[0, 1], &[2, 3]]);
        net.edit_insert(0, 0, "left ");
        net.edit_insert(2, 0, "right ");
        assert!(net.run_until_quiescent(1000));
        // Sides diverged.
        assert_ne!(net.replica(0).text(), net.replica(2).text());
        assert_eq!(net.replica(0).text(), net.replica(1).text());
        assert_eq!(net.replica(2).text(), net.replica(3).text());

        net.heal();
        assert!(net.run_until_quiescent(1000));
        let text = net.replica(0).text();
        assert!(text.contains("left ") && text.contains("right "));
        for i in 1..4 {
            assert_eq!(net.replica(i).text(), text);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let link = LinkConfig {
                min_delay: 1,
                max_delay: 9,
                drop_per_mille: 150,
            };
            let mut net = NetworkSim::with_link(&["a", "b", "c"], seed, link);
            for i in 0..15 {
                net.edit_insert(i % 3, 0, "ab");
                if i % 4 == 3 {
                    net.tick();
                }
            }
            assert!(net.run_until_quiescent(10_000));
            net.replica(0).text()
        };
        assert_eq!(run(5), run(5));
    }
}
