//! [`NetworkSim`]: the deterministic sync engine driving replicas over a
//! pluggable [`Transport`] and [`Topology`].
//!
//! The engine owns the *policy-free* mechanics: applying local edits,
//! flushing per-link [`Outbox`]es on a cadence, decoding deliveries,
//! causal ingestion, relay marking, digest-based repair, and convergence
//! detection. Everything shape-specific (who links to whom, who relays,
//! who probes whom) lives behind the [`Topology`] trait, and everything
//! medium-specific (delay, loss, ordering) behind [`Transport`] — so the
//! simulated network is one configuration of the engine rather than its
//! architecture.
//!
//! Determinism: every run is a pure function of the seed, the
//! configuration and the edit script, which makes convergence failures
//! replayable.

use crate::message::Message;
use crate::outbox::Outbox;
use crate::replica::{DocId, ReceiveOutcome, Replica};
use crate::topology::{Mesh, Star, Topology};
use crate::transport::{InMemoryTransport, LinkConfig, NodeId, SendOutcome, Tick, Transport};
use std::collections::{BTreeSet, HashMap};

/// Engine configuration (everything except the topology and the seed).
///
/// The default is a full-mesh-style eager configuration: default link
/// model, `flush_every = 0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimConfig {
    /// Link behaviour of the in-memory transport.
    pub link: LinkConfig,
    /// Outbox flush cadence in ticks. `0` flushes immediately after every
    /// local edit and delivery — per-edit eager broadcast, the
    /// pre-refactor behaviour and the bandwidth baseline. Values > 0
    /// batch: a link's pending runs coalesce until the next multiple of
    /// `flush_every`.
    pub flush_every: u64,
}

/// Counters for the whole simulation.
///
/// Byte counters measure **encoded wire size** — the length of the framed
/// payload handed to the transport (`eg-encoding`'s bundle-batch and
/// digest codecs) — counted at send time whether or not the message is
/// subsequently lost, so topology comparisons report honest bandwidth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the transport.
    pub sent: usize,
    /// Messages delivered to a replica.
    pub delivered: usize,
    /// Messages lost (lossy link or partition cut).
    pub dropped: usize,
    /// Deliveries discarded because the payload failed to decode (a
    /// fault-injecting transport corrupted it in flight). Anti-entropy
    /// repairs the gap like any other loss.
    pub corrupt_dropped: usize,
    /// Anti-entropy digest probes received and answered.
    pub syncs: usize,
    /// Total bytes put on the wire (digests + bundles).
    pub bytes: usize,
    /// Bytes spent on digest probes.
    pub digest_bytes: usize,
    /// Bytes spent on event-bundle payloads.
    pub bundle_bytes: usize,
}

/// A deterministic multi-document sync engine over simulated nodes.
///
/// Time advances in integer ticks via [`NetworkSim::tick`]. Local edits
/// mark per-link outboxes dirty; outboxes flush coalesced bundle batches
/// on the configured cadence; [`NetworkSim::run_until_quiescent`] drains
/// the network and runs digest rounds until every reachable component
/// converges.
#[derive(Debug)]
pub struct NetworkSim {
    replicas: Vec<Replica>,
    topology: Box<dyn Topology>,
    transport: Box<dyn Transport>,
    /// Outboxes of each node, one per topology link.
    outboxes: Vec<Vec<Outbox>>,
    cfg: SimConfig,
    now: Tick,
    stats: NetStats,
}

/// Configures and builds a [`NetworkSim`]; see [`NetworkSim::builder`].
pub struct SimBuilder {
    names: Vec<String>,
    seed: u64,
    cfg: SimConfig,
    topology: Option<Box<dyn Topology>>,
    transport: Option<Box<dyn Transport>>,
}

impl SimBuilder {
    /// Sets the link model of the in-memory transport.
    pub fn link(mut self, link: LinkConfig) -> Self {
        self.cfg.link = link;
        self
    }

    /// Replaces the default [`InMemoryTransport`] with a custom one —
    /// e.g. a [`crate::FaultyTransport`] wrapping it for seeded fault
    /// schedules. Overrides [`SimBuilder::link`].
    pub fn transport(mut self, transport: Box<dyn Transport>) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Sets the outbox flush cadence (see [`SimConfig::flush_every`]).
    pub fn flush_every(mut self, ticks: u64) -> Self {
        self.cfg.flush_every = ticks;
        self
    }

    /// Uses a full-mesh topology (the default).
    pub fn mesh(mut self) -> Self {
        self.topology = Some(Box::new(Mesh::new(self.names.len())));
        self
    }

    /// Uses a star topology with node 0 as the hub.
    pub fn star(self) -> Self {
        self.star_hub(0)
    }

    /// Uses a star topology with an explicit hub.
    pub fn star_hub(mut self, hub: NodeId) -> Self {
        self.topology = Some(Box::new(Star::new(self.names.len(), hub)));
        self
    }

    /// Uses a custom [`Topology`] implementation.
    pub fn topology(mut self, topology: Box<dyn Topology>) -> Self {
        assert_eq!(
            topology.len(),
            self.names.len(),
            "topology size must match the replica count"
        );
        self.topology = Some(topology);
        self
    }

    /// Builds the engine.
    pub fn build(self) -> NetworkSim {
        let n = self.names.len();
        let topology = self.topology.unwrap_or_else(|| Box::new(Mesh::new(n)));
        let outboxes = (0..n)
            .map(|i| topology.links(i).into_iter().map(Outbox::new).collect())
            .collect();
        let transport = self
            .transport
            .unwrap_or_else(|| Box::new(InMemoryTransport::new(self.cfg.link, self.seed)));
        NetworkSim {
            replicas: self.names.iter().map(|s| Replica::new(s)).collect(),
            topology,
            transport,
            outboxes,
            cfg: self.cfg,
            now: 0,
            stats: NetStats::default(),
        }
    }
}

impl NetworkSim {
    /// Creates a fully connected eager-broadcast network of empty
    /// replicas (the classic configuration).
    pub fn new(names: &[&str], seed: u64) -> Self {
        Self::builder(names, seed).build()
    }

    /// [`NetworkSim::new`] with an explicit link model.
    pub fn with_link(names: &[&str], seed: u64, link: LinkConfig) -> Self {
        Self::builder(names, seed).link(link).build()
    }

    /// Starts configuring an engine: topology, link model, flush cadence.
    pub fn builder(names: &[&str], seed: u64) -> SimBuilder {
        SimBuilder {
            names: names.iter().map(|s| s.to_string()).collect(),
            seed,
            cfg: SimConfig::default(),
            topology: None,
            transport: None,
        }
    }

    /// The number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Returns `true` if the network has no replicas.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Read access to a replica.
    pub fn replica(&self, i: usize) -> &Replica {
        &self.replicas[i]
    }

    /// The current simulation time, in ticks.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Simulation counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Inserts text in the default document at replica `i`.
    pub fn edit_insert(&mut self, i: NodeId, pos: usize, text: &str) {
        self.edit_insert_doc(i, DocId::DEFAULT, pos, text);
    }

    /// Deletes characters from the default document at replica `i`.
    pub fn edit_delete(&mut self, i: NodeId, pos: usize, len: usize) {
        self.edit_delete_doc(i, DocId::DEFAULT, pos, len);
    }

    /// Inserts text in document `doc` at replica `i`, queueing the new
    /// events for replication.
    pub fn edit_insert_doc(&mut self, i: NodeId, doc: DocId, pos: usize, text: &str) {
        self.replicas[i].insert_doc(doc, pos, text);
        self.mark_relays(i, doc, None);
        if self.cfg.flush_every == 0 {
            self.flush_node(i);
        }
    }

    /// Deletes `len` characters from document `doc` at replica `i`,
    /// queueing the new events for replication.
    pub fn edit_delete_doc(&mut self, i: NodeId, doc: DocId, pos: usize, len: usize) {
        self.replicas[i].delete_doc(doc, pos, len);
        self.mark_relays(i, doc, None);
        if self.cfg.flush_every == 0 {
            self.flush_node(i);
        }
    }

    /// Splits the network into partition groups (see
    /// [`Topology::set_partition`]); in-flight messages crossing a new
    /// boundary are lost, as a partition severs links mid-delivery.
    /// Anti-entropy repairs this after healing.
    pub fn partition(&mut self, groups: &[&[NodeId]]) {
        self.topology.set_partition(groups);
        let Self {
            topology,
            transport,
            stats,
            ..
        } = self;
        stats.dropped += transport.cut(&mut |src, dst| !topology.linked(src, dst));
    }

    /// Heals all partitions. Pending outboxes and anti-entropy (in
    /// [`NetworkSim::run_until_quiescent`]) then reconcile the groups.
    pub fn heal(&mut self) {
        self.topology.heal();
    }

    /// Advances time by one tick: flushes outboxes that are due, then
    /// delivers every message whose delay has elapsed.
    pub fn tick(&mut self) {
        self.now += 1;
        if self.cfg.flush_every > 0 && self.now % self.cfg.flush_every == 0 {
            self.flush_all();
        }
        for d in self.transport.poll(self.now) {
            // A fault-injecting transport may corrupt payloads in
            // flight; a mangled frame is dropped (counted) and repaired
            // by a later digest round, never a panic.
            match Message::decode(&d.payload) {
                Ok(msg) => {
                    self.stats.delivered += 1;
                    self.deliver(d.src, d.dst, msg);
                }
                Err(_) => self.stats.corrupt_dropped += 1,
            }
        }
        if self.cfg.flush_every == 0 {
            // Eager mode: relays (e.g. a star hub forwarding what it just
            // received) go out on the same tick.
            self.flush_all();
        }
    }

    /// Drains the network: ticks until nothing is in flight and no outbox
    /// is pending, then runs digest-exchange rounds until every reachable
    /// component converges.
    ///
    /// Returns `true` on convergence, `false` if `max_ticks` elapsed
    /// first (which indicates a bug — convergence is guaranteed once
    /// delivery is repaired).
    pub fn run_until_quiescent(&mut self, max_ticks: u64) -> bool {
        let deadline = self.now + max_ticks;
        let mut round = 0usize;
        loop {
            if self.transport.in_flight() == 0 {
                self.flush_all();
                if self.transport.in_flight() == 0 {
                    // Nothing left to say spontaneously: check, then probe.
                    if self.all_converged() {
                        return true;
                    }
                    if self.now >= deadline {
                        return false;
                    }
                    self.digest_round(round);
                    round += 1;
                }
            }
            if self.now >= deadline {
                return false;
            }
            self.tick();
        }
    }

    /// Returns `true` if every pair of replicas that can currently reach
    /// each other (directly or through relays) has the same events and
    /// text in every document.
    pub fn all_converged(&self) -> bool {
        let n = self.replicas.len();
        let comp = self.components();
        let snaps: Vec<_> = self.replicas.iter().map(|r| r.snapshot()).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                if comp[i] == comp[j] && snaps[i] != snaps[j] {
                    return false;
                }
            }
        }
        true
    }

    /// Connected components of the current link graph (partition- and
    /// topology-aware): the units within which convergence is required.
    fn components(&self) -> Vec<usize> {
        let n = self.replicas.len();
        let mut comp = vec![usize::MAX; n];
        let mut next = 0;
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = next;
            let mut queue = vec![start];
            while let Some(a) = queue.pop() {
                for b in 0..n {
                    if comp[b] == usize::MAX && self.topology.linked(a, b) {
                        comp[b] = next;
                        queue.push(b);
                    }
                }
            }
            next += 1;
        }
        comp
    }

    /// Marks the outboxes `node` should propagate `doc` through, per the
    /// topology's relay rule.
    fn mark_relays(&mut self, node: NodeId, doc: DocId, from: Option<NodeId>) {
        for peer in self.topology.relay_targets(node, from) {
            if let Some(ob) = self.outboxes[node].iter_mut().find(|o| o.peer() == peer) {
                ob.mark_dirty(doc);
            }
        }
    }

    /// Flushes every dirty outbox whose link is currently up.
    fn flush_all(&mut self) {
        for node in 0..self.replicas.len() {
            self.flush_node(node);
        }
    }

    /// Flushes `node`'s dirty outboxes (skipping severed links), sending
    /// one coalesced bundle-batch message per link. Fan-out is cheap:
    /// outboxes sharing a believed frontier share one graph walk (the
    /// delta memo), and identical consecutive batches share one encode.
    fn flush_node(&mut self, node: NodeId) {
        let mut to_send: Vec<(NodeId, Message)> = Vec::new();
        {
            let Self {
                replicas,
                outboxes,
                topology,
                ..
            } = self;
            let replica = &replicas[node];
            let mut deltas = HashMap::new();
            for ob in outboxes[node].iter_mut() {
                if ob.is_clean() || !topology.linked(node, ob.peer()) {
                    continue;
                }
                if let Some(docs) = ob.flush_cached(replica, &mut deltas) {
                    to_send.push((ob.peer(), Message::Bundles(docs)));
                }
            }
        }
        let mut encoded: Option<(usize, Vec<u8>)> = None;
        for i in 0..to_send.len() {
            let (peer, msg) = &to_send[i];
            let payload = match &encoded {
                Some((j, bytes)) if to_send[*j].1 == *msg => bytes.clone(),
                _ => {
                    let bytes = msg.encode();
                    encoded = Some((i, bytes.clone()));
                    bytes
                }
            };
            self.send_payload(node, *peer, payload, false);
        }
    }

    /// One anti-entropy round: the topology's scheduled digest probes.
    fn digest_round(&mut self, round: usize) {
        for (i, j) in self.topology.digest_pairs(round) {
            if !self.topology.linked(i, j) {
                continue;
            }
            let digest = Message::Digest(self.replicas[i].digest_all());
            self.send_message(i, j, &digest);
        }
    }

    /// Encodes and submits one message, updating the wire-size counters.
    fn send_message(&mut self, src: NodeId, dst: NodeId, msg: &Message) {
        let payload = msg.encode();
        self.send_payload(src, dst, payload, msg.is_digest());
    }

    /// Submits an already-encoded message, updating the wire-size
    /// counters.
    fn send_payload(&mut self, src: NodeId, dst: NodeId, payload: Vec<u8>, is_digest: bool) {
        self.stats.sent += 1;
        self.stats.bytes += payload.len();
        if is_digest {
            self.stats.digest_bytes += payload.len();
        } else {
            self.stats.bundle_bytes += payload.len();
        }
        if self.transport.send(self.now, src, dst, payload) == SendOutcome::Dropped {
            self.stats.dropped += 1;
        }
    }

    /// Processes one delivered message at `dst`.
    fn deliver(&mut self, src: NodeId, dst: NodeId, msg: Message) {
        match msg {
            Message::Bundles(docs) => {
                for (doc, bundle) in &docs {
                    let outcome = self.replicas[dst].receive_doc(*doc, bundle);
                    if matches!(outcome, ReceiveOutcome::Applied(_)) {
                        self.mark_relays(dst, *doc, Some(src));
                    }
                }
            }
            Message::Digest(docs) => {
                self.stats.syncs += 1;
                // Does the probe mention events we have never seen? Then
                // the sender is ahead of us too: answer with our own
                // digest so it pushes the difference back.
                let behind = {
                    let replica = &self.replicas[dst];
                    docs.iter()
                        .any(|(doc, ver)| ver.iter().any(|id| !replica.knows_remote(*doc, id)))
                };
                // Reset the reverse outbox to the digest's ground truth and
                // flush it immediately: the reply is exactly the peer's gap,
                // including documents its digest does not mention at all.
                let mentioned: BTreeSet<DocId> = docs.iter().map(|(d, _)| *d).collect();
                let reply = {
                    let Self {
                        replicas, outboxes, ..
                    } = self;
                    let replica = &replicas[dst];
                    outboxes[dst]
                        .iter_mut()
                        .find(|o| o.peer() == src)
                        .and_then(|ob| {
                            for (doc, ver) in &docs {
                                ob.observe_digest(replica, *doc, ver);
                                ob.mark_dirty(*doc);
                            }
                            for doc in replica.doc_ids() {
                                if !mentioned.contains(&doc) {
                                    ob.observe_digest(replica, doc, &[]);
                                    ob.mark_dirty(doc);
                                }
                            }
                            ob.flush(replica)
                        })
                };
                if let Some(docs_out) = reply {
                    self.send_message(dst, src, &Message::Bundles(docs_out));
                }
                if behind {
                    let mine = Message::Digest(self.replicas[dst].digest_all());
                    self.send_message(dst, src, &mine);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_broadcast_converges() {
        let mut net = NetworkSim::new(&["a", "b", "c"], 7);
        net.edit_insert(0, 0, "alpha ");
        net.edit_insert(1, 0, "bravo ");
        net.edit_insert(2, 0, "charlie ");
        assert!(net.run_until_quiescent(1000));
        let text = net.replica(0).text();
        assert_eq!(text.len(), "alpha bravo charlie ".len());
        for i in 1..3 {
            assert_eq!(net.replica(i).text(), text);
        }
    }

    #[test]
    fn lossy_network_repaired_by_anti_entropy() {
        let link = LinkConfig {
            min_delay: 1,
            max_delay: 5,
            drop_per_mille: 400,
        };
        let mut net = NetworkSim::with_link(&["a", "b", "c", "d"], 99, link);
        for round in 0..20 {
            let who = round % 4;
            let len = net.replica(who).len_chars();
            net.edit_insert(who, len / 2, "xy");
        }
        assert!(net.run_until_quiescent(10_000));
        assert!(net.stats().dropped > 0, "seed should exercise loss");
        assert!(net.all_converged());
    }

    #[test]
    fn partition_then_heal() {
        let mut net = NetworkSim::new(&["a", "b", "c", "d"], 3);
        net.edit_insert(0, 0, "base ");
        assert!(net.run_until_quiescent(1000));

        net.partition(&[&[0, 1], &[2, 3]]);
        net.edit_insert(0, 0, "left ");
        net.edit_insert(2, 0, "right ");
        assert!(net.run_until_quiescent(1000));
        // Sides diverged.
        assert_ne!(net.replica(0).text(), net.replica(2).text());
        assert_eq!(net.replica(0).text(), net.replica(1).text());
        assert_eq!(net.replica(2).text(), net.replica(3).text());

        net.heal();
        assert!(net.run_until_quiescent(1000));
        let text = net.replica(0).text();
        assert!(text.contains("left ") && text.contains("right "));
        for i in 1..4 {
            assert_eq!(net.replica(i).text(), text);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let link = LinkConfig {
                min_delay: 1,
                max_delay: 9,
                drop_per_mille: 150,
            };
            let mut net = NetworkSim::with_link(&["a", "b", "c"], seed, link);
            for i in 0..15 {
                net.edit_insert(i % 3, 0, "ab");
                if i % 4 == 3 {
                    net.tick();
                }
            }
            assert!(net.run_until_quiescent(10_000));
            net.replica(0).text()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn batched_outboxes_send_fewer_messages_than_eager() {
        let script = |net: &mut NetworkSim| {
            for i in 0..12 {
                let len = net.replica(0).len_chars();
                net.edit_insert(0, len, "word ");
                net.edit_insert(1, 0, "x");
                if i % 3 == 0 {
                    net.tick();
                }
            }
            assert!(net.run_until_quiescent(10_000));
        };
        let mut eager = NetworkSim::new(&["a", "b", "c"], 11);
        script(&mut eager);
        let mut batched = NetworkSim::builder(&["a", "b", "c"], 11)
            .flush_every(4)
            .build();
        script(&mut batched);
        assert_eq!(eager.replica(0).text(), batched.replica(0).text());
        assert!(
            batched.stats().sent < eager.stats().sent,
            "batched {} vs eager {}",
            batched.stats().sent,
            eager.stats().sent
        );
        assert!(
            batched.stats().bytes < eager.stats().bytes,
            "batched {} vs eager {} bytes",
            batched.stats().bytes,
            eager.stats().bytes
        );
    }

    #[test]
    fn byte_accounting_splits_digest_and_bundle_traffic() {
        let link = LinkConfig {
            min_delay: 1,
            max_delay: 4,
            drop_per_mille: 350,
        };
        let mut net = NetworkSim::with_link(&["a", "b", "c"], 1234, link);
        for i in 0..20 {
            net.edit_insert(i % 3, 0, "abc");
        }
        assert!(net.run_until_quiescent(10_000));
        let s = net.stats();
        assert_eq!(s.bytes, s.digest_bytes + s.bundle_bytes);
        assert!(s.bundle_bytes > 0);
        // The lossy run must have needed digest repair.
        assert!(s.syncs > 0);
        assert!(s.digest_bytes > 0);
    }

    #[test]
    fn multi_doc_edits_replicate_per_shard() {
        let mut net = NetworkSim::new(&["a", "b"], 5);
        net.edit_insert_doc(0, DocId(1), 0, "one");
        net.edit_insert_doc(1, DocId(2), 0, "two");
        assert!(net.run_until_quiescent(1000));
        for i in 0..2 {
            assert_eq!(net.replica(i).text_doc(DocId(1)), "one");
            assert_eq!(net.replica(i).text_doc(DocId(2)), "two");
        }
    }
}
