//! Replication layer for the Eg-walker suite: causal broadcast between
//! replicas over a simulated network.
//!
//! The paper assumes "a reliable broadcast protocol that detects and
//! retransmits lost messages, but makes no other assumptions about the
//! network" (§2.1), and a causal delivery rule: "if any parents are
//! missing, the replica waits for them to arrive before adding them to the
//! graph" (§2.2). This crate implements exactly that layer, so the whole
//! system — editor, oplog, walker, wire format, delivery — can be exercised
//! end to end:
//!
//! * [`Replica`] couples an [`egwalker::OpLog`] with a live
//!   [`egwalker::Branch`], generates events for local edits, and ingests
//!   remote [`egwalker::EventBundle`]s with a causal buffer for
//!   out-of-order arrival.
//! * [`NetworkSim`] is a deterministic discrete-event network: per-link
//!   random delay, probabilistic loss, reordering, partitions — plus
//!   anti-entropy digest exchange, which together with re-delivery gives
//!   the reliable-broadcast guarantee the paper assumes.
//!
//! Determinism: every run is a pure function of the seed and the edit
//! script, which makes convergence failures replayable.
//!
//! # Examples
//!
//! ```
//! use eg_sync::NetworkSim;
//!
//! let mut net = NetworkSim::new(&["alice", "bob"], 42);
//! net.edit_insert(0, 0, "hello");
//! net.edit_insert(1, 0, "world ");
//! net.run_until_quiescent(10_000);
//! assert!(net.all_converged());
//! assert_eq!(net.replica(0).text(), net.replica(1).text());
//! ```

mod network;
mod replica;

pub use network::{LinkConfig, NetStats, NetworkSim};
pub use replica::{ReceiveOutcome, Replica, ReplicaStats};
