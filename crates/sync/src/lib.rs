//! Replication layer for the Eg-walker suite: a transport-abstracted,
//! shard-aware sync engine with batched anti-entropy.
//!
//! The paper assumes "a reliable broadcast protocol that detects and
//! retransmits lost messages, but makes no other assumptions about the
//! network" (§2.1), and a causal delivery rule: "if any parents are
//! missing, the replica waits for them to arrive before adding them to the
//! graph" (§2.2). This crate implements that layer as four seams, so the
//! whole system — editor, oplog, walker, wire format, delivery — can be
//! exercised end to end at scale:
//!
//! * [`Replica`] hosts a keyed shard space of documents ([`DocId`] →
//!   oplog + live branch + causal buffer), so one node serves many
//!   documents with per-document frontiers, digests, and bundles.
//! * [`Transport`] moves opaque encoded [`Message`]s between nodes;
//!   [`InMemoryTransport`] is the deterministic simulated implementation
//!   (seeded delay, loss, reordering).
//! * [`Topology`] decides shape: which links exist ([`Mesh`] full-mesh
//!   p2p, [`Star`] server relay), how events are relayed, and which
//!   digest probes each anti-entropy round runs.
//! * [`Outbox`]es batch: per link and per document they track the
//!   frontier the peer is believed to have and coalesce pending runs, so
//!   a burst of edits travels as one run-length-compressed delta instead
//!   of a message per keystroke, and repair probes are compact frontier
//!   digests instead of full version vectors.
//!
//! [`NetworkSim`] is the engine tying the seams together. Determinism:
//! every run is a pure function of the seed, the configuration, and the
//! edit script, which makes convergence failures replayable.
//!
//! # Examples
//!
//! ```
//! use eg_sync::NetworkSim;
//!
//! let mut net = NetworkSim::new(&["alice", "bob"], 42);
//! net.edit_insert(0, 0, "hello");
//! net.edit_insert(1, 0, "world ");
//! net.run_until_quiescent(10_000);
//! assert!(net.all_converged());
//! assert_eq!(net.replica(0).text(), net.replica(1).text());
//! ```
//!
//! A 100-node server-relay deployment over eight documents:
//!
//! ```
//! use eg_sync::{DocId, NetworkSim};
//!
//! let names: Vec<String> = (0..100).map(|i| format!("node{i}")).collect();
//! let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
//! let mut net = NetworkSim::builder(&refs, 7).star().flush_every(2).build();
//! for i in 1..100 {
//!     net.edit_insert_doc(i, DocId((i % 8) as u64), 0, "hi ");
//! }
//! assert!(net.run_until_quiescent(10_000));
//! assert!(net.all_converged());
//! ```

mod faulty;
pub mod frame;
mod message;
mod network;
mod outbox;
mod replica;
mod topology;
mod transport;

pub use faulty::{FaultSpec, FaultStats, FaultyTransport, PartitionWindow};
pub use frame::{FrameDecoder, FrameError, WireFrame, MAX_FRAME_LEN, PROTOCOL_VERSION};
pub use message::Message;
pub use network::{NetStats, NetworkSim, SimBuilder, SimConfig};
pub use outbox::Outbox;
pub use replica::{DocId, ReceiveOutcome, Replica, ReplicaStats};
pub use topology::{Mesh, Star, Topology};
pub use transport::{
    Delivery, InMemoryTransport, LinkConfig, NodeId, SendOutcome, Tick, Transport,
};
