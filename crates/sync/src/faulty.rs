//! [`FaultyTransport`]: seeded fault injection behind the [`Transport`]
//! seam.
//!
//! Wraps any inner transport and, on a deterministic schedule derived
//! from the construction seed, drops, duplicates, corrupts (bit-flips
//! or truncates mid-frame), and delays messages, and blocks traffic
//! across scheduled partition windows. Every replica-facing robustness
//! claim — "convergence holds under every seeded fault schedule" — is
//! a [`crate::NetworkSim`] run over this wrapper; the socket-level
//! twin (the daemon's fault proxy) injects the same fault classes into
//! real byte streams.

use crate::transport::{Delivery, NodeId, SendOutcome, Tick, Transport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scheduled partition: messages crossing the `side_a` boundary are
/// blocked while `from <= now < until`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    /// First tick of the window (inclusive).
    pub from: Tick,
    /// End of the window (exclusive).
    pub until: Tick,
    /// One side of the cut; everything else is the other side.
    pub side_a: Vec<NodeId>,
}

impl PartitionWindow {
    /// Returns `true` if a `src → dst` message at `now` is severed.
    pub fn blocks(&self, now: Tick, src: NodeId, dst: NodeId) -> bool {
        if now < self.from || now >= self.until {
            return false;
        }
        self.side_a.contains(&src) != self.side_a.contains(&dst)
    }
}

/// Per-message fault probabilities (parts per thousand) plus the
/// partition schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Probability of silently dropping a message.
    pub drop_per_mille: u16,
    /// Probability of delivering a message twice.
    pub duplicate_per_mille: u16,
    /// Probability of corrupting the payload (a bit flip or a mid-frame
    /// truncation, chosen pseudo-randomly); receivers must reject the
    /// mangled frame and repair via anti-entropy.
    pub corrupt_per_mille: u16,
    /// Probability of holding a message back for extra ticks.
    pub delay_per_mille: u16,
    /// Maximum extra delay, in ticks (inclusive; minimum is 1).
    pub max_extra_delay: u64,
    /// Scheduled partition windows.
    pub partitions: Vec<PartitionWindow>,
}

impl FaultSpec {
    /// A moderately hostile randomized schedule derived from `seed`:
    /// a few percent of every fault class plus 1–3 partition windows
    /// over the first `horizon` ticks. Used by the seeded sweep tests
    /// and the nightly fault campaign.
    pub fn random(seed: u64, nodes: usize, horizon: Tick) -> FaultSpec {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA_17_5C_ED);
        let windows = 1 + rng.gen_range(0..3u32) as usize;
        let mut partitions = Vec::with_capacity(windows);
        for _ in 0..windows {
            let from = rng.gen_range(0..horizon.max(2) / 2);
            let len = rng.gen_range(1..horizon.max(4) / 2);
            // A random non-empty strict subset of nodes.
            let mut side_a: Vec<NodeId> =
                (0..nodes).filter(|_| rng.gen_range(0..2u32) == 0).collect();
            if side_a.is_empty() {
                side_a.push(rng.gen_range(0..nodes.max(1)));
            }
            if side_a.len() == nodes && nodes > 1 {
                side_a.pop();
            }
            partitions.push(PartitionWindow {
                from,
                until: from + len,
                side_a,
            });
        }
        FaultSpec {
            drop_per_mille: rng.gen_range(0..80u32) as u16,
            duplicate_per_mille: rng.gen_range(0..60u32) as u16,
            corrupt_per_mille: rng.gen_range(0..40u32) as u16,
            delay_per_mille: rng.gen_range(0..150u32) as u16,
            max_extra_delay: 1 + rng.gen_range(0..12u64),
            partitions,
        }
    }
}

/// Counters of injected faults, for assertions that a schedule really
/// exercised its fault classes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages silently dropped.
    pub dropped: usize,
    /// Messages delivered twice.
    pub duplicated: usize,
    /// Messages with a corrupted payload let through.
    pub corrupted: usize,
    /// Messages held back for extra ticks.
    pub delayed: usize,
    /// Messages blocked by a partition window.
    pub blocked: usize,
}

#[derive(Debug)]
struct Held {
    release_at: Tick,
    src: NodeId,
    dst: NodeId,
    payload: Vec<u8>,
}

/// A [`Transport`] decorator injecting seeded faults; see the module
/// docs. Deterministic: identical seed + schedule + send sequence ⇒
/// identical behaviour.
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: T,
    spec: FaultSpec,
    rng: StdRng,
    held: Vec<Held>,
    stats: FaultStats,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with the fault schedule `spec`.
    pub fn new(inner: T, spec: FaultSpec, seed: u64) -> Self {
        FaultyTransport {
            inner,
            spec,
            rng: StdRng::seed_from_u64(seed ^ 0xBAD_F00D),
            held: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// Injected-fault counters.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    fn roll(&mut self, per_mille: u16) -> bool {
        per_mille > 0 && self.rng.gen_range(0..1000u32) < u32::from(per_mille)
    }

    /// Mangles a payload: either flips one bit or truncates mid-frame.
    fn corrupt(&mut self, payload: &mut Vec<u8>) {
        if payload.is_empty() {
            return;
        }
        if self.rng.gen_range(0..2u32) == 0 {
            let i = self.rng.gen_range(0..payload.len());
            payload[i] ^= 1 << self.rng.gen_range(0..8u32);
        } else {
            let cut = self.rng.gen_range(0..payload.len());
            payload.truncate(cut);
        }
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, now: Tick, src: NodeId, dst: NodeId, mut payload: Vec<u8>) -> SendOutcome {
        if self.spec.partitions.iter().any(|w| w.blocks(now, src, dst)) {
            self.stats.blocked += 1;
            return SendOutcome::Dropped;
        }
        if self.roll(self.spec.drop_per_mille) {
            self.stats.dropped += 1;
            return SendOutcome::Dropped;
        }
        if self.roll(self.spec.corrupt_per_mille) {
            self.stats.corrupted += 1;
            self.corrupt(&mut payload);
        }
        if self.roll(self.spec.duplicate_per_mille) {
            self.stats.duplicated += 1;
            let _ = self.inner.send(now, src, dst, payload.clone());
        }
        if self.roll(self.spec.delay_per_mille) {
            self.stats.delayed += 1;
            let extra = 1 + self.rng.gen_range(0..self.spec.max_extra_delay.max(1));
            self.held.push(Held {
                release_at: now + extra,
                src,
                dst,
                payload,
            });
            return SendOutcome::Queued;
        }
        self.inner.send(now, src, dst, payload)
    }

    fn poll(&mut self, now: Tick) -> Vec<Delivery> {
        // Release due held messages into the inner transport first so it
        // applies its normal delay model from here on.
        let mut due = Vec::new();
        self.held.retain_mut(|h| {
            if h.release_at <= now {
                due.push((h.src, h.dst, std::mem::take(&mut h.payload)));
                false
            } else {
                true
            }
        });
        for (src, dst, payload) in due {
            let _ = self.inner.send(now, src, dst, payload);
        }
        self.inner.poll(now)
    }

    fn in_flight(&self) -> usize {
        self.inner.in_flight() + self.held.len()
    }

    fn cut(&mut self, sever: &mut dyn FnMut(NodeId, NodeId) -> bool) -> usize {
        let before = self.held.len();
        self.held.retain(|h| !sever(h.src, h.dst));
        let held_cut = before - self.held.len();
        held_cut + self.inner.cut(sever)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{InMemoryTransport, LinkConfig};

    fn inner() -> InMemoryTransport {
        InMemoryTransport::new(
            LinkConfig {
                min_delay: 1,
                max_delay: 1,
                drop_per_mille: 0,
            },
            3,
        )
    }

    #[test]
    fn partition_window_blocks_cross_traffic_only() {
        let spec = FaultSpec {
            partitions: vec![PartitionWindow {
                from: 5,
                until: 10,
                side_a: vec![0],
            }],
            ..FaultSpec::default()
        };
        let mut t = FaultyTransport::new(inner(), spec, 1);
        assert_eq!(t.send(6, 0, 1, vec![1]), SendOutcome::Dropped);
        assert_eq!(t.send(6, 1, 2, vec![2]), SendOutcome::Queued);
        assert_eq!(t.send(12, 0, 1, vec![3]), SendOutcome::Queued);
        assert_eq!(t.stats().blocked, 1);
    }

    #[test]
    fn duplicate_delivers_twice() {
        let spec = FaultSpec {
            duplicate_per_mille: 1000,
            ..FaultSpec::default()
        };
        let mut t = FaultyTransport::new(inner(), spec, 2);
        t.send(0, 0, 1, vec![9]);
        let got = t.poll(1);
        assert_eq!(got.len(), 2);
        assert_eq!(t.stats().duplicated, 1);
    }

    #[test]
    fn delay_holds_then_releases() {
        let spec = FaultSpec {
            delay_per_mille: 1000,
            max_extra_delay: 3,
            ..FaultSpec::default()
        };
        let mut t = FaultyTransport::new(inner(), spec, 7);
        t.send(0, 0, 1, vec![5]);
        assert_eq!(t.in_flight(), 1);
        let mut delivered = 0;
        for now in 1..10 {
            delivered += t.poll(now).len();
        }
        assert_eq!(delivered, 1);
        assert_eq!(t.stats().delayed, 1);
    }

    #[test]
    fn corrupt_mangles_payload() {
        let spec = FaultSpec {
            corrupt_per_mille: 1000,
            ..FaultSpec::default()
        };
        let mut t = FaultyTransport::new(inner(), spec, 11);
        let original = vec![1, 2, 3, 4, 5, 6, 7, 8];
        t.send(0, 0, 1, original.clone());
        let got = t.poll(1);
        assert_eq!(got.len(), 1);
        assert_ne!(got[0].payload, original);
        assert_eq!(t.stats().corrupted, 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let spec = FaultSpec::random(seed, 4, 100);
            let mut t = FaultyTransport::new(inner(), spec, seed);
            let mut log = Vec::new();
            for i in 0..200u64 {
                let out = t.send(
                    i / 4,
                    (i % 4) as usize,
                    ((i + 1) % 4) as usize,
                    vec![i as u8],
                );
                log.push(out == SendOutcome::Dropped);
            }
            (log, t.stats())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).1, run(43).1);
    }

    #[test]
    fn random_specs_vary_and_have_partitions() {
        let a = FaultSpec::random(1, 6, 500);
        let b = FaultSpec::random(2, 6, 500);
        assert_ne!(a, b);
        assert!(!a.partitions.is_empty());
        for w in &a.partitions {
            assert!(w.until > w.from);
            assert!(!w.side_a.is_empty() && w.side_a.len() < 6);
        }
    }
}
