//! [`Outbox`]: per-link batched anti-entropy state on the send side.
//!
//! The pre-refactor engine broadcast a tiny bundle for *every keystroke*
//! to *every peer* — O(edits × replicas) messages. An outbox replaces
//! that: each link tracks, per document, the frontier the sender believes
//! the peer has, plus a dirty set of documents with unsent knowledge.
//! Flushing coalesces everything pending across all dirty documents into
//! one batched message, so a burst of typing travels as one run-length
//! compressed delta instead of a message per character.
//!
//! The believed frontier is *optimistic*: it advances when we flush, even
//! though the message may still be lost. Digest exchange repairs that —
//! [`Outbox::observe_digest`] resets the belief to what the peer actually
//! reports, and the next flush resends exactly the gap.

use crate::replica::{DocId, Replica};
use crate::transport::NodeId;
use eg_dag::RemoteId;
use egwalker::{EventBundle, Frontier};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Send-side delta state for one directed link.
#[derive(Debug, Clone)]
pub struct Outbox {
    peer: NodeId,
    /// Per document: the local frontier we believe the peer has reached.
    known: BTreeMap<DocId, Frontier>,
    /// Documents with local knowledge the peer (as far as we believe)
    /// lacks.
    dirty: BTreeSet<DocId>,
}

impl Outbox {
    /// An outbox for the link to `peer`, assuming the peer knows nothing.
    pub fn new(peer: NodeId) -> Self {
        Outbox {
            peer,
            known: BTreeMap::new(),
            dirty: BTreeSet::new(),
        }
    }

    /// The peer this outbox sends to.
    pub fn peer(&self) -> NodeId {
        self.peer
    }

    /// Records that `doc` gained events the peer may not have.
    pub fn mark_dirty(&mut self, doc: DocId) {
        self.dirty.insert(doc);
    }

    /// Returns `true` if nothing is pending.
    pub fn is_clean(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Replaces the believed-known frontier for `doc` with what the peer's
    /// digest actually reports (ground truth beats optimism).
    pub fn observe_digest(&mut self, local: &Replica, doc: DocId, version: &[RemoteId]) {
        self.known
            .insert(doc, local.map_remote_frontier(doc, version));
    }

    /// Coalesces every dirty document's pending events into one batch of
    /// per-document bundles, advancing the believed frontiers. Returns
    /// `None` when nothing new needs sending.
    pub fn flush(&mut self, local: &Replica) -> Option<Vec<(DocId, EventBundle)>> {
        self.flush_cached(local, &mut HashMap::new())
    }

    /// [`Outbox::flush`] with a shared delta memo: when a node flushes
    /// many outboxes whose believed frontiers coincide (the broadcast
    /// fan-out case), the per-document graph walk runs once instead of
    /// once per peer.
    pub fn flush_cached(
        &mut self,
        local: &Replica,
        deltas: &mut HashMap<(DocId, Frontier), EventBundle>,
    ) -> Option<Vec<(DocId, EventBundle)>> {
        let mut out = Vec::new();
        for doc in std::mem::take(&mut self.dirty) {
            let known = self.known.entry(doc).or_default();
            let delta = deltas
                .entry((doc, known.clone()))
                .or_insert_with(|| local.bundle_since_frontier(doc, known))
                .clone();
            *known = local.frontier_doc(doc);
            if !delta.is_empty() {
                out.push((doc, delta));
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_coalesces_a_burst_into_one_delta() {
        let mut alice = Replica::new("alice");
        let mut ob = Outbox::new(1);
        for i in 0..10 {
            alice.insert(i, "x");
            ob.mark_dirty(DocId::DEFAULT);
        }
        let batch = ob.flush(&alice).expect("pending events");
        assert_eq!(batch.len(), 1);
        // Ten keystrokes coalesce into one run-compressed bundle.
        assert_eq!(batch[0].1.num_events(), 10);
        assert_eq!(batch[0].1.runs.len(), 1);
        assert!(ob.is_clean());
        // Nothing new: next flush is empty even if marked dirty again.
        ob.mark_dirty(DocId::DEFAULT);
        assert!(ob.flush(&alice).is_none());
    }

    #[test]
    fn flush_batches_across_documents() {
        let mut alice = Replica::new("alice");
        alice.insert_doc(DocId(1), 0, "one");
        alice.insert_doc(DocId(2), 0, "two");
        let mut ob = Outbox::new(1);
        ob.mark_dirty(DocId(1));
        ob.mark_dirty(DocId(2));
        let batch = ob.flush(&alice).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].0, DocId(1));
        assert_eq!(batch[1].0, DocId(2));
    }

    #[test]
    fn observe_digest_rewinds_optimistic_frontier() {
        let mut alice = Replica::new("alice");
        alice.insert(0, "hello");
        let mut ob = Outbox::new(1);
        ob.mark_dirty(DocId::DEFAULT);
        // First flush: optimistically assume the peer got it…
        assert!(ob.flush(&alice).is_some());
        ob.mark_dirty(DocId::DEFAULT);
        assert!(ob.flush(&alice).is_none());
        // …but its digest says it has nothing (message was lost).
        ob.observe_digest(&alice, DocId::DEFAULT, &[]);
        ob.mark_dirty(DocId::DEFAULT);
        let resent = ob.flush(&alice).unwrap();
        assert_eq!(resent[0].1.num_events(), 5);
    }
}
