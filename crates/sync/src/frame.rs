//! Length-prefixed socket framing for the daemon protocol.
//!
//! The sync engine's [`Message`]s are already wire-safe (magic + CRC),
//! but a byte stream needs boundaries: this module frames them — plus
//! the daemon's session-control frames (hello, heartbeats) — as
//!
//! ```text
//! [u32 LE body length][1 tag byte][body...]
//! ```
//!
//! Decoding is built for attacker bytes: the incremental
//! [`FrameDecoder`] accepts arbitrary partial reads, enforces a
//! maximum frame size *before* allocating, and never panics — every
//! length is checked, every slice access guarded. The decoder is part
//! of the `eg-analyze` panic-free file set and the nightly mutation
//! fuzz loop (`crates/sync/tests/fuzz_frames.rs`), like the inner
//! EGWD/EGWM codecs before it.

use crate::message::Message;
use eg_encoding::varint::{self, DecodeError};

/// Bytes of the length prefix preceding every frame body.
pub const FRAME_HEADER_LEN: usize = 4;

/// Default upper bound on a frame body (tag + payload). A peer
/// announcing a bigger frame is misbehaving or corrupt; the connection
/// must be dropped rather than the allocation attempted.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Upper bound on a replica name in a hello frame.
pub const MAX_NAME_LEN: usize = 256;

/// Protocol version spoken by this build. Bumped on any wire change;
/// peers with a different version are refused at handshake.
pub const PROTOCOL_VERSION: u32 = 1;

/// Frame tag: [`WireFrame::Hello`].
pub const TAG_HELLO: u8 = 1;
/// Frame tag: [`WireFrame::Ping`].
pub const TAG_PING: u8 = 2;
/// Frame tag: [`WireFrame::Pong`].
pub const TAG_PONG: u8 = 3;
/// Frame tag: [`WireFrame::Sync`] (first body byte of a sync frame).
pub const TAG_SYNC: u8 = 4;

/// Everything that can go wrong pulling frames off a byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix announced a body larger than the decoder's
    /// configured maximum. The stream is unrecoverable: drop it.
    Oversize {
        /// The announced body length.
        announced: u64,
        /// The configured maximum.
        max: usize,
    },
    /// A zero-length body (every frame carries at least its tag byte).
    Empty,
    /// An unknown frame tag.
    BadTag(u8),
    /// The frame body failed to decode.
    Payload(DecodeError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversize { announced, max } => {
                write!(f, "frame body of {announced} bytes exceeds limit {max}")
            }
            FrameError::Empty => f.write_str("zero-length frame body"),
            FrameError::BadTag(t) => write!(f, "unknown frame tag {t}"),
            FrameError::Payload(e) => write!(f, "frame payload: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<DecodeError> for FrameError {
    fn from(e: DecodeError) -> Self {
        FrameError::Payload(e)
    }
}

/// One frame of the daemon's session protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum WireFrame {
    /// Handshake, sent by both ends immediately after connecting:
    /// protocol version plus the sender's replica name. A version
    /// mismatch or a name collision with the receiver refuses the
    /// session.
    Hello {
        /// Protocol version of the sender ([`PROTOCOL_VERSION`]).
        proto: u32,
        /// The sender's replica / host name (its agent namespace).
        name: String,
    },
    /// Idle-link liveness probe; the peer echoes the sequence number
    /// back as a [`WireFrame::Pong`].
    Ping(u64),
    /// Heartbeat reply.
    Pong(u64),
    /// A sync-engine [`Message`] (digest or bundle batch), carried with
    /// its own inner magic + CRC framing.
    Sync(Message),
}

impl WireFrame {
    /// Encodes the frame as `[len][tag][body]`, ready for a socket.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            WireFrame::Hello { proto, name } => {
                body.push(TAG_HELLO);
                varint::push_u64(&mut body, u64::from(*proto));
                varint::push_usize(&mut body, name.len());
                body.extend_from_slice(name.as_bytes());
            }
            WireFrame::Ping(seq) => {
                body.push(TAG_PING);
                varint::push_u64(&mut body, *seq);
            }
            WireFrame::Pong(seq) => {
                body.push(TAG_PONG);
                varint::push_u64(&mut body, *seq);
            }
            WireFrame::Sync(msg) => {
                body.push(TAG_SYNC);
                body.extend_from_slice(&msg.encode());
            }
        }
        let mut out = Vec::with_capacity(body.len().saturating_add(FRAME_HEADER_LEN));
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes one complete frame body (tag + payload, no length
    /// prefix), as handed out by [`FrameDecoder::next_frame`].
    pub fn decode(body: &[u8]) -> Result<WireFrame, FrameError> {
        let (&tag, mut rest) = body.split_first().ok_or(FrameError::Empty)?;
        match tag {
            TAG_HELLO => {
                let proto = varint::read_u64(&mut rest)?;
                let proto = u32::try_from(proto).map_err(|_| DecodeError::Corrupt)?;
                let name_len = varint::read_usize(&mut rest)?;
                if name_len > MAX_NAME_LEN {
                    return Err(FrameError::Payload(DecodeError::Corrupt));
                }
                let raw = varint::take(&mut rest, name_len)?;
                let name = std::str::from_utf8(raw).map_err(|_| DecodeError::BadUtf8)?;
                if !rest.is_empty() {
                    return Err(FrameError::Payload(DecodeError::Corrupt));
                }
                Ok(WireFrame::Hello {
                    proto,
                    name: name.to_owned(),
                })
            }
            TAG_PING => {
                let seq = varint::read_u64(&mut rest)?;
                if !rest.is_empty() {
                    return Err(FrameError::Payload(DecodeError::Corrupt));
                }
                Ok(WireFrame::Ping(seq))
            }
            TAG_PONG => {
                let seq = varint::read_u64(&mut rest)?;
                if !rest.is_empty() {
                    return Err(FrameError::Payload(DecodeError::Corrupt));
                }
                Ok(WireFrame::Pong(seq))
            }
            TAG_SYNC => Ok(WireFrame::Sync(Message::decode(rest)?)),
            other => Err(FrameError::BadTag(other)),
        }
    }
}

/// Returns `true` if a complete frame body carries an event-bundle
/// batch (as opposed to a digest or a session-control frame), by tag
/// and inner magic alone — no decode. The fault proxy and byte
/// accounting use this to attribute wire bytes to actual event
/// transfer versus anti-entropy chatter.
pub fn is_bundle_body(body: &[u8]) -> bool {
    body.first() == Some(&TAG_SYNC)
        && body.get(1..5) == Some(eg_encoding::BUNDLE_BATCH_MAGIC.as_slice())
}

/// Incremental, never-panic frame boundary scanner.
///
/// Feed it whatever a socket read produced ([`FrameDecoder::push`]) and
/// pull complete frame bodies back out ([`FrameDecoder::next_frame`]).
/// Partial length prefixes, partial bodies, and coalesced frames are
/// all fine; an announced length beyond the configured maximum is a
/// hard error and the stream must be dropped (the decoder refuses to
/// resynchronise — after a framing error nothing downstream can be
/// trusted).
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted once it outgrows the tail).
    start: usize,
    max_frame: usize,
    poisoned: bool,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// A decoder with the default [`MAX_FRAME_LEN`] bound.
    pub fn new() -> Self {
        Self::with_max_frame(MAX_FRAME_LEN)
    }

    /// A decoder with an explicit frame-size bound (tests use tiny
    /// bounds to exercise the guard cheaply).
    pub fn with_max_frame(max_frame: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            start: 0,
            max_frame,
            poisoned: false,
        }
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len().saturating_sub(self.start)
    }

    /// Appends freshly read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily: only when the dead prefix dominates.
        if self.start > 4096 && self.start.saturating_mul(2) > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Returns the next complete frame body (tag + payload), `None` if
    /// more bytes are needed, or an error if the stream is broken.
    /// After an error every further call returns the same error.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if self.poisoned {
            return Err(FrameError::Payload(DecodeError::Corrupt));
        }
        let pending = self.buf.get(self.start..).unwrap_or(&[]);
        let Some(header) = pending.get(..FRAME_HEADER_LEN) else {
            return Ok(None);
        };
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(header);
        let announced = u32::from_le_bytes(len4) as u64;
        if announced == 0 {
            self.poisoned = true;
            return Err(FrameError::Empty);
        }
        if announced > self.max_frame as u64 {
            self.poisoned = true;
            return Err(FrameError::Oversize {
                announced,
                max: self.max_frame,
            });
        }
        let body_len = announced as usize;
        let end = FRAME_HEADER_LEN.saturating_add(body_len);
        let Some(body) = pending.get(FRAME_HEADER_LEN..end) else {
            return Ok(None);
        };
        let frame = body.to_vec();
        self.start = self
            .start
            .saturating_add(FRAME_HEADER_LEN)
            .saturating_add(body_len);
        Ok(Some(frame))
    }

    /// Decodes the next complete frame straight to a [`WireFrame`].
    pub fn next_wire_frame(&mut self) -> Result<Option<WireFrame>, FrameError> {
        match self.next_frame()? {
            Some(body) => WireFrame::decode(&body).map(Some),
            None => Ok(None),
        }
    }
}

/// Blocking read of one frame from `r` through `decoder`, for
/// thread-per-connection consumers (the fault proxy, simple clients).
/// Respects whatever read timeout the caller configured on the stream:
/// a timeout surfaces as the underlying `io::Error`. `Ok(None)` means
/// clean EOF *between* frames; EOF mid-frame is an error.
pub fn read_frame(
    r: &mut impl std::io::Read,
    decoder: &mut FrameDecoder,
) -> std::io::Result<Option<Vec<u8>>> {
    let mut chunk = [0u8; 4096];
    loop {
        match decoder.next_frame() {
            Ok(Some(body)) => return Ok(Some(body)),
            Ok(None) => {}
            Err(e) => {
                return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
            }
        }
        let n = r.read(&mut chunk)?;
        if n == 0 {
            return if decoder.buffered() == 0 {
                Ok(None)
            } else {
                Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF mid-frame",
                ))
            };
        }
        decoder.push(chunk.get(..n).unwrap_or(&[]));
    }
}

/// Blocking write of one frame to `w`.
pub fn write_frame(w: &mut impl std::io::Write, frame: &WireFrame) -> std::io::Result<()> {
    w.write_all(&frame.encode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::{DocId, Replica};

    fn sample_frames() -> Vec<WireFrame> {
        let mut r = Replica::new("alice");
        let b = r.insert_doc(DocId(3), 0, "hello");
        vec![
            WireFrame::Hello {
                proto: PROTOCOL_VERSION,
                name: "alice".into(),
            },
            WireFrame::Ping(7),
            WireFrame::Pong(u64::MAX),
            WireFrame::Sync(Message::Digest(r.digest_all())),
            WireFrame::Sync(Message::Bundles(vec![(DocId(3), b)])),
        ]
    }

    #[test]
    fn frames_roundtrip_through_decoder() {
        let frames = sample_frames();
        let mut decoder = FrameDecoder::new();
        for f in &frames {
            decoder.push(&f.encode());
        }
        for f in &frames {
            let got = decoder.next_wire_frame().unwrap().expect("frame ready");
            assert_eq!(&got, f);
        }
        assert!(decoder.next_wire_frame().unwrap().is_none());
    }

    #[test]
    fn byte_at_a_time_feeding_reassembles() {
        let frames = sample_frames();
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&f.encode());
        }
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        for b in wire {
            decoder.push(&[b]);
            while let Some(f) = decoder.next_wire_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn oversize_length_is_refused_before_allocation() {
        let mut decoder = FrameDecoder::with_max_frame(64);
        let mut wire = (65u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 8]);
        decoder.push(&wire);
        assert!(matches!(
            decoder.next_frame(),
            Err(FrameError::Oversize { announced: 65, .. })
        ));
        // Poisoned: the stream stays dead.
        assert!(decoder.next_frame().is_err());
    }

    #[test]
    fn zero_length_frame_is_an_error() {
        let mut decoder = FrameDecoder::new();
        decoder.push(&0u32.to_le_bytes());
        assert!(matches!(decoder.next_frame(), Err(FrameError::Empty)));
    }

    #[test]
    fn partial_header_and_body_wait_for_more() {
        let frame = WireFrame::Ping(9).encode();
        let mut decoder = FrameDecoder::new();
        decoder.push(&frame[..2]);
        assert_eq!(decoder.next_frame().unwrap(), None);
        decoder.push(&frame[2..frame.len() - 1]);
        assert_eq!(decoder.next_frame().unwrap(), None);
        decoder.push(&frame[frame.len() - 1..]);
        assert_eq!(decoder.next_wire_frame().unwrap(), Some(WireFrame::Ping(9)));
    }

    #[test]
    fn hello_name_bound_is_enforced() {
        let long = "x".repeat(MAX_NAME_LEN + 1);
        let frame = WireFrame::Hello {
            proto: 1,
            name: long,
        }
        .encode();
        let mut decoder = FrameDecoder::new();
        decoder.push(&frame);
        let body = decoder.next_frame().unwrap().unwrap();
        assert!(WireFrame::decode(&body).is_err());
    }

    #[test]
    fn blocking_helpers_roundtrip() {
        let frames = sample_frames();
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut cursor = std::io::Cursor::new(wire);
        let mut decoder = FrameDecoder::new();
        for f in &frames {
            let body = read_frame(&mut cursor, &mut decoder).unwrap().unwrap();
            assert_eq!(&WireFrame::decode(&body).unwrap(), f);
        }
        assert!(read_frame(&mut cursor, &mut decoder).unwrap().is_none());
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let frame = WireFrame::Ping(1).encode();
        let mut cursor = std::io::Cursor::new(frame[..frame.len() - 1].to_vec());
        let mut decoder = FrameDecoder::new();
        assert!(read_frame(&mut cursor, &mut decoder).is_err());
    }
}
