//! Property tests for the replication layer: strong eventual consistency
//! under randomised edit scripts, delivery orders, losses and partitions
//! (paper §2.1-2.2).

use eg_sync::{LinkConfig, NetworkSim, ReceiveOutcome, Replica};
use proptest::prelude::*;

/// A scripted edit: which replica edits, where (as a fraction of the
/// current document), and what.
#[derive(Debug, Clone)]
enum Edit {
    Insert { who: usize, at: u16, text: String },
    Delete { who: usize, at: u16, len: u8 },
}

fn edit_strategy(replicas: usize) -> impl Strategy<Value = Edit> {
    prop_oneof![
        3 => (0..replicas, any::<u16>(), "[a-z]{1,6}").prop_map(|(who, at, text)| {
            Edit::Insert { who, at, text }
        }),
        1 => (0..replicas, any::<u16>(), 1u8..4).prop_map(|(who, at, len)| {
            Edit::Delete { who, at, len }
        }),
    ]
}

fn apply_edit(net: &mut NetworkSim, edit: &Edit) {
    match edit {
        Edit::Insert { who, at, text } => {
            let len = net.replica(*who).len_chars();
            let pos = *at as usize % (len + 1);
            net.edit_insert(*who, pos, text);
        }
        Edit::Delete { who, at, len } => {
            let doc_len = net.replica(*who).len_chars();
            if doc_len == 0 {
                return;
            }
            let pos = *at as usize % doc_len;
            let len = (*len as usize).min(doc_len - pos);
            if len > 0 {
                net.edit_delete(*who, pos, len);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any script over a reliable (delaying, reordering) network converges.
    #[test]
    fn reliable_network_converges(
        seed in any::<u64>(),
        edits in prop::collection::vec(edit_strategy(3), 1..40),
        tick_every in 1usize..6,
    ) {
        let mut net = NetworkSim::new(&["a", "b", "c"], seed);
        for (i, edit) in edits.iter().enumerate() {
            apply_edit(&mut net, edit);
            if i % tick_every == 0 {
                net.tick();
            }
        }
        prop_assert!(net.run_until_quiescent(100_000));
        prop_assert!(net.all_converged());
    }

    /// Heavy loss is repaired by anti-entropy.
    #[test]
    fn lossy_network_converges(
        seed in any::<u64>(),
        edits in prop::collection::vec(edit_strategy(4), 1..30),
        drop in 100u16..800,
    ) {
        let link = LinkConfig { min_delay: 1, max_delay: 10, drop_per_mille: drop };
        let mut net = NetworkSim::with_link(&["a", "b", "c", "d"], seed, link);
        for edit in &edits {
            apply_edit(&mut net, edit);
        }
        prop_assert!(net.run_until_quiescent(100_000));
        prop_assert!(net.all_converged());
    }

    /// Delivering one replica's bundle stream to another in an arbitrary
    /// permutation converges, exercising the causal buffer.
    #[test]
    fn permuted_delivery_converges(
        edits in prop::collection::vec((any::<u16>(), "[a-z]{1,4}"), 1..25),
        order in any::<u64>(),
    ) {
        let mut src = Replica::new("src");
        let mut bundles = Vec::new();
        for (at, text) in &edits {
            let pos = *at as usize % (src.len_chars() + 1);
            bundles.push(src.insert(pos, text));
        }
        // Deterministic permutation from `order`.
        let mut perm: Vec<usize> = (0..bundles.len()).collect();
        let mut state = order | 1;
        for i in (1..perm.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            perm.swap(i, (state as usize) % (i + 1));
        }

        let mut dst = Replica::new("dst");
        for &i in &perm {
            dst.receive(&bundles[i]);
        }
        prop_assert_eq!(dst.pending_len(), 0);
        prop_assert!(dst.converged_with(&src));
    }

    /// A partition between any two groups heals to a converged state.
    #[test]
    fn partition_heal_converges(
        seed in any::<u64>(),
        before in prop::collection::vec(edit_strategy(4), 0..10),
        during in prop::collection::vec(edit_strategy(4), 1..20),
    ) {
        let mut net = NetworkSim::new(&["a", "b", "c", "d"], seed);
        for edit in &before {
            apply_edit(&mut net, edit);
        }
        prop_assert!(net.run_until_quiescent(100_000));

        net.partition(&[&[0, 1], &[2, 3]]);
        for edit in &during {
            apply_edit(&mut net, edit);
        }
        prop_assert!(net.run_until_quiescent(100_000));

        net.heal();
        prop_assert!(net.run_until_quiescent(100_000));
        prop_assert!(net.all_converged());
    }
}

#[test]
fn three_way_concurrent_insertions_do_not_interleave_across_replicas() {
    // Three users type runs concurrently at position 0. After convergence,
    // each user's run must appear contiguously (maximal non-interleaving,
    // paper §3.1).
    let mut net = NetworkSim::new(&["a", "b", "c"], 11);
    net.edit_insert(0, 0, "aaaa");
    net.edit_insert(1, 0, "bbbb");
    net.edit_insert(2, 0, "cccc");
    assert!(net.run_until_quiescent(10_000));
    let text = net.replica(0).text();
    assert!(text.contains("aaaa"), "run a interleaved: {text}");
    assert!(text.contains("bbbb"), "run b interleaved: {text}");
    assert!(text.contains("cccc"), "run c interleaved: {text}");
}

#[test]
fn late_joiner_catches_up_via_anti_entropy() {
    let mut a = Replica::new("a");
    let mut b = Replica::new("b");
    for i in 0..50 {
        let pos = (i * 7) % (a.len_chars() + 1);
        let bundle = a.insert(pos, "word ");
        b.receive(&bundle);
    }
    // c joins with nothing.
    let mut c = Replica::new("c");
    let catchup = a.bundle_since(&c.digest());
    assert!(matches!(c.receive(&catchup), ReceiveOutcome::Applied(250)));
    assert!(c.converged_with(&a));
    assert!(c.converged_with(&b));
}

#[test]
fn offline_editing_session_merges() {
    // The paper's motivating scenario: two users work offline for a long
    // time, then reconnect (§1). Here each types 500 characters.
    let mut alice = Replica::new("alice");
    let mut bob = Replica::new("bob");
    let seed = alice.insert(0, "The document starts here. ");
    bob.receive(&seed);

    let mut alice_bundles = Vec::new();
    let mut bob_bundles = Vec::new();
    for i in 0..100 {
        let ap = (i * 13) % (alice.len_chars() + 1);
        alice_bundles.push(alice.insert(ap, "alice"));
        let bp = (i * 31) % (bob.len_chars() + 1);
        bob_bundles.push(bob.insert(bp, "bobbo"));
    }
    // Reconnect: ship both queues.
    for b in &bob_bundles {
        alice.receive(b);
    }
    for a in &alice_bundles {
        bob.receive(a);
    }
    assert!(alice.converged_with(&bob));
    assert_eq!(alice.len_chars(), 26 + 500 + 500);
}
