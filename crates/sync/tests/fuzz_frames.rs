//! Time-bounded mutation fuzzing of the socket frame decoder, the
//! companion of `crates/encoding/tests/fuzz_loop.rs` one layer up the
//! stack: where that loop attacks the EGWD/EGWM codecs with raw
//! mutants, this one attacks the framing that carries them — length
//! prefixes, tag dispatch, incremental reassembly.
//!
//! `#[ignore]`-by-default: the crafted corpus in `frame_robustness.rs`
//! is the tier-1 battery; this is the open-ended nightly companion.
//!
//! ```text
//! EG_FUZZ_SECS=30 cargo test -p eg-sync --test fuzz_frames --release -- --ignored
//! ```
//!
//! Starting from valid wire images of every frame kind (hello, ping,
//! pong, sync digests, sync bundle batches), each iteration mutates one
//! image — bit flips, boundary bytes, truncation, tail garbage, splice
//! crossover, ±1 nudges — and feeds it to the decoder three ways: one
//! push, random chunks, and through the blocking `read_frame` helper.
//! Half the mutants get their outer length prefix repaired so they
//! penetrate past the framing into tag dispatch and payload decoding;
//! half of *those* also get the inner sync-message CRC repaired so they
//! reach the structural checks under the checksum. The only pass
//! criterion is no panic: every input must come back `Ok` or `Err`.

use eg_encoding::crc32;
use eg_sync::frame::{read_frame, FrameDecoder, WireFrame, FRAME_HEADER_LEN, PROTOCOL_VERSION};
use eg_sync::{DocId, Message, Replica};
use egwalker::testgen::SmallRng;
use std::time::{Duration, Instant};

/// Valid `[len][tag][body]` wire images of every frame kind.
fn corpus() -> Vec<Vec<u8>> {
    let mut frames = vec![
        WireFrame::Hello {
            proto: PROTOCOL_VERSION,
            name: "fuzz-peer".into(),
        }
        .encode(),
        WireFrame::Hello {
            proto: 0,
            name: String::new(),
        }
        .encode(),
        WireFrame::Ping(0).encode(),
        WireFrame::Ping(u64::MAX).encode(),
        WireFrame::Pong(0xDEAD_BEEF).encode(),
    ];
    for seed in [1u64, 42, 0xF00D] {
        let mut rng = SmallRng::new(seed);
        let mut a = Replica::new("fuzz-a");
        let mut b = Replica::new("fuzz-b");
        let mut bundles = Vec::new();
        for i in 0..20u64 {
            let doc = DocId(1 + i % 3);
            let at = rng.below(64);
            let r = if rng.below(2) == 0 { &mut a } else { &mut b };
            let len = r.text_doc(doc).chars().count();
            bundles.push((doc, r.insert_doc(doc, at.min(len), "xyzzy")));
        }
        frames.push(WireFrame::Sync(Message::Digest(a.digest_all())).encode());
        frames.push(WireFrame::Sync(Message::Digest(b.digest_all())).encode());
        frames.push(WireFrame::Sync(Message::Bundles(bundles)).encode());
    }
    frames.push(WireFrame::Sync(Message::Digest(Vec::new())).encode());
    frames
}

/// Applies one random mutation in place (mirrors the encoding loop's
/// mutation classes).
fn mutate(frame: &mut Vec<u8>, corpus: &[Vec<u8>], rng: &mut SmallRng) {
    match rng.below(6) {
        // Flip 1..8 random bits.
        0 => {
            for _ in 0..1 + rng.below(8) {
                if frame.is_empty() {
                    break;
                }
                let i = rng.below(frame.len());
                frame[i] ^= 1 << rng.below(8);
            }
        }
        // Overwrite a byte with a boundary value.
        1 => {
            if !frame.is_empty() {
                let i = rng.below(frame.len());
                frame[i] = [0x00, 0x7F, 0x80, 0xFF][rng.below(4)];
            }
        }
        // Truncate.
        2 => {
            let cut = rng.below(frame.len() + 1);
            frame.truncate(cut);
        }
        // Append garbage.
        3 => {
            for _ in 0..1 + rng.below(16) {
                let b = (rng.next_u64() & 0xFF) as u8;
                frame.push(b);
            }
        }
        // Splice a span from another frame (crossover).
        4 => {
            let donor = &corpus[rng.below(corpus.len())];
            if !frame.is_empty() && !donor.is_empty() {
                let at = rng.below(frame.len());
                let dlen = 1 + rng.below(donor.len().min(32));
                let dstart = rng.below(donor.len() - dlen + 1);
                let end = (at + dlen).min(frame.len());
                frame.splice(at..end, donor[dstart..dstart + dlen].iter().copied());
            }
        }
        // Nudge a byte ±1 — the classic off-by-one for length prefixes.
        _ => {
            if !frame.is_empty() {
                let i = rng.below(frame.len());
                frame[i] = frame[i].wrapping_add(if rng.below(2) == 0 { 1 } else { 0xFF });
            }
        }
    }
}

/// Rewrites the outer length prefix to match the mutated body, so the
/// mutant penetrates the framing layer.
fn fixup_len(frame: &mut [u8]) {
    if frame.len() < FRAME_HEADER_LEN {
        return;
    }
    let body = (frame.len() - FRAME_HEADER_LEN) as u32;
    frame[..FRAME_HEADER_LEN].copy_from_slice(&body.to_le_bytes());
}

/// Recomputes the trailing CRC32 of the inner sync message so the
/// mutant passes the checksum and reaches the structural validation.
fn fixup_inner_crc(frame: &mut [u8]) {
    // [4-byte len][1 tag][message..crc32]: the CRC trails the frame.
    if frame.len() < FRAME_HEADER_LEN + 1 + 4 {
        return;
    }
    let body = frame.len() - 4;
    let crc = crc32(&frame[FRAME_HEADER_LEN + 1..body]);
    frame[body..].copy_from_slice(&crc.to_le_bytes());
}

/// Runs one mutant through every decode path; panics are the only
/// failure.
fn exercise(mutant: &[u8], rng: &mut SmallRng) {
    // One-shot push.
    let mut dec = FrameDecoder::new();
    dec.push(mutant);
    while let Ok(Some(_)) = dec.next_wire_frame() {}

    // Random chunked feeding (exercises reassembly + lazy compaction).
    let mut dec = FrameDecoder::new();
    let mut rest = mutant;
    'outer: while !rest.is_empty() {
        let n = (1 + rng.below(7)).min(rest.len());
        dec.push(&rest[..n]);
        rest = &rest[n..];
        loop {
            match dec.next_wire_frame() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => break 'outer,
            }
        }
    }

    // Blocking helper over an in-memory stream.
    let mut cursor = std::io::Cursor::new(mutant);
    let mut dec = FrameDecoder::new();
    while let Ok(Some(_)) = read_frame(&mut cursor, &mut dec) {}

    // Straight body decode, skipping the framing.
    if mutant.len() > FRAME_HEADER_LEN {
        let _ = WireFrame::decode(&mutant[FRAME_HEADER_LEN..]);
    }
}

#[test]
#[ignore = "open-ended fuzz loop; run nightly / on demand with --ignored"]
fn frame_decoder_never_panics_under_mutation() {
    let secs: u64 = std::env::var("EG_FUZZ_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let seed: u64 = std::env::var("EG_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x51AC);
    let corpus = corpus();
    let mut rng = SmallRng::new(seed);
    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut iterations = 0u64;
    while Instant::now() < deadline {
        for _ in 0..512 {
            let mut mutant = corpus[rng.below(corpus.len())].clone();
            for _ in 0..1 + rng.below(3) {
                mutate(&mut mutant, &corpus, &mut rng);
            }
            if rng.below(2) == 0 {
                fixup_len(&mut mutant);
                if rng.below(2) == 0 {
                    fixup_inner_crc(&mut mutant);
                }
            }
            exercise(&mutant, &mut rng);
            iterations += 1;
        }
    }
    eprintln!("fuzz_frames: {iterations} mutants survived (seed {seed}, {secs}s)");
}
