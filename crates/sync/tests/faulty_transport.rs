//! Tier-1 convergence sweeps under in-process fault injection.
//!
//! [`FaultyTransport`] wraps the in-memory transport with a seeded
//! schedule of drops, duplicates, corruption, extra delay, and timed
//! partitions. Every schedule here must end in convergence: anti-entropy
//! digest rounds repair losses, the CRC layer turns corruption into
//! ordinary loss, and partitions in [`FaultSpec::random`] all close
//! before the horizon, after which repair is guaranteed.

use eg_sync::{
    FaultSpec, FaultyTransport, InMemoryTransport, LinkConfig, NetworkSim, PartitionWindow,
};

const NAMES: [&str; 4] = ["n0", "n1", "n2", "n3"];

fn faulty_sim(spec: FaultSpec, seed: u64) -> NetworkSim {
    let inner = InMemoryTransport::new(LinkConfig::default(), seed);
    NetworkSim::builder(&NAMES, seed)
        .transport(Box::new(FaultyTransport::new(inner, spec, seed)))
        .build()
}

/// A deterministic concurrent edit script touching every node.
fn drive_edits(net: &mut NetworkSim, rounds: usize) {
    for r in 0..rounds {
        for who in 0..NAMES.len() {
            let len = net.replica(who).len_chars();
            net.edit_insert(who, (r * 7 + who * 3) % (len + 1), "ab ");
            if r % 3 == 2 {
                let len = net.replica(who).len_chars();
                if len > 2 {
                    net.edit_delete(who, (r + who) % (len - 1), 1);
                }
            }
        }
        net.tick();
    }
}

#[test]
fn every_seeded_fault_schedule_converges() {
    let mut exercised = 0usize;
    for seed in [1u64, 2, 3, 5, 8, 13, 21, 34] {
        let spec = FaultSpec::random(seed, NAMES.len(), 400);
        let mut net = faulty_sim(spec, seed);
        drive_edits(&mut net, 12);
        assert!(
            net.run_until_quiescent(200_000),
            "seed {seed} failed to converge"
        );
        assert!(net.all_converged(), "seed {seed} not converged");
        let s = net.stats();
        exercised += s.dropped + s.corrupt_dropped;
    }
    // The sweep as a whole must actually have injected faults — a
    // schedule generator that degenerated to no-ops would pass
    // convergence vacuously.
    assert!(exercised > 0, "no faults were exercised across the sweep");
}

#[test]
fn corruption_is_detected_and_repaired() {
    let spec = FaultSpec {
        corrupt_per_mille: 300,
        ..FaultSpec::default()
    };
    let mut net = faulty_sim(spec, 7);
    drive_edits(&mut net, 10);
    assert!(net.run_until_quiescent(200_000));
    // With a 30% corruption rate some payloads must have been mangled,
    // detected by the decode layer, and repaired by anti-entropy.
    assert!(net.stats().corrupt_dropped > 0, "no corruption exercised");
    assert!(net.all_converged());
}

#[test]
fn timed_partition_heals_and_converges() {
    let spec = FaultSpec {
        partitions: vec![PartitionWindow {
            from: 2,
            until: 60,
            side_a: vec![0, 1],
        }],
        ..FaultSpec::default()
    };
    let mut net = faulty_sim(spec, 11);
    // Edits on both sides of the partition while it is up.
    drive_edits(&mut net, 8);
    assert!(net.run_until_quiescent(100_000));
    assert!(net.all_converged());
    let s = net.stats();
    // Cross-partition sends during the window were blackholed.
    assert!(s.dropped > 0, "partition never blocked anything");
}

#[test]
fn heavy_loss_with_duplicates_converges() {
    let spec = FaultSpec {
        drop_per_mille: 250,
        duplicate_per_mille: 250,
        delay_per_mille: 200,
        max_extra_delay: 9,
        ..FaultSpec::default()
    };
    let mut net = faulty_sim(spec, 23);
    drive_edits(&mut net, 15);
    assert!(net.run_until_quiescent(300_000));
    assert!(net.all_converged());
    let text = net.replica(0).text();
    for i in 1..NAMES.len() {
        assert_eq!(net.replica(i).text(), text);
    }
}
