//! Crafted-corpus regression tests for the socket frame decoder.
//!
//! Each test pins one adversarial stream shape that a real socket can
//! produce — truncated length prefixes, oversized announcements,
//! EOF mid-frame, and payloads that pass the inner CRC but are
//! structurally broken. The nightly mutation loop
//! (`tests/fuzz_frames.rs`) hunts new shapes; anything it ever finds
//! gets pinned here.

use eg_encoding::crc32;
use eg_sync::frame::{
    read_frame, FrameDecoder, FrameError, WireFrame, FRAME_HEADER_LEN, MAX_FRAME_LEN,
    PROTOCOL_VERSION, TAG_HELLO, TAG_PING, TAG_SYNC,
};
use eg_sync::{DocId, Message, Replica};
use std::io::Cursor;

/// A valid digest message from a non-trivial replica.
fn digest_message() -> Message {
    let mut r = Replica::new("corpus");
    r.insert_doc(DocId(1), 0, "hello");
    r.insert_doc(DocId(2), 0, "world");
    Message::Digest(r.digest_all())
}

/// Recomputes the CRC32 trailer of an inner sync-message encoding so a
/// structural mutation still passes the checksum.
fn fixup_message_crc(bytes: &mut [u8]) {
    let Some(body) = bytes.len().checked_sub(4) else {
        return;
    };
    let crc = crc32(&bytes[..body]);
    bytes[body..].copy_from_slice(&crc.to_le_bytes());
}

/// Frames raw body bytes as `[len][body...]`, bypassing `WireFrame` so
/// tests can put anything on the wire.
fn raw_frame(body: &[u8]) -> Vec<u8> {
    let mut out = (body.len() as u32).to_le_bytes().to_vec();
    out.extend_from_slice(body);
    out
}

// --- truncated length prefix -------------------------------------------

#[test]
fn truncated_length_prefix_is_not_a_frame() {
    for keep in 0..FRAME_HEADER_LEN {
        let wire = WireFrame::Ping(1).encode();
        let mut dec = FrameDecoder::new();
        dec.push(&wire[..keep]);
        assert_eq!(dec.next_frame().unwrap(), None, "prefix of {keep} bytes");
        assert_eq!(dec.buffered(), keep);
    }
}

#[test]
fn eof_inside_length_prefix_is_an_error() {
    let wire = WireFrame::Ping(1).encode();
    for keep in 1..FRAME_HEADER_LEN {
        let mut cursor = Cursor::new(wire[..keep].to_vec());
        let mut dec = FrameDecoder::new();
        let err = read_frame(&mut cursor, &mut dec).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }
}

// --- oversized length ---------------------------------------------------

#[test]
fn oversized_length_is_rejected_without_allocation() {
    let mut dec = FrameDecoder::new();
    dec.push(&u32::MAX.to_le_bytes());
    match dec.next_frame() {
        Err(FrameError::Oversize { announced, max }) => {
            assert_eq!(announced, u64::from(u32::MAX));
            assert_eq!(max, MAX_FRAME_LEN);
        }
        other => panic!("expected Oversize, got {other:?}"),
    }
    // Poisoned for good: even valid bytes afterwards stay dead.
    dec.push(&WireFrame::Ping(1).encode());
    assert!(dec.next_frame().is_err());
}

#[test]
fn boundary_lengths_cut_exactly_at_max() {
    let max = 32;
    // Exactly max: accepted.
    let mut dec = FrameDecoder::with_max_frame(max);
    let mut body = vec![TAG_PING];
    body.resize(max, 0);
    dec.push(&raw_frame(&body));
    assert_eq!(dec.next_frame().unwrap().unwrap().len(), max);
    // One past max: refused.
    let mut dec = FrameDecoder::with_max_frame(max);
    body.push(0);
    dec.push(&raw_frame(&body));
    assert!(matches!(
        dec.next_frame(),
        Err(FrameError::Oversize { announced, .. }) if announced == max as u64 + 1
    ));
}

// --- EOF mid-frame ------------------------------------------------------

#[test]
fn eof_mid_body_is_an_error_at_every_cut() {
    let wire = WireFrame::Sync(digest_message()).encode();
    for cut in FRAME_HEADER_LEN..wire.len() {
        let mut cursor = Cursor::new(wire[..cut].to_vec());
        let mut dec = FrameDecoder::new();
        let err = read_frame(&mut cursor, &mut dec).unwrap_err();
        assert_eq!(
            err.kind(),
            std::io::ErrorKind::UnexpectedEof,
            "cut at {cut}"
        );
    }
}

#[test]
fn eof_between_frames_is_clean() {
    let wire = WireFrame::Sync(digest_message()).encode();
    let mut cursor = Cursor::new(wire);
    let mut dec = FrameDecoder::new();
    assert!(read_frame(&mut cursor, &mut dec).unwrap().is_some());
    assert!(read_frame(&mut cursor, &mut dec).unwrap().is_none());
}

// --- CRC-valid but structurally bad ------------------------------------

#[test]
fn crc_valid_truncated_digest_is_refused() {
    // Chop bytes off the end of a valid digest encoding, then repair the
    // CRC trailer: the checksum passes but the structure is short.
    let full = digest_message().encode();
    for chop in 1..8.min(full.len().saturating_sub(8)) {
        let mut inner = full[..full.len() - 4 - chop].to_vec();
        inner.extend_from_slice(&[0u8; 4]);
        fixup_message_crc(&mut inner);
        let mut body = vec![TAG_SYNC];
        body.extend_from_slice(&inner);
        let mut dec = FrameDecoder::new();
        dec.push(&raw_frame(&body));
        let got = dec.next_wire_frame();
        assert!(
            matches!(got, Err(FrameError::Payload(_))),
            "chop {chop}: {got:?}"
        );
    }
}

#[test]
fn crc_valid_interior_mutation_never_panics() {
    // Flip each interior byte of a valid digest in turn, repair the CRC,
    // and decode. Most flips are structural errors; a few may survive as
    // different-but-valid digests. Either way: no panic, and a wrapped
    // frame either errors or yields a Sync frame.
    let full = digest_message().encode();
    for i in 1..full.len() - 4 {
        let mut inner = full.clone();
        inner[i] ^= 0x55;
        fixup_message_crc(&mut inner);
        let mut body = vec![TAG_SYNC];
        body.extend_from_slice(&inner);
        let mut dec = FrameDecoder::new();
        dec.push(&raw_frame(&body));
        match dec.next_wire_frame() {
            Ok(Some(WireFrame::Sync(_))) | Err(_) => {}
            other => panic!("byte {i}: unexpected {other:?}"),
        }
    }
}

#[test]
fn sync_frame_with_trailing_garbage_after_crc_is_refused() {
    let mut inner = digest_message().encode();
    inner.extend_from_slice(b"tail");
    let mut body = vec![TAG_SYNC];
    body.extend_from_slice(&inner);
    assert!(matches!(
        WireFrame::decode(&body),
        Err(FrameError::Payload(_))
    ));
}

// --- other crafted shapes ----------------------------------------------

#[test]
fn unknown_tag_is_refused() {
    for tag in [0u8, 5, 9, 0x7F, 0xFF] {
        let body = [tag, 0, 0];
        assert!(
            matches!(WireFrame::decode(&body), Err(FrameError::BadTag(t)) if t == tag),
            "tag {tag}"
        );
    }
}

#[test]
fn hello_with_trailing_bytes_is_refused() {
    let mut wire = WireFrame::Hello {
        proto: PROTOCOL_VERSION,
        name: "n".into(),
    }
    .encode();
    wire.push(0xAB);
    // Re-frame with the corrected length so the extra byte is inside the
    // body rather than a second partial frame.
    let body = &wire[FRAME_HEADER_LEN..];
    assert!(WireFrame::decode(body).is_err());
}

#[test]
fn hello_name_length_cannot_overallocate() {
    // A name length announcing ~4GiB must be refused by the bound check,
    // not by an allocation attempt.
    let mut body = vec![TAG_HELLO];
    body.push(1); // proto = 1 (varint)
    body.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0x0F]); // huge varint
    assert!(matches!(
        WireFrame::decode(&body),
        Err(FrameError::Payload(_))
    ));
}

#[test]
fn coalesced_frames_then_poison_then_stays_poisoned() {
    let mut dec = FrameDecoder::new();
    dec.push(&WireFrame::Ping(1).encode());
    dec.push(&WireFrame::Pong(1).encode());
    dec.push(&0u32.to_le_bytes()); // empty frame: poison
    assert_eq!(dec.next_wire_frame().unwrap(), Some(WireFrame::Ping(1)));
    assert_eq!(dec.next_wire_frame().unwrap(), Some(WireFrame::Pong(1)));
    assert!(matches!(dec.next_frame(), Err(FrameError::Empty)));
    dec.push(&WireFrame::Ping(2).encode());
    assert!(dec.next_frame().is_err(), "poison must persist");
}

#[test]
fn every_prefix_of_a_valid_stream_is_either_pending_or_complete() {
    // Decoding any prefix of a well-formed stream never errors: it
    // yields the complete frames it holds and waits for the rest.
    let mut r = Replica::new("p");
    let b = r.insert_doc(DocId(7), 0, "prefix-stability");
    let frames = [
        WireFrame::Hello {
            proto: PROTOCOL_VERSION,
            name: "p".into(),
        },
        WireFrame::Sync(Message::Bundles(vec![(DocId(7), b)])),
        WireFrame::Ping(3),
    ];
    let mut wire = Vec::new();
    for f in &frames {
        wire.extend_from_slice(&f.encode());
    }
    for cut in 0..=wire.len() {
        let mut dec = FrameDecoder::new();
        dec.push(&wire[..cut]);
        let mut seen = 0;
        loop {
            match dec.next_wire_frame() {
                Ok(Some(f)) => {
                    assert_eq!(f, frames[seen], "cut {cut}");
                    seen += 1;
                }
                Ok(None) => break,
                Err(e) => panic!("cut {cut}: {e}"),
            }
        }
        if cut == wire.len() {
            assert_eq!(seen, frames.len());
        }
    }
}
