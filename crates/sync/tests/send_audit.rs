//! Compile-time thread-safety audit for the sync-engine types the
//! multi-core server host partitions across worker threads. `Replica` is
//! the unit of shard ownership — each `eg-server` worker owns one and
//! moves it onto its thread at spawn — and `Message` frames cross threads
//! during the work-stealing encode rounds. A regression here (an `Rc` in
//! the pending buffer, a thread-bound cache) breaks the server host at a
//! distance; fail it in this crate instead.

use eg_sync::{Message, Replica};

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

#[test]
fn replica_is_send() {
    // `Send` is what shard ownership needs (the replica moves onto its
    // worker thread once and never migrates).
    assert_send::<Replica>();
}

#[test]
fn messages_are_send_and_sync() {
    // Extracted bundles and digests are shared behind `Arc` during
    // anti-entropy fan-out, so they need `Sync` too.
    assert_send::<Message>();
    assert_sync::<Message>();
}
