//! Convergence across topologies and document shards: star vs mesh,
//! partition/heal, and batched anti-entropy behaviour.

use eg_sync::{DocId, LinkConfig, NetworkSim, SimBuilder};
use proptest::prelude::*;

fn names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("node{i}")).collect()
}

fn builder(n: usize, seed: u64) -> SimBuilder {
    let names = names(n);
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    NetworkSim::builder(&refs, seed)
}

#[test]
fn star_converges_through_the_hub() {
    let mut net = builder(5, 21).star().build();
    net.edit_insert(1, 0, "from-1 ");
    net.edit_insert(3, 0, "from-3 ");
    net.edit_insert(0, 0, "from-hub ");
    assert!(net.run_until_quiescent(10_000));
    assert!(net.all_converged());
    let text = net.replica(4).text();
    assert!(text.contains("from-1") && text.contains("from-3") && text.contains("from-hub"));
}

#[test]
fn star_leaves_never_message_each_other() {
    let mut net = builder(6, 33).star().flush_every(2).build();
    for leaf in 1..6 {
        net.edit_insert(leaf, 0, "leafword ");
    }
    assert!(net.run_until_quiescent(10_000));
    assert!(net.all_converged());
    // O(n) links: every message touches the hub, so message count stays
    // far below a mesh's fan-out for the same edits.
    let star_sent = net.stats().sent;
    let mut mesh = builder(6, 33).flush_every(2).build();
    for leaf in 1..6 {
        mesh.edit_insert(leaf, 0, "leafword ");
    }
    assert!(mesh.run_until_quiescent(10_000));
    assert!(
        star_sent < mesh.stats().sent,
        "star {} vs mesh {}",
        star_sent,
        mesh.stats().sent
    );
}

#[test]
fn lossy_star_repaired_by_digest_exchange() {
    let link = LinkConfig {
        min_delay: 1,
        max_delay: 6,
        drop_per_mille: 350,
    };
    let mut net = builder(8, 77).star().flush_every(3).link(link).build();
    for i in 0..24 {
        let who = i % 8;
        let len = net.replica(who).len_chars();
        net.edit_insert(who, len / 2, "xy");
        net.tick();
    }
    assert!(net.run_until_quiescent(50_000));
    let s = net.stats();
    assert!(s.dropped > 0, "seed should exercise loss");
    assert!(s.syncs > 0, "loss must force digest repair");
    assert!(s.digest_bytes > 0);
    assert!(net.all_converged());
}

#[test]
fn mesh_partition_heal_converges() {
    let mut net = builder(6, 9).mesh().flush_every(2).build();
    net.edit_insert(0, 0, "base ");
    assert!(net.run_until_quiescent(10_000));

    net.partition(&[&[0, 1, 2], &[3, 4, 5]]);
    net.edit_insert(1, 0, "left ");
    net.edit_insert(4, 0, "right ");
    assert!(net.run_until_quiescent(10_000));
    // Each side converged internally, but the sides diverged.
    assert_eq!(net.replica(0).text(), net.replica(2).text());
    assert_eq!(net.replica(3).text(), net.replica(5).text());
    assert_ne!(net.replica(0).text(), net.replica(3).text());

    net.heal();
    assert!(net.run_until_quiescent(10_000));
    let text = net.replica(0).text();
    assert!(text.contains("left ") && text.contains("right "));
    for i in 1..6 {
        assert_eq!(net.replica(i).text(), text);
    }
}

#[test]
fn star_partition_isolates_hubless_side_until_heal() {
    let mut net = builder(5, 14).star().build();
    net.edit_insert(0, 0, "base ");
    assert!(net.run_until_quiescent(10_000));

    // Hub stays left; leaves 3 and 4 are cut off — and, in a star, cut
    // off from each other too (their only link was the hub).
    net.partition(&[&[0, 1, 2], &[3, 4]]);
    net.edit_insert(1, 0, "left ");
    net.edit_insert(3, 0, "three ");
    net.edit_insert(4, 0, "four ");
    assert!(net.run_until_quiescent(10_000));
    assert_eq!(net.replica(0).text(), net.replica(2).text());
    assert!(net.replica(0).text().contains("left "));
    // The hubless leaves kept only their own edits.
    assert!(net.replica(3).text().contains("three "));
    assert!(!net.replica(3).text().contains("four "));
    assert!(!net.replica(4).text().contains("three "));

    net.heal();
    assert!(net.run_until_quiescent(10_000));
    assert!(net.all_converged());
    let text = net.replica(0).text();
    for word in ["base ", "left ", "three ", "four "] {
        assert!(text.contains(word), "{word:?} missing from {text:?}");
    }
}

#[test]
fn mesh_noncontiguous_partition_group_repairs_losses() {
    // Regression: partition groups can be arbitrary index subsets, not
    // contiguous ring segments. Nodes 0 and 5 share a group; digest
    // probes must still be scheduled between them (a plain index-ring
    // schedule would only ever probe across the partition boundary,
    // leaving their losses unrepairable).
    let link = LinkConfig {
        min_delay: 1,
        max_delay: 4,
        drop_per_mille: 450,
    };
    let mut net = builder(8, 13).mesh().link(link).build();
    net.partition(&[&[0, 5], &[1, 2, 3, 4, 6, 7]]);
    for _ in 0..10 {
        net.edit_insert(0, 0, "a");
        net.edit_insert(5, 0, "b");
        net.edit_insert(1, 0, "c");
    }
    assert!(net.run_until_quiescent(20_000), "losses never repaired");
    assert!(net.all_converged());
    assert_eq!(net.replica(0).text(), net.replica(5).text());
    assert_eq!(net.replica(0).len_chars(), 20);
    assert!(net.stats().dropped > 0, "seed should exercise loss");
}

#[test]
fn sharded_docs_sync_with_scoped_digests() {
    let mut net = builder(4, 55).star().flush_every(2).build();
    // Different nodes write different shards; one shard is contested.
    net.edit_insert_doc(1, DocId(10), 0, "ten-from-1 ");
    net.edit_insert_doc(2, DocId(20), 0, "twenty-from-2 ");
    net.edit_insert_doc(3, DocId(10), 0, "ten-from-3 ");
    assert!(net.run_until_quiescent(10_000));
    assert!(net.all_converged());
    for i in 0..4 {
        let r = net.replica(i);
        assert_eq!(r.doc_ids(), vec![DocId(10), DocId(20)]);
        assert!(r.text_doc(DocId(10)).contains("ten-from-1"));
        assert!(r.text_doc(DocId(10)).contains("ten-from-3"));
        assert_eq!(r.text_doc(DocId(20)), "twenty-from-2 ");
        // Digests are scoped per shard and mutually disjoint.
        let d10 = r.digest_doc(DocId(10));
        let d20 = r.digest_doc(DocId(20));
        assert!(!d10.is_empty() && !d20.is_empty());
        assert!(d10.iter().all(|id| !d20.contains(id)));
    }
}

#[test]
fn late_joining_shard_backfills_over_digest() {
    // Node 3 only ever hears about doc 7 through anti-entropy: the edits
    // happen while it is partitioned away.
    let mut net = builder(4, 91).mesh().flush_every(2).build();
    net.partition(&[&[0, 1, 2], &[3]]);
    net.edit_insert_doc(0, DocId(7), 0, "written while 3 was away");
    assert!(net.run_until_quiescent(10_000));
    assert_eq!(net.replica(3).text_doc(DocId(7)), "");

    net.heal();
    assert!(net.run_until_quiescent(10_000));
    assert_eq!(
        net.replica(3).text_doc(DocId(7)),
        "written while 3 was away"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Star and mesh reach the same converged state for the same edits
    /// (topology changes bandwidth, never semantics).
    #[test]
    fn star_and_mesh_agree_on_content(
        seed in any::<u64>(),
        edits in prop::collection::vec((0usize..5, any::<u16>(), "[a-z]{1,5}"), 1..25),
    ) {
        let run = |star: bool| {
            let b = builder(5, seed);
            let b = if star { b.star() } else { b.mesh() };
            let mut net = b.flush_every(2).build();
            for (who, at, text) in &edits {
                let len = net.replica(*who).len_chars();
                net.edit_insert(*who, *at as usize % (len + 1), text);
                net.tick();
            }
            prop_assert!(net.run_until_quiescent(100_000));
            Ok(net.replica(0).text())
        };
        let star_text = run(true)?;
        let mesh_text = run(false)?;
        prop_assert_eq!(star_text.len(), mesh_text.len());
    }

    /// Partition/heal converges under both topologies, any split of the
    /// leaves, with batching enabled.
    #[test]
    fn partition_heal_converges_on_both_topologies(
        seed in any::<u64>(),
        star in proptest::bool::ANY,
        cut in 1usize..5,
        during in prop::collection::vec((0usize..6, any::<u16>(), "[a-z]{1,4}"), 1..15),
    ) {
        let b = builder(6, seed);
        let b = if star { b.star() } else { b.mesh() };
        let mut net = b.flush_every(3).build();
        net.edit_insert(0, 0, "base ");
        prop_assert!(net.run_until_quiescent(100_000));

        let all: Vec<usize> = (0..6).collect();
        let (left, right) = all.split_at(cut);
        net.partition(&[left, right]);
        for (who, at, text) in &during {
            let len = net.replica(*who).len_chars();
            net.edit_insert(*who, *at as usize % (len + 1), text);
        }
        prop_assert!(net.run_until_quiescent(100_000));

        net.heal();
        prop_assert!(net.run_until_quiescent(100_000));
        prop_assert!(net.all_converged());
        let expected = "base ".len() + during.iter().map(|(_, _, t)| t.len()).sum::<usize>();
        prop_assert_eq!(net.replica(0).len_chars(), expected);
    }
}
