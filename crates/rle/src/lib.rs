//! Run-length-encoding primitives for the Eg-walker suite.
//!
//! Everything in an editing history is bursty: people type runs of
//! consecutive characters, delete runs of consecutive characters, and events
//! are usually parented on their immediate predecessor. Every data structure
//! in this repository therefore stores *spans* (runs) rather than individual
//! items, and this crate defines the vocabulary those structures share:
//!
//! * [`HasLength`], [`SplitableSpan`] and [`MergableSpan`] — the span traits.
//! * [`DTRange`] — a half-open `usize` range with span semantics.
//! * [`RleRun`] — a generic `(value, length)` run.
//! * [`KVPair`] — a span positioned at a key (used for sparse RLE maps).
//! * [`RleVec`] — an append-optimised vector of mergeable spans with
//!   binary-searchable keys.
//! * [`IntervalMap`] — a mutable RLE map from `usize` ranges to copyable
//!   values, used for the walker's ID → record indexes.
//! * [`CharWidthIndex`] — an RLE char-index → byte-offset map for
//!   append-only UTF-8 buffers (the oplog's content arena).

mod charindex;
mod intervalmap;
mod range;
mod rlevec;
mod traits;

pub use charindex::CharWidthIndex;
pub use intervalmap::IntervalMap;
pub use range::DTRange;
pub use rlevec::{KVPair, RleVec};
pub use traits::{HasLength, HasRleKey, MergableSpan, RleRun, SplitableSpan};

/// Splits `span` at `at`, returning the two halves `([0, at), [at, len))`.
///
/// This is a convenience wrapper around [`SplitableSpan::truncate`] for
/// callers that want both halves by value.
pub fn split_span<S: SplitableSpan + HasLength>(mut span: S, at: usize) -> (S, S) {
    let rem = span.truncate(at);
    (span, rem)
}

/// Appends `b` to `a` if the two spans merge, returning `b` back otherwise.
pub fn try_append<S: MergableSpan>(a: &mut S, b: S) -> Option<S> {
    if a.can_append(&b) {
        a.append(b);
        None
    } else {
        Some(b)
    }
}

/// Merges an iterator of spans into a vector, run-length encoding adjacent
/// mergeable items.
///
/// # Examples
///
/// ```
/// use eg_rle::{merge_spans, DTRange};
/// let spans = [DTRange::from(0..2), DTRange::from(2..5), DTRange::from(9..10)];
/// assert_eq!(
///     merge_spans(spans),
///     vec![DTRange::from(0..5), DTRange::from(9..10)]
/// );
/// ```
pub fn merge_spans<S: MergableSpan, I: IntoIterator<Item = S>>(iter: I) -> Vec<S> {
    let mut out: Vec<S> = Vec::new();
    for span in iter {
        if let Some(last) = out.last_mut() {
            if last.can_append(&span) {
                last.append(span);
                continue;
            }
        }
        out.push(span);
    }
    out
}
