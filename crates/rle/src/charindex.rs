//! [`CharWidthIndex`]: a run-length-encoded char-index → byte-offset map
//! for an append-only UTF-8 buffer.
//!
//! The oplog's content arena stores every inserted character in one UTF-8
//! `String`, but operations address content by **character** index (the
//! index space of editing events). Translating a char range to a byte
//! range with `char_indices` would be O(buffer); this index exploits the
//! run-structure of real text — long stretches of characters share one
//! UTF-8 encoded width (ASCII runs of width 1, accented-Latin runs of
//! width 2, CJK runs of width 3, emoji runs of width 4) — so the mapping
//! compresses to a handful of `(char_start, byte_start, width)` runs and
//! a lookup is a binary search plus one multiplication.

/// One run of characters sharing a UTF-8 encoded width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WidthRun {
    /// First character index of the run.
    char_start: usize,
    /// Byte offset of that character in the buffer.
    byte_start: usize,
    /// Bytes per character throughout the run (1..=4).
    width: u8,
}

/// An RLE char-index → byte-offset map for an append-only UTF-8 buffer.
///
/// # Examples
///
/// ```
/// use eg_rle::CharWidthIndex;
/// let mut idx = CharWidthIndex::new();
/// idx.append_str("ab");
/// idx.append_str("é→"); // 2-byte, then 3-byte
/// assert_eq!(idx.byte_of_char(0), 0);
/// assert_eq!(idx.byte_of_char(2), 2); // 'é' starts after "ab"
/// assert_eq!(idx.byte_of_char(3), 4); // '→' starts after 'é'
/// assert_eq!(idx.byte_range(1..4), 1..7);
/// assert_eq!(idx.len_chars(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CharWidthIndex {
    runs: Vec<WidthRun>,
    len_chars: usize,
    len_bytes: usize,
}

impl CharWidthIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// The number of characters indexed.
    pub fn len_chars(&self) -> usize {
        self.len_chars
    }

    /// The number of bytes covered.
    pub fn len_bytes(&self) -> usize {
        self.len_bytes
    }

    /// Returns `true` if nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len_chars == 0
    }

    /// The number of internal runs (diagnostics: real text should compress
    /// to far fewer runs than characters).
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Records one appended character of encoded width `width` (1..=4).
    pub fn append_char_width(&mut self, width: usize) {
        debug_assert!((1..=4).contains(&width));
        if let Some(last) = self.runs.last_mut() {
            if usize::from(last.width) == width {
                self.len_chars += 1;
                self.len_bytes += width;
                return;
            }
        }
        self.runs.push(WidthRun {
            char_start: self.len_chars,
            byte_start: self.len_bytes,
            width: width as u8,
        });
        self.len_chars += 1;
        self.len_bytes += width;
    }

    /// Records the characters of `s`, appended to the buffer in order.
    pub fn append_str(&mut self, s: &str) {
        for c in s.chars() {
            self.append_char_width(c.len_utf8());
        }
    }

    /// The byte offset of character `char_idx` (or of the buffer end when
    /// `char_idx == len_chars`).
    ///
    /// # Panics
    ///
    /// Panics if `char_idx > self.len_chars()`.
    pub fn byte_of_char(&self, char_idx: usize) -> usize {
        assert!(char_idx <= self.len_chars, "char index out of bounds");
        if char_idx == self.len_chars {
            return self.len_bytes;
        }
        // Last run with char_start <= char_idx.
        let i = self
            .runs
            .partition_point(|r| r.char_start <= char_idx)
            .checked_sub(1)
            .expect("non-empty index has a first run at 0");
        let r = self.runs[i];
        r.byte_start + (char_idx - r.char_start) * usize::from(r.width)
    }

    /// The byte range covering the character range.
    pub fn byte_range(&self, chars: std::ops::Range<usize>) -> std::ops::Range<usize> {
        self.byte_of_char(chars.start)..self.byte_of_char(chars.end)
    }

    /// Removes all runs.
    pub fn clear(&mut self) {
        self.runs.clear();
        self.len_chars = 0;
        self.len_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let idx = CharWidthIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.byte_of_char(0), 0);
        assert_eq!(idx.byte_range(0..0), 0..0);
    }

    #[test]
    fn ascii_is_one_run() {
        let mut idx = CharWidthIndex::new();
        idx.append_str("hello world");
        idx.append_str("more ascii");
        assert_eq!(idx.num_runs(), 1);
        assert_eq!(idx.len_chars(), 21);
        assert_eq!(idx.len_bytes(), 21);
        assert_eq!(idx.byte_of_char(7), 7);
    }

    #[test]
    fn mixed_widths_match_char_indices() {
        let text = "abc déf → 日本語 🦀🦀 end";
        let mut idx = CharWidthIndex::new();
        idx.append_str(text);
        let byte_offsets: Vec<usize> = text
            .char_indices()
            .map(|(b, _)| b)
            .chain(std::iter::once(text.len()))
            .collect();
        for (ci, &b) in byte_offsets.iter().enumerate() {
            assert_eq!(idx.byte_of_char(ci), b, "char {ci}");
        }
        assert_eq!(idx.len_bytes(), text.len());
        assert_eq!(idx.len_chars(), text.chars().count());
        // Runs compress: far fewer runs than characters.
        assert!(idx.num_runs() < text.chars().count() / 2);
    }

    #[test]
    fn incremental_appends_equal_bulk() {
        let text = "aé→🦀xyz→→é";
        let mut bulk = CharWidthIndex::new();
        bulk.append_str(text);
        let mut inc = CharWidthIndex::new();
        for c in text.chars() {
            inc.append_char_width(c.len_utf8());
        }
        assert_eq!(bulk, inc);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let mut idx = CharWidthIndex::new();
        idx.append_str("ab");
        idx.byte_of_char(3);
    }
}
