//! [`RleVec`]: an append-optimised vector of mergeable spans, and
//! [`KVPair`]: a span positioned at an explicit key.

use crate::{HasLength, HasRleKey, MergableSpan, SplitableSpan};

/// A span paired with the key (position on the RLE axis) where it starts.
///
/// `KVPair(k, v)` covers keys `[k, k + v.len())`. This is the standard way to
/// store *sparse* RLE data — for example "delete event 100 targeted character
/// votes 57..60" is `KVPair(100, target_run)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KVPair<V>(pub usize, pub V);

impl<V: HasLength> KVPair<V> {
    /// The key range covered by this pair.
    pub fn range(&self) -> crate::DTRange {
        (self.0..self.0 + self.1.len()).into()
    }

    /// The key one past the end of this pair.
    pub fn end(&self) -> usize {
        self.0 + self.1.len()
    }
}

impl<V: HasLength> HasLength for KVPair<V> {
    fn len(&self) -> usize {
        self.1.len()
    }
}

impl<V> HasRleKey for KVPair<V> {
    fn rle_key(&self) -> usize {
        self.0
    }
}

impl<V: SplitableSpan + HasLength> SplitableSpan for KVPair<V> {
    fn truncate(&mut self, at: usize) -> Self {
        let rem = self.1.truncate(at);
        KVPair(self.0 + at, rem)
    }
}

impl<V: MergableSpan + HasLength> MergableSpan for KVPair<V> {
    fn can_append(&self, other: &Self) -> bool {
        self.end() == other.0 && self.1.can_append(&other.1)
    }

    fn append(&mut self, other: Self) {
        self.1.append(other.1);
    }
}

// `HasRleKey` for pairs whose value has no key of its own.
impl<V> KVPair<V> {
    /// The key where this pair starts.
    pub fn key(&self) -> usize {
        self.0
    }
}

/// An append-optimised vector of spans, run-length encoding on push.
///
/// Spans are kept sorted by their RLE key (callers append in key order).
/// [`RleVec::push`] merges the new span into the final entry when possible,
/// so bursty input collapses to very few entries. Lookup by key is a binary
/// search.
///
/// # Examples
///
/// ```
/// use eg_rle::{DTRange, RleVec};
/// let mut v: RleVec<DTRange> = RleVec::new();
/// v.push((0..5).into());
/// v.push((5..9).into()); // merges
/// v.push((12..13).into());
/// assert_eq!(v.num_entries(), 2);
/// let (entry, offset) = v.find_with_offset(7).unwrap();
/// assert_eq!(*entry, (0..9).into());
/// assert_eq!(offset, 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RleVec<T>(pub Vec<T>);

impl<T> Default for RleVec<T> {
    fn default() -> Self {
        Self(Vec::new())
    }
}

impl<T> RleVec<T> {
    /// Creates an empty vector.
    pub const fn new() -> Self {
        Self(Vec::new())
    }

    /// The number of RLE entries (not items) stored.
    pub fn num_entries(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if no spans are stored.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over the stored entries.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.0.iter()
    }

    /// The final entry, if any.
    pub fn last(&self) -> Option<&T> {
        self.0.last()
    }
}

impl<T: HasLength> RleVec<T> {
    /// The total number of items across all entries.
    pub fn item_len(&self) -> usize {
        self.0.iter().map(|e| e.len()).sum()
    }
}

impl<T: MergableSpan> RleVec<T> {
    /// Appends a span, merging it into the last entry when possible.
    ///
    /// Returns `true` if the span was merged rather than appended.
    pub fn push(&mut self, span: T) -> bool {
        if let Some(last) = self.0.last_mut() {
            if last.can_append(&span) {
                last.append(span);
                return true;
            }
        }
        self.0.push(span);
        false
    }
}

impl<T: HasRleKey + HasLength> RleVec<T> {
    /// Finds the index of the entry containing `key`, if any.
    pub fn find_index(&self, key: usize) -> Result<usize, usize> {
        self.0.binary_search_by(|e| {
            let start = e.rle_key();
            if key < start {
                std::cmp::Ordering::Greater
            } else if key >= start + e.len() {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        })
    }

    /// Returns the entry containing `key`, if any.
    pub fn find(&self, key: usize) -> Option<&T> {
        self.find_index(key).ok().map(|idx| &self.0[idx])
    }

    /// Returns the entry containing `key` along with `key`'s offset within
    /// that entry.
    pub fn find_with_offset(&self, key: usize) -> Option<(&T, usize)> {
        self.find_index(key).ok().map(|idx| {
            let e = &self.0[idx];
            (e, key - e.rle_key())
        })
    }

    /// Returns `true` if `key` falls inside a stored span.
    pub fn contains_key(&self, key: usize) -> bool {
        self.find_index(key).is_ok()
    }

    /// The key one past the highest stored key, or 0 when empty.
    pub fn end_key(&self) -> usize {
        self.0.last().map(|e| e.rle_key() + e.len()).unwrap_or(0)
    }
}

impl<T: HasRleKey + HasLength + SplitableSpan> RleVec<T> {
    /// Iterates over the items of `range`, yielding the (possibly trimmed)
    /// entries that cover it.
    ///
    /// Entries must fully cover the requested range.
    ///
    /// # Panics
    ///
    /// Panics if part of `range` is not covered by any entry.
    pub fn iter_range(&self, range: crate::DTRange) -> RleVecRangeIter<'_, T> {
        RleVecRangeIter { vec: self, range }
    }
}

/// Iterator over the entries covering a key range. See [`RleVec::iter_range`].
pub struct RleVecRangeIter<'a, T> {
    vec: &'a RleVec<T>,
    range: crate::DTRange,
}

impl<T: HasRleKey + HasLength + SplitableSpan> Iterator for RleVecRangeIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        use crate::HasLength as _;
        if self.range.is_empty() {
            return None;
        }
        let (entry, offset) = self
            .vec
            .find_with_offset(self.range.start)
            .unwrap_or_else(|| panic!("key {} not found in RleVec", self.range.start));
        let mut e = entry.clone();
        if offset > 0 {
            e = {
                let mut head = e;
                head.truncate(offset)
            };
        }
        let remaining = self.range.len();
        if e.len() > remaining {
            e.truncate(remaining);
        }
        self.range.start += e.len();
        Some(e)
    }
}

impl<T> FromIterator<T> for RleVec<T>
where
    T: MergableSpan,
{
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = RleVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<'a, T> IntoIterator for &'a RleVec<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DTRange, RleRun};

    #[test]
    fn push_merges() {
        let mut v: RleVec<DTRange> = RleVec::new();
        assert!(!v.push((0..3).into()));
        assert!(v.push((3..6).into()));
        assert!(!v.push((8..9).into()));
        assert_eq!(v.num_entries(), 2);
        assert_eq!(v.item_len(), 7);
    }

    #[test]
    fn find_cases() {
        let mut v: RleVec<DTRange> = RleVec::new();
        v.push((0..5).into());
        v.push((10..15).into());
        assert_eq!(v.find(3), Some(&(0..5).into()));
        assert_eq!(v.find(7), None);
        assert_eq!(v.find_with_offset(12), Some((&(10..15).into(), 2)));
        assert!(v.contains_key(14));
        assert!(!v.contains_key(15));
        assert_eq!(v.end_key(), 15);
    }

    #[test]
    fn kvpair_semantics() {
        let mut kv = KVPair(10, RleRun::new('a', 5));
        assert_eq!(kv.range(), (10..15).into());
        let tail = kv.truncate(2);
        assert_eq!(kv, KVPair(10, RleRun::new('a', 2)));
        assert_eq!(tail, KVPair(12, RleRun::new('a', 3)));
        let mut a = kv;
        assert!(a.can_append(&tail));
        a.append(tail);
        assert_eq!(a.end(), 15);
    }

    #[test]
    fn kvpair_gap_blocks_merge() {
        let a = KVPair(0, RleRun::new('a', 2));
        let b = KVPair(5, RleRun::new('a', 2));
        assert!(!a.can_append(&b));
    }

    #[test]
    fn iter_range_trims_both_ends() {
        let mut v: RleVec<DTRange> = RleVec::new();
        v.push((0..5).into());
        v.push((5..10).into()); // merged: one entry 0..10
        v.push((20..30).into());
        let got: Vec<DTRange> = v.iter_range((3..8).into()).collect();
        assert_eq!(got, vec![DTRange::from(3..8)]);
        let got: Vec<DTRange> = v.iter_range((8..10).into()).collect();
        assert_eq!(got, vec![DTRange::from(8..10)]);
        let got: Vec<DTRange> = v.iter_range((25..30).into()).collect();
        assert_eq!(got, vec![DTRange::from(25..30)]);
    }

    #[test]
    fn from_iterator_merges() {
        let v: RleVec<DTRange> = [(0..2).into(), (2..4).into(), (7..8).into()]
            .into_iter()
            .collect();
        assert_eq!(v.num_entries(), 2);
    }
}
