//! [`IntervalMap`]: a mutable RLE map from key ranges to values.

use crate::DTRange;
use std::collections::BTreeMap;

/// A map from `usize` key ranges to copyable values, with O(log n) point
/// queries and range assignment.
///
/// Adjacent ranges holding equal values are coalesced. The Eg-walker tracker
/// uses this for its ID → record indexes (the paper's "second B-tree",
/// §3.4): ranges of insert-event IDs map to the tree leaf holding their
/// record, and must be re-pointed when leaves split.
///
/// # Examples
///
/// ```
/// use eg_rle::IntervalMap;
/// let mut m: IntervalMap<u32> = IntervalMap::new();
/// m.set((0..10).into(), 1);
/// m.set((4..6).into(), 2);
/// assert_eq!(m.get(5), Some(((4..6).into(), 2)));
/// assert_eq!(m.get(8), Some(((6..10).into(), 1)));
/// assert_eq!(m.num_entries(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct IntervalMap<V> {
    // Key: range start. Value: (range length, value).
    entries: BTreeMap<usize, (usize, V)>,
}

// Manual impl: the derive would needlessly require `V: Default`.
impl<V> Default for IntervalMap<V> {
    fn default() -> Self {
        Self {
            entries: BTreeMap::new(),
        }
    }
}

impl<V: Copy + Eq> IntervalMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self {
            entries: BTreeMap::new(),
        }
    }

    /// The number of coalesced entries stored.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the map holds no ranges.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Looks up the entry covering `key`, returning the covering range and
    /// its value.
    pub fn get(&self, key: usize) -> Option<(DTRange, V)> {
        let (&start, &(len, val)) = self.entries.range(..=key).next_back()?;
        if key < start + len {
            Some(((start..start + len).into(), val))
        } else {
            None
        }
    }

    /// Assigns `val` to every key in `range`, splitting and overwriting any
    /// existing assignments, then coalescing with equal-valued neighbours.
    pub fn set(&mut self, range: DTRange, val: V) {
        if range.start >= range.end {
            return;
        }
        // Fast paths for the dominant callers (split-notification streams
        // from the tracker's record tree): re-asserting an existing
        // assignment, and extending the previous run with the same value.
        // Both avoid the split/remove/reinsert/coalesce machinery below.
        if let Some((&ls, &(llen, lval))) = self.entries.range(..=range.start).next_back() {
            let lend = ls + llen;
            if lval == val {
                if lend >= range.end {
                    // Fully covered by an equal-valued run: no-op.
                    return;
                }
                if lend == range.start
                    && self.entries.range(range.start..range.end).next().is_none()
                {
                    // Appends directly after an equal-valued run, with
                    // nothing overwritten: extend it in place.
                    self.entries.get_mut(&ls).expect("left entry").0 = range.end - ls;
                    self.coalesce_around(ls);
                    return;
                }
            }
        }
        // Split an entry that straddles the left edge of `range`.
        if let Some((&start, &(len, v))) = self.entries.range(..range.start).next_back() {
            let end = start + len;
            if end > range.start {
                // Truncate the straddling entry; re-add its right part (which
                // may itself straddle the right edge of `range`).
                self.entries.insert(start, (range.start - start, v));
                if end > range.end {
                    self.entries.insert(range.end, (end - range.end, v));
                }
            }
        }
        // Remove / trim entries starting inside `range`.
        let inside: Vec<usize> = self
            .entries
            .range(range.start..range.end)
            .map(|(&s, _)| s)
            .collect();
        for s in inside {
            let (len, v) = self.entries.remove(&s).unwrap();
            let end = s + len;
            if end > range.end {
                self.entries.insert(range.end, (end - range.end, v));
            }
        }
        // Insert the new assignment.
        self.entries
            .insert(range.start, (crate::HasLength::len(&range), val));
        self.coalesce_around(range.start);
    }

    /// Merges the entry starting at `start` with equal-valued neighbours.
    fn coalesce_around(&mut self, start: usize) {
        let (len, val) = *self.entries.get(&start).unwrap();
        let mut start = start;
        let mut len = len;
        // Merge with the left neighbour.
        if let Some((&ls, &(llen, lval))) = self.entries.range(..start).next_back() {
            if ls + llen == start && lval == val {
                self.entries.remove(&start);
                start = ls;
                len += llen;
                self.entries.insert(start, (len, val));
            }
        }
        // Merge with the right neighbour.
        if let Some((&rs, &(rlen, rval))) = self.entries.range(start + 1..).next() {
            if start + len == rs && rval == val {
                self.entries.remove(&rs);
                len += rlen;
                self.entries.insert(start, (len, val));
            }
        }
    }

    /// Iterates `(range, value)` entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (DTRange, V)> + '_ {
        self.entries
            .iter()
            .map(|(&s, &(len, v))| ((s..s + len).into(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_lookup() {
        let m: IntervalMap<u8> = IntervalMap::new();
        assert_eq!(m.get(0), None);
        assert!(m.is_empty());
    }

    #[test]
    fn basic_set_get() {
        let mut m = IntervalMap::new();
        m.set((5..10).into(), 'a');
        assert_eq!(m.get(4), None);
        assert_eq!(m.get(5), Some(((5..10).into(), 'a')));
        assert_eq!(m.get(9), Some(((5..10).into(), 'a')));
        assert_eq!(m.get(10), None);
    }

    #[test]
    fn overwrite_middle_splits() {
        let mut m = IntervalMap::new();
        m.set((0..10).into(), 1);
        m.set((3..7).into(), 2);
        assert_eq!(m.get(0), Some(((0..3).into(), 1)));
        assert_eq!(m.get(5), Some(((3..7).into(), 2)));
        assert_eq!(m.get(9), Some(((7..10).into(), 1)));
        assert_eq!(m.num_entries(), 3);
    }

    #[test]
    fn overwrite_spanning_multiple() {
        let mut m = IntervalMap::new();
        m.set((0..4).into(), 1);
        m.set((4..8).into(), 2);
        m.set((8..12).into(), 3);
        m.set((2..10).into(), 9);
        assert_eq!(m.get(1), Some(((0..2).into(), 1)));
        assert_eq!(m.get(5), Some(((2..10).into(), 9)));
        assert_eq!(m.get(11), Some(((10..12).into(), 3)));
    }

    #[test]
    fn coalescing() {
        let mut m = IntervalMap::new();
        m.set((0..5).into(), 7);
        m.set((5..10).into(), 7);
        assert_eq!(m.num_entries(), 1);
        assert_eq!(m.get(9), Some(((0..10).into(), 7)));
        // Overwriting the middle with the same value keeps one entry.
        m.set((2..4).into(), 7);
        assert_eq!(m.num_entries(), 1);
    }

    #[test]
    fn set_identical_range_new_value() {
        let mut m = IntervalMap::new();
        m.set((0..5).into(), 1);
        m.set((0..5).into(), 2);
        assert_eq!(m.get(2), Some(((0..5).into(), 2)));
        assert_eq!(m.num_entries(), 1);
    }

    #[test]
    fn disjoint_ranges() {
        let mut m = IntervalMap::new();
        m.set((0..2).into(), 1);
        m.set((10..12).into(), 1);
        assert_eq!(m.num_entries(), 2);
        assert_eq!(m.get(5), None);
    }

    /// Model-based test against a plain Vec<Option<V>>.
    #[test]
    fn model_random_ops() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};

        const UNIVERSE: usize = 200;
        let mut model: Vec<Option<u8>> = vec![None; UNIVERSE];
        let mut map: IntervalMap<u8> = IntervalMap::new();
        let mut seed = 0xfeed_f00d_u64;
        let mut next = |bound: usize| {
            let mut h = DefaultHasher::new();
            seed.hash(&mut h);
            seed = h.finish();
            (seed as usize) % bound
        };
        for _ in 0..500 {
            let a = next(UNIVERSE);
            let b = next(UNIVERSE);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let v = next(4) as u8;
            map.set((lo..hi + 1).into(), v);
            for slot in model.iter_mut().take(hi + 1).skip(lo) {
                *slot = Some(v);
            }
            // Check a few random probes.
            for _ in 0..10 {
                let k = next(UNIVERSE);
                assert_eq!(map.get(k).map(|(_, v)| v), model[k], "probe at {k}");
            }
        }
        // Entries must be coalesced: no two adjacent entries with equal value.
        let entries: Vec<_> = map.iter().collect();
        for w in entries.windows(2) {
            let (r0, v0) = w[0];
            let (r1, v1) = w[1];
            assert!(r0.end <= r1.start);
            assert!(!(r0.end == r1.start && v0 == v1), "uncoalesced entries");
        }
    }
}
