//! The span traits shared by every RLE structure in the suite.

/// A type with a length, measured in the number of atomic items it represents.
///
/// A span of length 5 stands for 5 consecutive single-item operations (for
/// example 5 inserted characters, or 5 consecutive event IDs).
pub trait HasLength {
    /// The number of atomic items this span represents.
    fn len(&self) -> usize;

    /// Returns `true` if the span represents no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A span that can be split into two pieces at an item boundary.
pub trait SplitableSpan: Clone {
    /// Truncates `self` to `[0, at)` and returns the remainder `[at, len)`.
    ///
    /// `at` must satisfy `0 < at < self.len()`; splitting at the ends is the
    /// caller's responsibility to avoid (it would produce an empty span).
    fn truncate(&mut self, at: usize) -> Self;

    /// Truncates `self` to `[at, len)` and returns the head `[0, at)`.
    ///
    /// The default implementation is written in terms of [`Self::truncate`].
    fn truncate_keeping_right(&mut self, at: usize) -> Self {
        let mut head = self.clone();
        let tail = head.truncate(at);
        *self = tail;
        head
    }
}

/// A span that can absorb an adjacent span, extending its length.
pub trait MergableSpan: Clone {
    /// Returns `true` if `other` directly follows `self` and the two can be
    /// represented as a single run.
    fn can_append(&self, other: &Self) -> bool;

    /// Appends `other` onto the end of `self`.
    ///
    /// Callers must only invoke this when [`Self::can_append`] returned
    /// `true`.
    fn append(&mut self, other: Self);

    /// Prepends `other` at the front of `self`.
    ///
    /// Callers must only invoke this when `other.can_append(self)` returned
    /// `true`. The default implementation swaps and appends.
    fn prepend(&mut self, mut other: Self) {
        std::mem::swap(self, &mut other);
        self.append(other);
    }
}

/// A span that knows its own position on the RLE key axis.
///
/// [`crate::RleVec`] uses this to binary-search for the span containing a
/// given key. A span with `rle_key() == k` and `len() == n` covers keys
/// `[k, k + n)`.
pub trait HasRleKey {
    /// The first key covered by this span.
    fn rle_key(&self) -> usize;
}

/// A generic `(value, length)` run: `len` consecutive items which all carry
/// the same value.
///
/// # Examples
///
/// ```
/// use eg_rle::{HasLength, MergableSpan, RleRun};
/// let mut run = RleRun { val: 'x', len: 3 };
/// assert!(run.can_append(&RleRun { val: 'x', len: 2 }));
/// run.append(RleRun { val: 'x', len: 2 });
/// assert_eq!(run.len(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RleRun<T> {
    /// The value shared by every item in the run.
    pub val: T,
    /// The number of items in the run.
    pub len: usize,
}

impl<T> RleRun<T> {
    /// Creates a new run of `len` items valued `val`.
    pub fn new(val: T, len: usize) -> Self {
        Self { val, len }
    }
}

impl<T> HasLength for RleRun<T> {
    fn len(&self) -> usize {
        self.len
    }
}

impl<T: Clone> SplitableSpan for RleRun<T> {
    fn truncate(&mut self, at: usize) -> Self {
        debug_assert!(at > 0 && at < self.len);
        let rem = Self {
            val: self.val.clone(),
            len: self.len - at,
        };
        self.len = at;
        rem
    }
}

impl<T: Clone + PartialEq> MergableSpan for RleRun<T> {
    fn can_append(&self, other: &Self) -> bool {
        self.val == other.val
    }

    fn append(&mut self, other: Self) {
        self.len += other.len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle_run_split_and_merge() {
        let mut run = RleRun::new(7u32, 10);
        let tail = run.truncate(4);
        assert_eq!(run, RleRun::new(7, 4));
        assert_eq!(tail, RleRun::new(7, 6));
        let mut a = run;
        assert!(a.can_append(&tail));
        a.append(tail);
        assert_eq!(a, RleRun::new(7, 10));
    }

    #[test]
    fn truncate_keeping_right_default() {
        let mut run = RleRun::new('a', 8);
        let head = run.truncate_keeping_right(3);
        assert_eq!(head, RleRun::new('a', 3));
        assert_eq!(run, RleRun::new('a', 5));
    }

    #[test]
    fn prepend_default() {
        let mut b = RleRun::new(1u8, 2);
        let a = RleRun::new(1u8, 3);
        b.prepend(a);
        assert_eq!(b, RleRun::new(1u8, 5));
    }

    #[test]
    fn mismatched_values_do_not_merge() {
        let a = RleRun::new(1, 2);
        let b = RleRun::new(2, 2);
        assert!(!a.can_append(&b));
    }
}
