//! [`DTRange`]: the half-open integer range used throughout the suite.

use crate::{HasLength, HasRleKey, MergableSpan, SplitableSpan};
use std::fmt;
use std::ops::Range;

/// A half-open range `[start, end)` of `usize` values.
///
/// This is the workhorse span of the whole suite: ranges of local versions,
/// ranges of document positions, ranges of sequence numbers. It behaves like
/// [`std::ops::Range<usize>`] but is `Copy` and implements the RLE span
/// traits.
///
/// # Examples
///
/// ```
/// use eg_rle::{DTRange, HasLength};
/// let r = DTRange::from(3..8);
/// assert_eq!(r.len(), 5);
/// assert!(r.contains(4));
/// assert_eq!(r.intersect(&(6..20).into()), Some(DTRange::from(6..8)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct DTRange {
    /// First value in the range.
    pub start: usize,
    /// One past the last value in the range.
    pub end: usize,
}

impl DTRange {
    /// Creates a new range `[start, end)`.
    pub const fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }

    /// Creates a range covering exactly one value.
    pub const fn single(value: usize) -> Self {
        Self {
            start: value,
            end: value + 1,
        }
    }

    /// Returns the last value in the range.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the range is empty.
    pub fn last(&self) -> usize {
        debug_assert!(self.end > self.start);
        self.end - 1
    }

    /// Returns `true` if `value` lies within the range.
    pub fn contains(&self, value: usize) -> bool {
        value >= self.start && value < self.end
    }

    /// Returns `true` if `other` is entirely contained in `self`.
    pub fn contains_range(&self, other: &DTRange) -> bool {
        other.start >= self.start && other.end <= self.end
    }

    /// Returns the overlap between the two ranges, if any.
    ///
    /// An empty overlap (ranges that merely touch) yields `None`.
    pub fn intersect(&self, other: &DTRange) -> Option<DTRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(DTRange { start, end })
        } else {
            None
        }
    }

    /// Returns `true` if the two ranges share at least one value.
    pub fn overlaps(&self, other: &DTRange) -> bool {
        self.intersect(other).is_some()
    }

    /// Iterates the values in the range, in ascending order.
    pub fn iter(&self) -> Range<usize> {
        self.start..self.end
    }

    /// Returns this range shifted down so that `new_start` replaces `start`.
    pub fn with_start(&self, new_start: usize) -> Self {
        debug_assert!(new_start <= self.end);
        Self {
            start: new_start,
            end: self.end,
        }
    }

    /// Returns the sub-range starting `offset` items in.
    pub fn suffix(&self, offset: usize) -> Self {
        debug_assert!(offset <= crate::HasLength::len(self));
        Self {
            start: self.start + offset,
            end: self.end,
        }
    }

    /// Returns the first `len` items of the range.
    pub fn prefix(&self, len: usize) -> Self {
        debug_assert!(len <= crate::HasLength::len(self));
        Self {
            start: self.start,
            end: self.start + len,
        }
    }
}

impl fmt::Display for DTRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{})", self.start, self.end)
    }
}

impl From<Range<usize>> for DTRange {
    fn from(r: Range<usize>) -> Self {
        Self {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<DTRange> for Range<usize> {
    fn from(r: DTRange) -> Self {
        r.start..r.end
    }
}

impl From<usize> for DTRange {
    fn from(value: usize) -> Self {
        Self::single(value)
    }
}

impl IntoIterator for DTRange {
    type Item = usize;
    type IntoIter = Range<usize>;

    fn into_iter(self) -> Self::IntoIter {
        self.start..self.end
    }
}

impl HasLength for DTRange {
    fn len(&self) -> usize {
        self.end - self.start
    }
}

impl SplitableSpan for DTRange {
    fn truncate(&mut self, at: usize) -> Self {
        debug_assert!(at > 0 && at < HasLength::len(self));
        let rem = Self {
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        rem
    }
}

impl MergableSpan for DTRange {
    fn can_append(&self, other: &Self) -> bool {
        self.end == other.start
    }

    fn append(&mut self, other: Self) {
        self.end = other.end;
    }
}

impl HasRleKey for DTRange {
    fn rle_key(&self) -> usize {
        self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let r = DTRange::from(2..6);
        assert_eq!(HasLength::len(&r), 4);
        assert!(!r.is_empty());
        assert!(r.contains(2));
        assert!(!r.contains(6));
        assert_eq!(r.last(), 5);
        assert_eq!(r.to_string(), "[2..6)");
    }

    #[test]
    fn intersect_cases() {
        let a = DTRange::from(0..10);
        assert_eq!(a.intersect(&(5..15).into()), Some((5..10).into()));
        assert_eq!(a.intersect(&(10..15).into()), None);
        assert_eq!(a.intersect(&(3..7).into()), Some((3..7).into()));
        assert!(a.contains_range(&(3..7).into()));
        assert!(!a.contains_range(&(3..17).into()));
    }

    #[test]
    fn split_merge_roundtrip() {
        let mut r = DTRange::from(10..20);
        let tail = r.truncate(4);
        assert_eq!(r, (10..14).into());
        assert_eq!(tail, (14..20).into());
        assert!(r.can_append(&tail));
        r.append(tail);
        assert_eq!(r, (10..20).into());
    }

    #[test]
    fn prefix_suffix() {
        let r = DTRange::from(10..20);
        assert_eq!(r.prefix(3), (10..13).into());
        assert_eq!(r.suffix(3), (13..20).into());
    }

    #[test]
    fn iteration() {
        let r = DTRange::from(3..6);
        let v: Vec<usize> = r.into_iter().collect();
        assert_eq!(v, vec![3, 4, 5]);
    }
}
