//! Property-based tests for the RLE span laws.

use eg_rle::{
    merge_spans, DTRange, HasLength, IntervalMap, KVPair, MergableSpan, RleRun, RleVec,
    SplitableSpan,
};
use proptest::prelude::*;

proptest! {
    /// Splitting a range and re-appending the halves is the identity.
    #[test]
    fn dtrange_split_append_identity(start in 0usize..1000, len in 2usize..100, at in 1usize..99) {
        prop_assume!(at < len);
        let orig = DTRange::from(start..start + len);
        let mut a = orig;
        let b = a.truncate(at);
        prop_assert_eq!(a.len() + b.len(), orig.len());
        prop_assert_eq!(a.end, b.start);
        let mut merged = a;
        merged.append(b);
        prop_assert_eq!(merged, orig);
    }

    /// truncate_keeping_right is consistent with truncate.
    #[test]
    fn truncate_keeping_right_consistent(len in 2usize..100, at in 1usize..99) {
        prop_assume!(at < len);
        let orig = RleRun::new(42u8, len);
        let mut right = orig;
        let left = right.truncate_keeping_right(at);
        prop_assert_eq!(left.len(), at);
        prop_assert_eq!(right.len(), len - at);
    }

    /// merge_spans output is maximally merged and preserves total length.
    #[test]
    fn merge_spans_canonical(splits in proptest::collection::vec(1usize..5, 0..20)) {
        // Build contiguous ranges from the split widths, with occasional gaps.
        let mut spans = Vec::new();
        let mut pos = 0;
        for (i, w) in splits.iter().enumerate() {
            if i % 7 == 3 {
                pos += 2; // introduce a gap
            }
            spans.push(DTRange::from(pos..pos + w));
            pos += w;
        }
        let total: usize = spans.iter().map(|s| s.len()).sum();
        let merged = merge_spans(spans);
        let merged_total: usize = merged.iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, merged_total);
        for w in merged.windows(2) {
            prop_assert!(w[0].end < w[1].start, "adjacent spans should have merged");
        }
    }

    /// RleVec::find agrees with a linear scan.
    #[test]
    fn rlevec_find_matches_scan(ranges in proptest::collection::vec((0usize..50, 1usize..5), 1..20)) {
        // Lay the ranges out in ascending key order with possible gaps.
        let mut v: RleVec<DTRange> = RleVec::new();
        let mut flat: Vec<DTRange> = Vec::new();
        let mut key = 0;
        for (gap, len) in ranges {
            key += gap;
            let r = DTRange::from(key..key + len);
            v.push(r);
            flat.push(r);
            key += len;
        }
        for probe in 0..key + 2 {
            let expect = flat.iter().find(|r| r.contains(probe));
            let got = v.find_with_offset(probe);
            match expect {
                Some(r) => {
                    let (e, off) = got.expect("should find");
                    prop_assert!(e.contains(probe));
                    prop_assert_eq!(e.start + off, probe);
                    prop_assert!(e.contains_range(r));
                }
                None => prop_assert!(got.is_none()),
            }
        }
    }

    /// KVPair split keys stay aligned.
    #[test]
    fn kvpair_split_keys(key in 0usize..1000, len in 2usize..50, at in 1usize..49) {
        prop_assume!(at < len);
        let mut kv = KVPair(key, RleRun::new('z', len));
        let tail = kv.truncate(at);
        prop_assert_eq!(kv.end(), tail.0);
        prop_assert_eq!(tail.end(), key + len);
    }

    /// IntervalMap::set/get matches a dense model.
    #[test]
    fn intervalmap_model(ops in proptest::collection::vec((0usize..100, 1usize..30, 0u8..4), 1..60)) {
        let mut model: Vec<Option<u8>> = vec![None; 140];
        let mut map: IntervalMap<u8> = IntervalMap::new();
        for (start, len, val) in ops {
            map.set((start..start + len).into(), val);
            for slot in model.iter_mut().take(start + len).skip(start) {
                *slot = Some(val);
            }
        }
        for (k, expect) in model.iter().enumerate() {
            prop_assert_eq!(map.get(k).map(|(_, v)| v), *expect, "probe {}", k);
        }
    }
}
