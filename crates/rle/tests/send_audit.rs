//! Compile-time thread-safety audit for the run-length substrates: they
//! sit at the bottom of every structure the server host moves across
//! threads (`OpLog` columns, tracker arenas, interval maps), so a
//! non-`Send` field here would poison the whole stack.

use eg_rle::{CharWidthIndex, DTRange, IntervalMap, KVPair, RleRun, RleVec};

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

#[test]
fn rle_substrates_are_send_and_sync() {
    assert_send::<DTRange>();
    assert_sync::<DTRange>();
    assert_send::<RleVec<KVPair<RleRun<u32>>>>();
    assert_sync::<RleVec<KVPair<RleRun<u32>>>>();
    assert_send::<IntervalMap<u32>>();
    assert_sync::<IntervalMap<u32>>();
    assert_send::<CharWidthIndex>();
    assert_sync::<CharWidthIndex>();
}
