//! Tier-1 determinism contract of the multi-core host (ISSUE 7): running
//! the deterministic fleet workload through any worker-pool size must
//! leave every document byte-identical to a single-threaded sequential
//! replay of the same seed — same text, same remote versions. The
//! parallelism must be invisible in the state, visible only in the clock.
//!
//! The argument being tested: one submitter thread routes edits in script
//! order, per-worker mpsc channels are FIFO, each worker processes its
//! queue sequentially, and shard affinity pins every document to one
//! worker — so each document sees exactly the script-order projection of
//! its ops, which is precisely what the sequential replay applies.
//! Position hints reduce against live per-document state only, so no
//! cross-document coupling can sneak in.

use eg_server::{replay_fleet_sequential, ServerConfig, ServerHost};
use eg_trace::{fleet_workload, FleetOp, FleetSpec};
use std::sync::Arc;

fn script(seed: u64, edits: usize) -> Arc<[FleetOp]> {
    fleet_workload(&FleetSpec {
        docs: 96,
        sessions: 48,
        edits,
        seed,
        ..FleetSpec::default()
    })
    .into()
}

fn host(name: &str, workers: usize) -> ServerHost {
    ServerHost::with_config(ServerConfig {
        name: name.to_owned(),
        workers,
        ..ServerConfig::default()
    })
}

#[test]
fn every_pool_size_matches_sequential_replay() {
    let script = script(0xD00D, 3000);
    let reference = replay_fleet_sequential("server", &script);
    assert!(!reference.is_empty());
    for workers in [1, 2, 4, 8] {
        let h = ServerHost::new(workers);
        let report = h.run_script(&script);
        assert!(report.edits() > 0);
        assert_eq!(
            h.snapshot(),
            reference,
            "{workers}-worker host diverged from sequential replay"
        );
    }
}

#[test]
fn runs_are_deterministic_against_each_other() {
    let script = script(0xCAFE, 2500);
    let (h1, h2) = (host("server", 4), host("server", 4));
    let (r1, r2) = (h1.run_script(&script), h2.run_script(&script));
    assert_eq!(h1.snapshot(), h2.snapshot());
    assert_eq!(r1.inserts, r2.inserts);
    assert_eq!(r1.deletes, r2.deletes);
    assert_eq!(r1.skipped, r2.skipped);
}

/// Three hosts with different pool sizes and different local edit
/// histories converge through batched anti-entropy over real wire frames
/// within a bounded number of pairwise rounds — two full sweeps of the
/// triangle, the same kind of bound `sync_scale` puts on the simulated
/// mesh. Worker counts differ on purpose: the shard map is per-host, so
/// bundles extracted under one sharding must integrate cleanly under
/// another.
#[test]
fn three_hosts_converge_in_two_pairwise_sweeps() {
    let a = host("hostA", 1);
    let b = host("hostB", 2);
    let c = host("hostC", 4);
    a.run_script(&script(0xA, 1200));
    b.run_script(&script(0xB, 1200));
    c.run_script(&script(0xC, 1200));
    assert!(!a.converged_with(&b) && !b.converged_with(&c));

    for _sweep in 0..2 {
        a.sync_with(&b);
        b.sync_with(&c);
        a.sync_with(&c);
    }
    assert!(a.converged_with(&b), "A/B diverged after two sweeps");
    assert!(b.converged_with(&c), "B/C diverged after two sweeps");

    // Convergence must be quiescent: one more round ships zero frames.
    assert_eq!(a.sync_with(&b), (0, 0));
    assert_eq!(b.sync_with(&c), (0, 0));
    assert_eq!(a.sync_with(&c), (0, 0));
}

/// Interleaving edit submission with anti-entropy must not break the
/// byte-identity of local documents: sync rounds only add remote events,
/// and the flush barrier orders them against local batches per worker.
#[test]
fn sync_interleaved_with_edits_still_converges() {
    let first = script(0x51, 1000);
    let second = script(0x52, 1000);
    let a = host("hostA", 2);
    let b = host("hostB", 3);
    a.run_script(&first);
    a.sync_with(&b);
    b.run_script(&second);
    a.sync_with(&b);
    assert!(a.converged_with(&b));
    assert_eq!(a.sync_with(&b), (0, 0));
}
