//! Applying fleet-workload scripts to replicas.
//!
//! One function, [`apply_fleet_op`], is the *only* code path that turns a
//! [`FleetOp`] into replica edits — the worker threads and the
//! single-threaded reference replay ([`replay_fleet_sequential`]) both
//! call it. That is what makes the determinism test meaningful: position
//! clamping, agent naming, and skip rules cannot diverge between the
//! parallel host and the sequential baseline because they are literally
//! the same instructions.

use eg_sync::{DocId, Replica};
use eg_trace::FleetOp;

/// What applying one [`FleetOp`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetOutcome {
    /// An insert was merged into the target document.
    Insert,
    /// A delete was merged into the target document.
    Delete,
    /// An edit op was a no-op (delete against an empty document or a
    /// fully clamped-away range) and touched nothing.
    Skipped,
    /// Join/Leave/Ticks — fleet bookkeeping with no document effect.
    NonEdit,
}

/// Per-session agent names, cached so the steady-state edit path never
/// formats strings. Names are namespaced by the host (`"{host}.s{n}"`):
/// two hosts replaying fleets against the same documents must not collide
/// on `(agent, seq)` pairs when they later anti-entropy with each other.
#[derive(Debug)]
pub struct SessionNames {
    prefix: String,
    names: Vec<String>,
}

impl SessionNames {
    pub fn new(host: &str) -> Self {
        SessionNames {
            prefix: host.to_owned(),
            names: Vec::new(),
        }
    }

    /// The agent name for `session`, formatted at most once per session.
    pub fn get(&mut self, session: u32) -> &str {
        let i = session as usize;
        if i >= self.names.len() {
            self.names.resize_with(i + 1, String::new);
        }
        if self.names[i].is_empty() {
            self.names[i] = format!("{}.s{}", self.prefix, session);
        }
        &self.names[i]
    }
}

/// Applies one fleet op to `replica`.
///
/// The generator emits position *hints* (`at` is an arbitrary `u64`);
/// they are reduced against the live document here — insert positions
/// modulo `len + 1`, delete ranges clamped to what exists — so a script
/// is applicable to any replica state and the reduction is a pure
/// function of the per-document history.
pub fn apply_fleet_op(
    replica: &mut Replica,
    names: &mut SessionNames,
    op: &FleetOp,
) -> FleetOutcome {
    match op {
        FleetOp::Insert {
            session,
            doc,
            at,
            text,
        } => {
            let doc = DocId(*doc);
            let len = replica.len_chars_doc(doc);
            let pos = (*at % (len as u64 + 1)) as usize;
            replica.edit_insert_as(doc, names.get(*session), pos, text);
            FleetOutcome::Insert
        }
        FleetOp::Delete {
            session,
            doc,
            at,
            len,
        } => {
            let doc = DocId(*doc);
            let doc_len = replica.len_chars_doc(doc);
            if doc_len == 0 {
                return FleetOutcome::Skipped;
            }
            let pos = (*at % doc_len as u64) as usize;
            let n = (*len).min(doc_len - pos);
            if n == 0 {
                return FleetOutcome::Skipped;
            }
            replica.edit_delete_as(doc, names.get(*session), pos, n);
            FleetOutcome::Delete
        }
        FleetOp::Join { .. } | FleetOp::Leave { .. } | FleetOp::Ticks(_) => FleetOutcome::NonEdit,
    }
}

/// Single-threaded reference replay: one replica, ops applied in script
/// order, then a canonical snapshot. The parallel host must reproduce
/// this byte for byte — shard affinity keeps every document's op
/// subsequence in script order, and documents are independent.
pub fn replay_fleet_sequential(
    host: &str,
    script: &[FleetOp],
) -> Vec<(DocId, Vec<eg_dag::RemoteId>, String)> {
    let mut replica = Replica::new(host);
    let mut names = SessionNames::new(host);
    for op in script {
        apply_fleet_op(&mut replica, &mut names, op);
    }
    replica.snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_names_are_cached_and_namespaced() {
        let mut names = SessionNames::new("hostA");
        assert_eq!(names.get(0), "hostA.s0");
        assert_eq!(names.get(7), "hostA.s7");
        let p0 = names.get(0).as_ptr();
        assert_eq!(names.get(0).as_ptr(), p0, "name re-formatted");
    }

    #[test]
    fn insert_positions_reduce_mod_len_plus_one() {
        let mut r = Replica::new("h");
        let mut names = SessionNames::new("h");
        let op = FleetOp::Insert {
            session: 0,
            doc: 1,
            at: 1_000_003,
            text: "ab".into(),
        };
        assert_eq!(
            apply_fleet_op(&mut r, &mut names, &op),
            FleetOutcome::Insert
        );
        assert_eq!(r.text_doc(DocId(1)), "ab");
        // Same hint against a 2-char doc now lands at 1_000_003 % 3 == 1.
        let op = FleetOp::Insert {
            session: 0,
            doc: 1,
            at: 1_000_003,
            text: "X".into(),
        };
        apply_fleet_op(&mut r, &mut names, &op);
        assert_eq!(r.text_doc(DocId(1)), "aXb");
    }

    #[test]
    fn delete_on_empty_doc_is_skipped() {
        let mut r = Replica::new("h");
        let mut names = SessionNames::new("h");
        let op = FleetOp::Delete {
            session: 0,
            doc: 9,
            at: 4,
            len: 2,
        };
        assert_eq!(
            apply_fleet_op(&mut r, &mut names, &op),
            FleetOutcome::Skipped
        );
    }

    #[test]
    fn bookkeeping_ops_touch_nothing() {
        let mut r = Replica::new("h");
        let mut names = SessionNames::new("h");
        for op in [
            FleetOp::Join { session: 1, doc: 0 },
            FleetOp::Leave { session: 1 },
            FleetOp::Ticks(5),
        ] {
            assert_eq!(
                apply_fleet_op(&mut r, &mut names, &op),
                FleetOutcome::NonEdit
            );
        }
        assert!(r.snapshot().is_empty());
    }
}
