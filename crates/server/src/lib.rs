//! `eg-server`: a multi-core in-process host for many documents.
//!
//! The eg-walker merge path is deliberately single-threaded — the paper's
//! cost bound (merge work proportional to the concurrent region) and the
//! PR-4..6 optimisations (cursor caches, reused trackers, slab arenas,
//! zero-alloc steady state) all assume one thread owns one document's
//! state. This crate scales that design to every core *without touching
//! it*: documents are partitioned across a pool of worker threads by a
//! stable hash ([`shard_for`]), each worker owns a private
//! [`eg_sync::Replica`] holding its shard, and all cross-thread traffic
//! is message passing over `std::sync::mpsc`. No locks, no shared
//! document state, no change to the merge machinery.
//!
//! * [`shard`] — the `DocId → worker` map (splitmix64, stable, uniform);
//! * [`host`] — [`ServerHost`]: edit routing, barriers, parallel
//!   anti-entropy (digest fan-out, owner-affine bundle extraction,
//!   work-stealing wire encoding), host↔host sync over real frames;
//! * [`fleet`] — the one shared interpreter for `eg-trace` fleet scripts,
//!   used identically by workers and by the single-threaded reference
//!   replay so parallel runs are byte-checkable against sequential ones;
//! * [`latency`] — mergeable log-bucketed histograms for per-op-class
//!   p50/p99/p999 reporting in the `server_load` bench.
//!
//! Determinism: a fleet script is submitted by one thread, each edit is
//! routed to its document's owner in script order, mpsc channels are
//! FIFO, and workers process jobs sequentially — so every document sees
//! exactly the script-order projection of its ops, which is what the
//! sequential replay applies. Position hints reduce against live
//! per-document state only. Hence parallel and sequential snapshots are
//! byte-identical, for any worker count.

pub mod fleet;
pub mod host;
pub mod latency;
pub mod shard;

pub(crate) mod worker;

pub use fleet::{apply_fleet_op, replay_fleet_sequential, FleetOutcome, SessionNames};
pub use host::{ServerConfig, ServerHost};
pub use latency::LatencyHistogram;
pub use shard::{mix64, shard_for};
pub use worker::{LoadReport, PersistStats};
