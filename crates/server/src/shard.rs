//! Document → worker placement.
//!
//! Shard affinity is the load-bearing invariant of the whole host: every
//! operation touching a document — local edits, digest scans, bundle
//! extraction, remote-bundle integration — runs on the one worker thread
//! that owns the document's `Replica` entry. That keeps each document's
//! merge path exactly as single-threaded as the paper assumes (merge cost
//! bounded by the concurrent region, PR-6 reused trackers, zero-alloc
//! steady state) while independent documents ride on every core.
//!
//! The map must be *stable* (same doc → same worker for the lifetime of a
//! host, or edits would race their own history) and *uniform* (zipfian
//! workloads already concentrate load; a weak hash would pile hot docs
//! onto one worker). `DocId`s are dense small integers in practice, so we
//! run them through the splitmix64 finalizer — a full-avalanche bijection
//! — before reducing modulo the worker count.

use eg_sync::DocId;

/// Full-avalanche 64-bit mix (the splitmix64 finalizer). Bijective, so
/// distinct documents never collide before the modulo.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The worker index owning `doc` in a pool of `workers` threads.
///
/// Stable for a given `(doc, workers)` pair across runs and platforms;
/// changing the worker count re-shards everything, which is why
/// [`crate::ServerHost`] fixes the pool size at construction.
#[inline]
pub fn shard_for(doc: DocId, workers: usize) -> usize {
    debug_assert!(workers > 0);
    (mix64(doc.0) % workers as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_stable() {
        for w in [1, 2, 4, 8] {
            for d in 0..256u64 {
                assert_eq!(shard_for(DocId(d), w), shard_for(DocId(d), w));
                assert!(shard_for(DocId(d), w) < w);
            }
        }
    }

    #[test]
    fn one_worker_owns_everything() {
        for d in 0..1024u64 {
            assert_eq!(shard_for(DocId(d), 1), 0);
        }
    }

    /// Dense doc ids must spread evenly: with 4 workers over 4096 docs a
    /// uniform hash puts ~1024 on each; allow ±15%.
    #[test]
    fn dense_ids_spread_uniformly() {
        let workers = 4;
        let mut counts = [0usize; 4];
        for d in 0..4096u64 {
            counts[shard_for(DocId(d), workers)] += 1;
        }
        for &c in &counts {
            assert!((871..=1177).contains(&c), "skewed shard map: {counts:?}");
        }
    }

    #[test]
    fn mix_is_not_identity_on_small_ints() {
        // The whole point over `doc % workers`: consecutive ids land on
        // unpredictable workers, so hot ranges don't stripe.
        let seq: Vec<usize> = (0..8).map(|d| shard_for(DocId(d), 8)).collect();
        assert_ne!(seq, (0..8).collect::<Vec<_>>());
    }
}
