//! [`ServerHost`]: the coordinator that owns the worker pool.
//!
//! The host is the single seam between callers and the shard threads. It
//! never touches document state itself; it routes work by shard affinity,
//! fans anti-entropy out across the pool, and rolls replies back up.
//! Every public method takes `&self` — the host's own state is channels
//! and config — so a driver thread can interleave edit submission and
//! sync rounds freely.

use std::path::PathBuf;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

use eg_dag::RemoteId;
use eg_sync::{DocId, Message};
use eg_trace::FleetOp;
use egwalker::EventBundle;

use crate::shard::shard_for;
use crate::worker::{
    worker_main, EditBatch, EncodeRound, Job, LoadReport, PersistStats, WorkerCtx,
};

/// Pool construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Replica name; also the namespace for fleet session agents, so two
    /// hosts syncing with each other must use distinct names.
    pub name: String,
    /// Worker thread count. Fixed for the host's lifetime (the shard map
    /// depends on it).
    pub workers: usize,
    /// Edits per batch handed to a worker. Larger batches amortise the
    /// channel send; smaller ones reduce queueing latency.
    pub batch: usize,
    /// Directory of per-document segment stores (`doc-{id}.seg`). When
    /// set, each worker reopens its shard's documents at startup — warm,
    /// through the checkpoint fast path where one resolves — and appends
    /// every edit/receive batch to disk. `None` keeps the host purely
    /// in-memory.
    pub persist_dir: Option<PathBuf>,
    /// Write a checkpoint record once a document accumulates this many
    /// events past its last checkpoint. Cadence trades segment-file
    /// growth (checkpoints embed the document text) against reopen cost
    /// (the tail replayed on a warm open).
    pub checkpoint_every: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            name: "server".to_owned(),
            workers: thread::available_parallelism().map_or(1, |n| n.get()),
            batch: 128,
            persist_dir: None,
            checkpoint_every: 512,
        }
    }
}

/// A multi-threaded in-process document host: shard-affinity worker pool
/// over [`eg_sync::Replica`] state, parallel anti-entropy, work-stealing
/// wire encoding.
pub struct ServerHost {
    config: ServerConfig,
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    /// Spent edit-batch vectors coming back from workers for reuse.
    recycle: Receiver<Vec<(u32, Instant)>>,
}

impl ServerHost {
    /// A host named `"server"` with `workers` threads.
    pub fn new(workers: usize) -> Self {
        Self::with_config(ServerConfig {
            workers,
            ..ServerConfig::default()
        })
    }

    pub fn with_config(config: ServerConfig) -> Self {
        assert!(config.workers > 0, "worker pool must not be empty");
        assert!(config.batch > 0, "batch size must not be zero");
        let (recycle_tx, recycle) = mpsc::channel();
        let mut senders = Vec::with_capacity(config.workers);
        let mut handles = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let (tx, rx) = mpsc::channel();
            let ctx = WorkerCtx {
                host_name: config.name.clone(),
                index: i,
                workers: config.workers,
                persist_dir: config.persist_dir.clone(),
                checkpoint_every: config.checkpoint_every.max(1),
            };
            let recycle_tx = recycle_tx.clone();
            let handle = thread::Builder::new()
                .name(format!("eg-server-w{i}"))
                .spawn(move || worker_main(ctx, rx, recycle_tx))
                .expect("spawn worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        ServerHost {
            config,
            senders,
            handles,
            recycle,
        }
    }

    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    pub fn name(&self) -> &str {
        &self.config.name
    }

    fn send(&self, worker: usize, job: Job) {
        self.senders[worker]
            .send(job)
            .expect("worker thread died (panicked?)");
    }

    /// A fresh or recycled batch vector.
    fn grab_items(&self) -> Vec<(u32, Instant)> {
        self.recycle
            .try_recv()
            .unwrap_or_else(|_| Vec::with_capacity(self.config.batch))
    }

    /// Streams a fleet script into the pool: each edit op is routed to
    /// its document's owner with a submit timestamp, in script order.
    /// Per-worker FIFO channels plus per-doc affinity mean every
    /// document sees its ops exactly in script order — the determinism
    /// invariant. Non-edit ops (join/leave/ticks) shape the script at
    /// generation time and are not shipped. Returns the number of edit
    /// ops submitted; call [`Self::flush`] to wait for them.
    pub fn submit_script(&self, script: &Arc<[FleetOp]>) -> usize {
        assert!(script.len() <= u32::MAX as usize, "script too long");
        let nw = self.senders.len();
        let mut pending: Vec<Vec<(u32, Instant)>> = (0..nw).map(|_| self.grab_items()).collect();
        let mut submitted = 0usize;
        for (idx, op) in script.iter().enumerate() {
            let doc = match op {
                FleetOp::Insert { doc, .. } | FleetOp::Delete { doc, .. } => *doc,
                FleetOp::Join { .. } | FleetOp::Leave { .. } | FleetOp::Ticks(_) => continue,
            };
            let w = shard_for(DocId(doc), nw);
            pending[w].push((idx as u32, Instant::now()));
            submitted += 1;
            if pending[w].len() >= self.config.batch {
                let items = std::mem::replace(&mut pending[w], self.grab_items());
                self.send(
                    w,
                    Job::Edits(EditBatch {
                        script: Arc::clone(script),
                        items,
                    }),
                );
            }
        }
        for (w, items) in pending.into_iter().enumerate() {
            if !items.is_empty() {
                self.send(
                    w,
                    Job::Edits(EditBatch {
                        script: Arc::clone(script),
                        items,
                    }),
                );
            }
        }
        submitted
    }

    /// Barrier: returns once every job queued so far has been processed.
    pub fn flush(&self) {
        let (tx, rx) = mpsc::channel();
        for w in 0..self.senders.len() {
            self.send(w, Job::Flush(tx.clone()));
        }
        drop(tx);
        let acks = rx.iter().count();
        assert_eq!(acks, self.senders.len(), "worker died before flush ack");
    }

    /// Harvests and resets all per-worker load reports, merged into one.
    pub fn harvest(&self) -> LoadReport {
        let (tx, rx) = mpsc::channel();
        for w in 0..self.senders.len() {
            self.send(w, Job::Harvest(tx.clone()));
        }
        drop(tx);
        let mut merged = LoadReport::default();
        let mut replies = 0;
        for report in rx.iter() {
            merged.merge(&report);
            replies += 1;
        }
        assert_eq!(replies, self.senders.len(), "worker died before harvest");
        merged
    }

    /// Submit + flush + harvest in one call.
    pub fn run_script(&self, script: &Arc<[FleetOp]>) -> LoadReport {
        self.submit_script(script);
        self.flush();
        self.harvest()
    }

    /// Forces a checkpoint on every document with events past its last
    /// one, across all workers. Returns the number of checkpoints
    /// written (always 0 without a persist dir). Call before an orderly
    /// shutdown so the next startup reopens every document warm.
    pub fn checkpoint_all(&self) -> usize {
        let (tx, rx) = mpsc::channel();
        for w in 0..self.senders.len() {
            self.send(w, Job::Checkpoint(tx.clone()));
        }
        drop(tx);
        let mut written = 0;
        let mut replies = 0;
        for n in rx.iter() {
            written += n;
            replies += 1;
        }
        assert_eq!(replies, self.senders.len(), "worker died before checkpoint");
        written
    }

    /// What persistence restored at startup, summed across workers
    /// (all zeroes without a persist dir).
    pub fn persist_stats(&self) -> PersistStats {
        let (tx, rx) = mpsc::channel();
        for w in 0..self.senders.len() {
            self.send(w, Job::Persisted(tx.clone()));
        }
        drop(tx);
        let mut merged = PersistStats::default();
        let mut replies = 0;
        for stats in rx.iter() {
            merged.merge(&stats);
            replies += 1;
        }
        assert_eq!(replies, self.senders.len(), "worker died before stats");
        merged
    }

    /// Per-document digests of the whole host, fanned out across workers
    /// and merged sorted by document id — the parallel equivalent of
    /// [`eg_sync::Replica::digest_all`].
    pub fn digest_all(&self) -> Vec<(DocId, Vec<RemoteId>)> {
        let (tx, rx) = mpsc::channel();
        for w in 0..self.senders.len() {
            self.send(w, Job::Digests(tx.clone()));
        }
        drop(tx);
        let mut replies = 0;
        let mut out = Vec::new();
        for shard in rx.iter() {
            out.extend(shard);
            replies += 1;
        }
        assert_eq!(replies, self.senders.len(), "worker died before digest");
        out.sort_by_key(|e| e.0);
        out
    }

    /// Bundles this host has that a peer digest lacks. Extraction runs
    /// on each document's owning worker (it walks live oplog state);
    /// only the returned owned bundles cross threads.
    pub fn bundles_for(&self, peer: &[(DocId, Vec<RemoteId>)]) -> Vec<(DocId, EventBundle)> {
        let mut sorted = peer.to_vec();
        sorted.sort_by_key(|e| e.0);
        let peer = Arc::new(sorted);
        let (tx, rx) = mpsc::channel();
        for w in 0..self.senders.len() {
            self.send(
                w,
                Job::Extract {
                    peer: Arc::clone(&peer),
                    reply: tx.clone(),
                },
            );
        }
        drop(tx);
        let mut replies = 0;
        let mut out = Vec::new();
        for shard in rx.iter() {
            out.extend(shard);
            replies += 1;
        }
        assert_eq!(replies, self.senders.len(), "worker died before extract");
        out.sort_by_key(|e| e.0);
        out
    }

    /// Routes remote bundles to their owning workers for integration.
    /// Returns once routed (not integrated); [`Self::flush`] to wait.
    pub fn receive_bundles(&self, bundles: Vec<(DocId, EventBundle)>) {
        let nw = self.senders.len();
        let mut per: Vec<Vec<(DocId, EventBundle)>> = (0..nw).map(|_| Vec::new()).collect();
        for (doc, bundle) in bundles {
            per[shard_for(doc, nw)].push((doc, bundle));
        }
        for (w, batch) in per.into_iter().enumerate() {
            if !batch.is_empty() {
                self.send(w, Job::Receive(batch));
            }
        }
    }

    /// Wire-encodes extracted bundles as one frame per document via a
    /// work-stealing round: every worker gets a handle to the shared
    /// round, the coordinator steals too, and whoever is idle drains the
    /// task cursor. Also acts as a soft barrier (each worker touches the
    /// round when it reaches it in queue order).
    pub fn encode_bundles(&self, bundles: Vec<(DocId, EventBundle)>) -> Vec<(DocId, Vec<u8>)> {
        let round = Arc::new(EncodeRound::new(bundles));
        for w in 0..self.senders.len() {
            self.send(w, Job::Encode(Arc::clone(&round)));
        }
        round.steal();
        while !round.done() {
            thread::yield_now();
        }
        // Wait for workers to drop their handles so the round can be
        // consumed; they already can't add results (cursor is dry).
        let mut round = round;
        let round = loop {
            match Arc::try_unwrap(round) {
                Ok(r) => break r,
                Err(again) => {
                    thread::yield_now();
                    round = again;
                }
            }
        };
        round.into_frames()
    }

    /// One full bidirectional anti-entropy round with `peer` over real
    /// wire frames: digest fan-out, owner-affine extraction, work-stolen
    /// encoding, `Message::decode` on the receiving side, owner-routed
    /// integration, flush. Returns frames shipped (to_self, to_peer).
    pub fn sync_with(&self, peer: &ServerHost) -> (usize, usize) {
        let to_peer = Self::pull(self, peer);
        let to_self = Self::pull(peer, self);
        (to_self, to_peer)
    }

    /// `dst` pulls what it lacks from `src`.
    fn pull(src: &ServerHost, dst: &ServerHost) -> usize {
        let digest = dst.digest_all();
        let bundles = src.bundles_for(&digest);
        let frames = src.encode_bundles(bundles);
        let shipped = frames.len();
        let mut incoming = Vec::new();
        for (_, frame) in &frames {
            match Message::decode(frame).expect("self-encoded frame must decode") {
                Message::Bundles(batch) => incoming.extend(batch),
                Message::Digest(_) => unreachable!("encode round emits bundle frames"),
            }
        }
        dst.receive_bundles(incoming);
        dst.flush();
        shipped
    }

    /// Canonical snapshot of every non-empty document: `(doc, version,
    /// text)` sorted by document id. Byte-comparable against
    /// [`crate::replay_fleet_sequential`] and against other hosts.
    pub fn snapshot(&self) -> Vec<(DocId, Vec<RemoteId>, String)> {
        let (tx, rx) = mpsc::channel();
        for w in 0..self.senders.len() {
            self.send(w, Job::Snapshot(tx.clone()));
        }
        drop(tx);
        let mut replies = 0;
        let mut out = Vec::new();
        for shard in rx.iter() {
            out.extend(shard);
            replies += 1;
        }
        assert_eq!(replies, self.senders.len(), "worker died before snapshot");
        out.sort_by_key(|e| e.0);
        out
    }

    /// The current text of one document (empty string if unknown).
    pub fn text(&self, doc: DocId) -> String {
        let (tx, rx) = mpsc::channel();
        self.send(shard_for(doc, self.senders.len()), Job::Snapshot(tx));
        let shard = rx.recv().expect("worker died before snapshot");
        shard
            .into_iter()
            .find(|(d, _, _)| *d == doc)
            .map(|(_, _, text)| text)
            .unwrap_or_default()
    }

    /// Whether both hosts hold identical documents (versions and text).
    pub fn converged_with(&self, peer: &ServerHost) -> bool {
        self.snapshot() == peer.snapshot()
    }
}

impl Drop for ServerHost {
    fn drop(&mut self) {
        // Closing the job channels is the shutdown signal.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::replay_fleet_sequential;
    use eg_trace::{fleet_workload, FleetSpec};

    fn small_script() -> Arc<[FleetOp]> {
        let spec = FleetSpec {
            docs: 16,
            sessions: 8,
            edits: 400,
            ..FleetSpec::default()
        };
        fleet_workload(&spec).into()
    }

    #[test]
    fn host_matches_sequential_replay() {
        let script = small_script();
        for workers in [1, 3] {
            let host = ServerHost::new(workers);
            let report = host.run_script(&script);
            assert!(report.edits() > 0);
            assert_eq!(host.snapshot(), replay_fleet_sequential("server", &script));
        }
    }

    #[test]
    fn report_counts_match_outcomes() {
        let script = small_script();
        let host = ServerHost::new(2);
        let report = host.run_script(&script);
        let edit_ops = script
            .iter()
            .filter(|op| matches!(op, FleetOp::Insert { .. } | FleetOp::Delete { .. }))
            .count() as u64;
        assert_eq!(report.edits() + report.skipped, edit_ops);
        assert_eq!(report.insert_latency.count(), report.inserts);
        assert_eq!(report.delete_latency.count(), report.deletes);
        // Harvest resets: a second harvest is empty.
        assert_eq!(host.harvest().edits(), 0);
    }

    #[test]
    fn two_hosts_converge_via_wire_sync() {
        let script = small_script();
        let a = ServerHost::with_config(ServerConfig {
            name: "hostA".into(),
            workers: 2,
            ..ServerConfig::default()
        });
        let b = ServerHost::with_config(ServerConfig {
            name: "hostB".into(),
            workers: 3,
            ..ServerConfig::default()
        });
        a.run_script(&script);
        assert!(!a.converged_with(&b));
        let (to_a, to_b) = a.sync_with(&b);
        assert_eq!(to_a, 0, "b had nothing a lacks");
        assert!(to_b > 0);
        assert!(a.converged_with(&b));
        // A second round ships nothing.
        assert_eq!(a.sync_with(&b), (0, 0));
    }

    #[test]
    fn encode_round_frames_decode() {
        let script = small_script();
        let host = ServerHost::new(2);
        host.run_script(&script);
        let bundles = host.bundles_for(&[]);
        assert!(!bundles.is_empty());
        let frames = host.encode_bundles(bundles.clone());
        assert_eq!(frames.len(), bundles.len());
        for ((doc, bundle), (fdoc, frame)) in bundles.iter().zip(&frames) {
            assert_eq!(doc, fdoc);
            match Message::decode(frame).unwrap() {
                Message::Bundles(batch) => {
                    assert_eq!(batch.len(), 1);
                    assert_eq!(batch[0].0, *doc);
                    assert_eq!(&batch[0].1, bundle);
                }
                Message::Digest(_) => panic!("expected bundle frame"),
            }
        }
    }

    /// A scratch persist dir, removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join(format!("eg-server-test-{}-{tag}-{n}", std::process::id()));
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn restarted_host_reopens_cached_and_converges() {
        let tmp = TempDir::new("restart");
        let script = small_script();

        // The peer that never restarts.
        let peer = ServerHost::with_config(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        });
        peer.run_script(&script);

        // Round one: run the script persistently, checkpoint, shut down.
        {
            let host = ServerHost::with_config(ServerConfig {
                workers: 3,
                persist_dir: Some(tmp.0.clone()),
                checkpoint_every: 64,
                ..ServerConfig::default()
            });
            host.run_script(&script);
            assert!(host.checkpoint_all() > 0, "some docs past their cadence");
            assert_eq!(host.checkpoint_all(), 0, "second pass has nothing new");
        }

        // Restart on the same directory — with a different worker count,
        // so the segment files redistribute across a new shard map. Every
        // document must come back through the cached path and the host
        // must match the peer byte for byte.
        let host = ServerHost::with_config(ServerConfig {
            workers: 2,
            persist_dir: Some(tmp.0.clone()),
            checkpoint_every: 64,
            ..ServerConfig::default()
        });
        let expect = replay_fleet_sequential("server", &script);
        let stats = host.persist_stats();
        assert_eq!(stats.docs_loaded, expect.len(), "all edited docs restored");
        assert_eq!(
            stats.docs_cached, stats.docs_loaded,
            "every doc reopened via the checkpoint fast path"
        );
        assert!(host.converged_with(&peer));
        assert_eq!(host.snapshot(), expect);

        // The warm-restored replicas keep working: both hosts apply the
        // script again (deterministic against identical live state) and
        // still agree.
        host.run_script(&script);
        peer.run_script(&script);
        assert!(host.converged_with(&peer));
    }

    #[test]
    fn persistence_survives_mid_run_restart_without_checkpoint_all() {
        // No orderly checkpoint_all: rely on the per-batch appends alone.
        let tmp = TempDir::new("mid-run");
        let script = small_script();
        let expect = replay_fleet_sequential("server", &script);
        {
            let host = ServerHost::with_config(ServerConfig {
                workers: 2,
                persist_dir: Some(tmp.0.clone()),
                checkpoint_every: usize::MAX, // never checkpoint
                ..ServerConfig::default()
            });
            host.run_script(&script);
        }
        let host = ServerHost::with_config(ServerConfig {
            workers: 1,
            persist_dir: Some(tmp.0.clone()),
            ..ServerConfig::default()
        });
        let stats = host.persist_stats();
        assert_eq!(stats.docs_loaded, expect.len());
        assert_eq!(stats.docs_cached, 0, "no checkpoints were ever written");
        assert_eq!(host.snapshot(), expect, "cold replay still exact");
    }

    #[test]
    fn empty_encode_round_is_fine() {
        let host = ServerHost::new(2);
        assert!(host.encode_bundles(Vec::new()).is_empty());
        assert!(host.digest_all().is_empty());
        assert!(host.snapshot().is_empty());
    }
}
