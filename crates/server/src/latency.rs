//! Fixed-footprint latency histograms for the server host.
//!
//! Recording a sample must be allocation-free and O(1) — it sits on the
//! worker hot path next to the zero-alloc merge — and histograms from
//! many workers must merge exactly, so the host can report fleet-wide
//! percentiles without shipping raw samples around. A log-bucketed
//! histogram gives all of that: 16 sub-buckets per octave (~6% relative
//! resolution, exact below 32 ns) over the full `u64` nanosecond range in
//! a flat ~8 KiB table.

/// Sub-buckets per octave as a power of two: 2^4 = 16 buckets, so the
/// relative error of a reported percentile is at most 1/16 ≈ 6.25%.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Values below `2 * SUB` (= 32) get one bucket each (exact); above that
/// each octave `[2^e, 2^(e+1))` splits into `SUB` buckets. Octaves
/// `SUB_BITS..64` each contribute `SUB` buckets on top of the exact range.
const BUCKETS: usize = 2 * SUB + (64 - SUB_BITS as usize - 1) * SUB;

/// A mergeable log-bucketed histogram of `u64` nanosecond samples.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn bucket_index(nanos: u64) -> usize {
    if nanos < (2 * SUB) as u64 {
        nanos as usize
    } else {
        let exp = 63 - nanos.leading_zeros();
        let sub = ((nanos >> (exp - SUB_BITS)) as usize) & (SUB - 1);
        // Octave SUB_BITS (values 16..32) starts at index 16 with sub
        // running 0..16, so the formula is continuous with the exact
        // range below it.
        (exp as usize - SUB_BITS as usize + 1) * SUB + sub
    }
}

/// A representative value (bucket midpoint) for percentile reporting.
fn bucket_value(index: usize) -> u64 {
    if index < 2 * SUB {
        index as u64
    } else {
        let octave = index / SUB - 1;
        let sub = (index % SUB) as u64;
        ((SUB as u64 + sub) << octave) + (1u64 << octave) / 2
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample. O(1), allocation-free.
    #[inline]
    pub fn record(&mut self, nanos: u64) {
        self.buckets[bucket_index(nanos)] += 1;
        self.count += 1;
        self.sum += nanos as u128;
        self.max = self.max.max(nanos);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    pub fn max_nanos(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]`, in nanoseconds. Exact for
    /// samples below 32 ns, within ~6.25% above; `q = 1.0` reports the
    /// exact observed maximum.
    pub fn percentile_nanos(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_value(i).min(self.max);
            }
        }
        self.max
    }

    /// [`Self::percentile_nanos`] in seconds, for the canonical `_s`
    /// bench-JSON fields.
    pub fn percentile_secs(&self, q: f64) -> f64 {
        self.percentile_nanos(q) as f64 * 1e-9
    }

    /// Folds another histogram in; merging is exact (same bucket edges
    /// everywhere), which is what lets per-worker histograms roll up into
    /// one fleet-wide distribution.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_monotonic_and_in_range() {
        let mut probes: Vec<u64> = (0..64)
            .flat_map(|shift| [0u64, 1, 7].map(|near| (1u64 << shift).saturating_add(near)))
            .collect();
        probes.sort_unstable();
        let mut last = 0;
        for v in probes {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            assert!(i >= last, "index not monotonic at {v}");
            last = i;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.percentile_nanos(1.0 / 32.0), 0);
        assert_eq!(h.percentile_nanos(0.5), 15);
        assert_eq!(h.percentile_nanos(1.0), 31);
    }

    #[test]
    fn large_values_within_relative_error() {
        for &v in &[100u64, 1_000, 123_456, 9_999_999, 1 << 40] {
            let mut h = LatencyHistogram::new();
            h.record(v);
            let got = h.percentile_nanos(0.5);
            let err = (got as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 16.0, "value {v} reported as {got} ({err})");
        }
    }

    #[test]
    fn percentiles_are_ordered_and_max_exact() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 37);
        }
        let p50 = h.percentile_nanos(0.5);
        let p99 = h.percentile_nanos(0.99);
        let p999 = h.percentile_nanos(0.999);
        assert!(p50 <= p99 && p99 <= p999);
        assert!(p999 <= h.max_nanos());
        assert_eq!(h.max_nanos(), 370_000);
        assert_eq!(h.count(), 10_000);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..5_000u64 {
            let v = i * i % 100_003;
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max_nanos(), all.max_nanos());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(a.percentile_nanos(q), all.percentile_nanos(q));
        }
    }
}
