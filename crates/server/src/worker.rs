//! The worker thread: one `Replica` shard, one mpsc inbox, no locks.
//!
//! Each worker owns the documents its shard maps to ([`crate::shard_for`])
//! and is the only thread that ever touches them, so every per-document
//! code path — merge, digest, extraction, integration — runs with the
//! exact single-threaded machinery PRs 4–6 optimised (reused trackers,
//! slab arenas, zero-alloc steady state). Cross-thread traffic is plain
//! `std::sync::mpsc`: jobs flow in, replies flow out on per-call channels,
//! and edit batches recycle their backing `Vec`s to the host so the
//! steady-state loop allocates nothing per op.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use eg_dag::RemoteId;
use eg_storage::DocStore;
use eg_sync::{DocId, Message, Replica};
use eg_trace::FleetOp;
use egwalker::EventBundle;

use crate::fleet::{apply_fleet_op, FleetOutcome, SessionNames};
use crate::latency::LatencyHistogram;
use crate::shard::shard_for;

/// A batch of edit submissions: indices into a shared script plus the
/// submit timestamp for end-to-end (queue + merge) latency. The `items`
/// vector is recycled back to the host after processing.
pub(crate) struct EditBatch {
    pub script: Arc<[FleetOp]>,
    pub items: Vec<(u32, Instant)>,
}

/// Merge/latency counters one worker accumulates between harvests, and
/// the host's roll-up of all of them (histograms merge exactly).
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    pub inserts: u64,
    pub deletes: u64,
    /// Edit ops that reduced to nothing (delete on an empty document).
    pub skipped: u64,
    pub insert_latency: LatencyHistogram,
    pub delete_latency: LatencyHistogram,
}

impl LoadReport {
    /// Total merged edit ops.
    pub fn edits(&self) -> u64 {
        self.inserts + self.deletes
    }

    pub fn merge(&mut self, other: &LoadReport) {
        self.inserts += other.inserts;
        self.deletes += other.deletes;
        self.skipped += other.skipped;
        self.insert_latency.merge(&other.insert_latency);
        self.delete_latency.merge(&other.delete_latency);
    }
}

/// A work-stealing wire-encode round. The coordinator enqueues one
/// `Job::Encode(Arc<EncodeRound>)` per worker *and participates itself*:
/// everyone pulls task indices from a shared atomic cursor, so however
/// many workers are idle right now do the encoding, and a pool drowning
/// in edits degrades gracefully to coordinator-only encoding instead of
/// stalling the round. Encoding needs no shard state — the bundles are
/// extracted, owned data — which is why this is the one job that ignores
/// affinity.
pub(crate) struct EncodeRound {
    tasks: Vec<(DocId, EventBundle)>,
    next: AtomicUsize,
    remaining: AtomicUsize,
    results: Vec<OnceLock<Vec<u8>>>,
}

impl EncodeRound {
    pub(crate) fn new(tasks: Vec<(DocId, EventBundle)>) -> Self {
        let n = tasks.len();
        EncodeRound {
            tasks,
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(n),
            results: (0..n).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Claims and encodes tasks until the cursor runs dry.
    pub(crate) fn steal(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.tasks.len() {
                return;
            }
            let (doc, bundle) = &self.tasks[i];
            let frame = Message::Bundles(vec![(*doc, bundle.clone())]).encode();
            self.results[i]
                .set(frame)
                .expect("encode task claimed twice");
            self.remaining.fetch_sub(1, Ordering::Release);
        }
    }

    pub(crate) fn done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// Consumes the finished round into `(doc, frame)` pairs. Panics if
    /// called before [`Self::done`].
    pub(crate) fn into_frames(self) -> Vec<(DocId, Vec<u8>)> {
        assert!(self.remaining.load(Ordering::Acquire) == 0);
        self.tasks
            .iter()
            .map(|(d, _)| *d)
            .zip(
                self.results
                    .into_iter()
                    .map(|c| c.into_inner().expect("missing encode result")),
            )
            .collect()
    }
}

/// Per-worker construction parameters, handed to the spawned thread.
pub(crate) struct WorkerCtx {
    pub host_name: String,
    /// This worker's index in the pool (its shard id).
    pub index: usize,
    /// Total pool size — with `index`, determines which persisted segment
    /// files this worker claims at startup.
    pub workers: usize,
    pub persist_dir: Option<PathBuf>,
    pub checkpoint_every: usize,
}

/// What the persistence layer restored at worker startup, summed across
/// the pool by [`crate::ServerHost::persist_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Documents restored from segment files.
    pub docs_loaded: usize,
    /// Of those, how many opened through the cached-load fast path (a
    /// checkpoint resolved; the rest replayed their history cold).
    pub docs_cached: usize,
}

impl PersistStats {
    pub fn merge(&mut self, other: &PersistStats) {
        self.docs_loaded += other.docs_loaded;
        self.docs_cached += other.docs_cached;
    }
}

/// The worker-private persistence layer: one open [`DocStore`] per owned
/// document. Edits and received bundles are appended after every batch
/// (crash-safe: a torn tail loses at most the last batch), checkpoints
/// are written whenever a store's event counter passes the cadence.
struct Persistence {
    dir: PathBuf,
    checkpoint_every: usize,
    stores: HashMap<DocId, DocStore>,
    stats: PersistStats,
}

impl Persistence {
    fn doc_path(dir: &Path, doc: DocId) -> PathBuf {
        dir.join(format!("doc-{}.seg", doc.0))
    }

    /// Opens the persist dir, claims every segment file whose document
    /// shards to this worker, and installs the restored documents into
    /// `replica`. Documents are materialised through the cached path when
    /// their file holds a usable checkpoint.
    fn open(
        dir: PathBuf,
        index: usize,
        workers: usize,
        checkpoint_every: usize,
        replica: &mut Replica,
    ) -> Self {
        std::fs::create_dir_all(&dir).expect("create persist dir");
        let mut this = Persistence {
            dir,
            checkpoint_every,
            stores: HashMap::new(),
            stats: PersistStats::default(),
        };
        let entries = std::fs::read_dir(&this.dir).expect("scan persist dir");
        for entry in entries {
            let entry = entry.expect("read persist dir entry");
            let name = entry.file_name();
            let Some(doc) = name
                .to_str()
                .and_then(|n| n.strip_prefix("doc-"))
                .and_then(|n| n.strip_suffix(".seg"))
                .and_then(|n| n.parse::<u64>().ok())
                .map(DocId)
            else {
                continue;
            };
            if shard_for(doc, workers) != index {
                continue;
            }
            let (store, loaded) = DocStore::open(entry.path())
                .unwrap_or_else(|e| panic!("reopen segment store for doc {}: {e}", doc.0));
            if !loaded.oplog.is_empty() {
                this.stats.docs_loaded += 1;
                if loaded.cached {
                    this.stats.docs_cached += 1;
                }
                replica.install_doc(doc, loaded.oplog, loaded.branch);
            }
            this.stores.insert(doc, store);
        }
        this
    }

    /// Appends everything new in `doc` past its persisted frontier, and
    /// writes a checkpoint when the cadence counter fills up.
    fn persist(&mut self, replica: &Replica, doc: DocId) {
        let Some((oplog, branch)) = replica.doc_parts(doc) else {
            return;
        };
        let store = self.stores.entry(doc).or_insert_with(|| {
            let (store, _) =
                DocStore::open(Self::doc_path(&self.dir, doc)).expect("create segment store");
            store
        });
        store.append_new(oplog).expect("append to segment store");
        if store.events_since_checkpoint() >= self.checkpoint_every {
            store.write_checkpoint(oplog, branch).expect("checkpoint");
        }
    }

    /// Forces a checkpoint on every owned document with events past its
    /// last checkpoint. Returns how many checkpoints were written.
    fn checkpoint_all(&mut self, replica: &Replica) -> usize {
        let mut written = 0;
        for doc in replica.doc_ids() {
            let Some((oplog, branch)) = replica.doc_parts(doc) else {
                continue;
            };
            let store = self.stores.entry(doc).or_insert_with(|| {
                let (store, _) =
                    DocStore::open(Self::doc_path(&self.dir, doc)).expect("create segment store");
                store
            });
            store.append_new(oplog).expect("append to segment store");
            if store.events_since_checkpoint() > 0 {
                store.write_checkpoint(oplog, branch).expect("checkpoint");
                written += 1;
            }
        }
        written
    }
}

/// Everything a worker can be asked to do. Reply channels are per-call,
/// created by the host for each fan-out.
pub(crate) enum Job {
    /// Apply a batch of fleet edits to this shard.
    Edits(EditBatch),
    /// Report this shard's per-document digests.
    Digests(Sender<Vec<(DocId, Vec<RemoteId>)>>),
    /// Extract bundles this shard has that the peer digest lacks. The
    /// digest is sorted by `DocId` for binary search.
    Extract {
        peer: Arc<Vec<(DocId, Vec<RemoteId>)>>,
        reply: Sender<Vec<(DocId, EventBundle)>>,
    },
    /// Integrate remote bundles into this shard (host pre-routed them by
    /// affinity).
    Receive(Vec<(DocId, EventBundle)>),
    /// Join a work-stealing encode round.
    Encode(Arc<EncodeRound>),
    /// Report a canonical snapshot of this shard.
    Snapshot(Sender<Vec<(DocId, Vec<RemoteId>, String)>>),
    /// Hand over (and reset) the accumulated load report.
    Harvest(Sender<LoadReport>),
    /// Force a checkpoint on every owned document that has events past
    /// its last one; reply with the number written. No-op (0) without a
    /// persist dir.
    Checkpoint(Sender<usize>),
    /// Report what persistence restored at startup (zeroes without a
    /// persist dir).
    Persisted(Sender<PersistStats>),
    /// Pure barrier: ack once every previously queued job is done.
    Flush(Sender<()>),
}

/// The worker main loop. Exits when the host drops all job senders.
pub(crate) fn worker_main(
    ctx: WorkerCtx,
    jobs: Receiver<Job>,
    recycle: Sender<Vec<(u32, Instant)>>,
) {
    let mut replica = Replica::new(&ctx.host_name);
    let mut names = SessionNames::new(&ctx.host_name);
    let mut report = LoadReport::default();
    let mut persist = ctx.persist_dir.map(|dir| {
        Persistence::open(
            dir,
            ctx.index,
            ctx.workers,
            ctx.checkpoint_every,
            &mut replica,
        )
    });
    // Scratch list of documents an edit batch touched, reused per batch.
    let mut touched: Vec<DocId> = Vec::new();

    while let Ok(job) = jobs.recv() {
        match job {
            Job::Edits(batch) => {
                for &(idx, submitted) in &batch.items {
                    let op = &batch.script[idx as usize];
                    if persist.is_some() {
                        if let FleetOp::Insert { doc, .. } | FleetOp::Delete { doc, .. } = op {
                            let doc = DocId(*doc);
                            if !touched.contains(&doc) {
                                touched.push(doc);
                            }
                        }
                    }
                    let outcome = apply_fleet_op(&mut replica, &mut names, op);
                    let nanos = submitted.elapsed().as_nanos() as u64;
                    match outcome {
                        FleetOutcome::Insert => {
                            report.inserts += 1;
                            report.insert_latency.record(nanos);
                        }
                        FleetOutcome::Delete => {
                            report.deletes += 1;
                            report.delete_latency.record(nanos);
                        }
                        FleetOutcome::Skipped => report.skipped += 1,
                        FleetOutcome::NonEdit => {}
                    }
                }
                if let Some(p) = persist.as_mut() {
                    for doc in touched.drain(..) {
                        p.persist(&replica, doc);
                    }
                }
                let mut items = batch.items;
                items.clear();
                // Host gone mid-shutdown: recycling is best-effort.
                let _ = recycle.send(items);
            }
            Job::Digests(reply) => {
                let _ = reply.send(replica.digest_all());
            }
            Job::Extract { peer, reply } => {
                let mut out = Vec::new();
                for doc in replica.doc_ids() {
                    let have = match peer.binary_search_by_key(&doc, |e| e.0) {
                        Ok(i) => peer[i].1.as_slice(),
                        Err(_) => &[],
                    };
                    let bundle = replica.bundle_since_doc(doc, have);
                    if !bundle.is_empty() {
                        out.push((doc, bundle));
                    }
                }
                let _ = reply.send(out);
            }
            Job::Receive(bundles) => {
                for (doc, bundle) in &bundles {
                    replica.receive_doc(*doc, bundle);
                }
                if let Some(p) = persist.as_mut() {
                    for (doc, _) in &bundles {
                        p.persist(&replica, *doc);
                    }
                }
            }
            Job::Encode(round) => round.steal(),
            Job::Snapshot(reply) => {
                let _ = reply.send(replica.snapshot());
            }
            Job::Harvest(reply) => {
                let _ = reply.send(std::mem::take(&mut report));
            }
            Job::Checkpoint(reply) => {
                let written = persist.as_mut().map_or(0, |p| p.checkpoint_all(&replica));
                let _ = reply.send(written);
            }
            Job::Persisted(reply) => {
                let _ = reply.send(
                    persist
                        .as_ref()
                        .map_or_else(PersistStats::default, |p| p.stats),
                );
            }
            Job::Flush(reply) => {
                let _ = reply.send(());
            }
        }
    }
}
