//! Crash-safety and cached-load equivalence suites for the segment store.
//!
//! The two ISSUE-level properties:
//!
//! * truncating a segment file at **any** byte recovers the longest valid
//!   prefix — no panic, and no CRC-complete record is ever lost;
//! * opening through a checkpoint (`open_cached`) is byte-identical to a
//!   cold full replay (`checkout_tip`), across generated traces,
//!   checkpoint cadences, and restart points.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use eg_storage::{scan_frames, DocStore, RECORD_EVENTS};
use egwalker::testgen::{random_oplog, SmallRng};
use egwalker::OpLog;

/// A fresh temp-file path (no tempfile crate in-tree; hand-rolled from the
/// process ID plus a counter).
fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "eg-storage-test-{}-{tag}-{n}.seg",
        std::process::id()
    ))
}

struct TempFile(PathBuf);

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn temp_file(tag: &str) -> (TempFile, PathBuf) {
    let p = temp_path(tag);
    (TempFile(p.clone()), p)
}

/// Grows a single-author document while persisting and reopening at every
/// step boundary: multi-record files, interleaved checkpoints, reopen
/// equivalence after each round.
#[test]
fn incremental_persist_and_reopen() {
    let (_guard, path) = temp_file("incremental");
    let mut oplog = OpLog::new();
    let agent = oplog.get_or_create_agent("alice");
    let (mut store, loaded) = DocStore::open(&path).expect("create");
    assert!(loaded.oplog.is_empty());
    assert!(!loaded.cached);
    drop(store);

    let mut rng = SmallRng::new(77);
    for round in 0..12 {
        // Reopen (as after a restart), verify, and continue appending.
        let (s, loaded) = DocStore::open(&path).expect("reopen");
        store = s;
        assert_eq!(loaded.oplog.len(), oplog.len(), "round {round}");
        assert_eq!(loaded.branch, oplog.checkout_tip(), "round {round}");
        if round > 0 {
            assert!(loaded.cached, "round {round}: checkpoint should resolve");
        }

        for _ in 0..10 {
            let len = oplog.checkout_tip().len_chars();
            if len > 4 && rng.unit_f64() < 0.3 {
                let pos = rng.below(len - 2);
                oplog.add_delete(agent, pos, 1 + rng.below(2));
            } else {
                let pos = if len == 0 { 0 } else { rng.below(len + 1) };
                oplog.add_insert(agent, pos, "ab");
            }
        }
        store.append_new(&oplog).expect("append");
        store
            .write_checkpoint(&oplog, &oplog.checkout_tip())
            .expect("checkpoint");
    }
    let (_, loaded) = DocStore::open(&path).expect("final open");
    assert_eq!(loaded.branch, oplog.checkout_tip());
    assert!(loaded.cached);
}

/// Checkpoints taken at mid-history versions (including ones the tail is
/// concurrent with) must still reopen byte-identical to a cold replay.
#[test]
fn open_cached_equivalence_across_traces_and_cut_points() {
    for seed in 0..6u64 {
        let oplog = random_oplog(seed, 300, 3, 0.25);
        let expect = oplog.checkout_tip();
        let all: Vec<usize> = (0..oplog.len()).collect();
        for frac in [1usize, 2, 3, 4] {
            let cut = (oplog.len() * frac / 4).max(1);
            let version = oplog.graph.find_dominators(&all[..cut]);
            let (_guard, path) = temp_file("equiv");
            let (mut store, _) = DocStore::open(&path).expect("create");
            store.append_new(&oplog).expect("events");
            store
                .write_checkpoint(&oplog, &oplog.checkout(version.as_slice()))
                .expect("checkpoint");
            drop(store);

            let (_, loaded) = DocStore::open(&path).expect("reopen");
            assert!(loaded.cached, "seed {seed} frac {frac}");
            assert_eq!(loaded.oplog.len(), oplog.len());
            assert_eq!(
                loaded.branch.content, expect.content,
                "seed {seed} frac {frac}"
            );
            assert_eq!(loaded.branch.version, expect.version);
        }
    }
}

/// The crash-recovery property: for a file with several event and
/// checkpoint records, truncation at EVERY byte offset opens without
/// panicking, loses no CRC-complete event record, and still matches a
/// cold replay of whatever survived. The recovered file accepts further
/// appends.
#[test]
fn truncation_at_any_byte_recovers_longest_valid_prefix() {
    let (_guard, path) = temp_file("trunc-src");
    let mut oplog = OpLog::new();
    let agent = oplog.get_or_create_agent("alice");
    let (mut store, _) = DocStore::open(&path).expect("create");
    for round in 0..6 {
        for i in 0..8 {
            oplog.add_insert(agent, (round * 8 + i).min(oplog.len()), "x");
        }
        store.append_new(&oplog).expect("append");
        if round % 2 == 1 {
            store
                .write_checkpoint(&oplog, &oplog.checkout_tip())
                .expect("checkpoint");
        }
    }
    drop(store);
    let bytes = std::fs::read(&path).expect("read segment");

    // Ground truth: cumulative event counts at each complete-frame
    // boundary, from the (independently tested) frame scanner.
    let (frames, valid) = scan_frames(&bytes).expect("scan");
    assert_eq!(valid, bytes.len(), "source file has no torn tail");
    assert!(frames.len() >= 9, "events + checkpoints recorded");
    let mut boundaries: Vec<(usize, usize)> = vec![(eg_storage::HEADER_LEN, 0)];
    {
        let mut pos = eg_storage::HEADER_LEN;
        let mut events = 0usize;
        for f in &frames {
            pos += f.payload.len() + eg_storage::FRAME_OVERHEAD;
            if f.kind == RECORD_EVENTS {
                events += eg_encoding::decode_bundle(f.payload)
                    .expect("bundle")
                    .runs
                    .iter()
                    .map(|r| r.len())
                    .sum::<usize>();
            }
            boundaries.push((pos, events));
        }
    }

    for cut in 0..=bytes.len() {
        let (_g, p) = temp_file("trunc");
        std::fs::write(&p, &bytes[..cut]).expect("write prefix");
        let (mut reopened, loaded) =
            DocStore::open(&p).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        let expected_events = boundaries
            .iter()
            .rev()
            .find(|&&(off, _)| off <= cut)
            .map(|&(_, ev)| ev)
            .unwrap_or(0);
        assert_eq!(
            loaded.oplog.len(),
            expected_events,
            "cut {cut}: longest valid prefix, nothing more, nothing less"
        );
        assert_eq!(loaded.branch, loaded.oplog.checkout_tip(), "cut {cut}");

        // The truncated store keeps working: append the missing tail.
        if loaded.oplog.len() < oplog.len() {
            reopened.append_new(&oplog).expect("re-append");
            let (_, healed) = DocStore::open(&p).expect("healed open");
            assert_eq!(healed.oplog.len(), oplog.len(), "cut {cut}");
            assert_eq!(healed.branch, oplog.checkout_tip(), "cut {cut}");
        }
    }
}

/// Flipping any single bit inside a committed record must never panic on
/// open: either the CRC rejects the frame (file truncates there) or — for
/// the few bits the CRC itself occupies — the frame dies with it.
#[test]
fn single_bit_corruption_never_panics() {
    let (_guard, path) = temp_file("bitflip-src");
    let mut oplog = OpLog::new();
    let agent = oplog.get_or_create_agent("alice");
    let (mut store, _) = DocStore::open(&path).expect("create");
    oplog.add_insert(agent, 0, "hello world");
    store.append_new(&oplog).expect("append");
    store
        .write_checkpoint(&oplog, &oplog.checkout_tip())
        .expect("checkpoint");
    drop(store);
    let bytes = std::fs::read(&path).expect("read");

    let mut rng = SmallRng::new(99);
    for _ in 0..400 {
        let mut corrupt = bytes.clone();
        let byte = rng.below(corrupt.len());
        corrupt[byte] ^= 1 << rng.below(8);
        let (_g, p) = temp_file("bitflip");
        std::fs::write(&p, &corrupt).expect("write");
        // Header corruption is a BadMagic error; anything else recovers a
        // prefix. Either way: no panic.
        let _ = DocStore::open(&p);
    }
}

/// The bundle-appending path is incremental: appending when nothing is new
/// writes nothing, and persisted frontiers survive reopen.
#[test]
fn append_is_incremental_and_idempotent() {
    let (_guard, path) = temp_file("idempotent");
    let mut oplog = OpLog::new();
    let agent = oplog.get_or_create_agent("alice");
    let (mut store, _) = DocStore::open(&path).expect("create");
    oplog.add_insert(agent, 0, "abc");
    assert_eq!(store.append_new(&oplog).expect("first"), 3);
    assert_eq!(store.append_new(&oplog).expect("repeat"), 0);
    let size = std::fs::metadata(&path).expect("meta").len();
    assert_eq!(store.append_new(&oplog).expect("repeat 2"), 0);
    assert_eq!(std::fs::metadata(&path).expect("meta").len(), size);
    assert_eq!(store.persisted_version(), oplog.version());

    oplog.add_insert(agent, 3, "def");
    assert_eq!(store.append_new(&oplog).expect("second"), 3);
    assert_eq!(store.events_since_checkpoint(), 6);
    store
        .write_checkpoint(&oplog, &oplog.checkout_tip())
        .expect("checkpoint");
    assert_eq!(store.events_since_checkpoint(), 0);
}
