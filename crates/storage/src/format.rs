//! Byte-level segment format: CRC-delimited record frames plus the
//! checkpoint payload codec.
//!
//! Everything here is pure (`&[u8]` in, values out) and panic-free on
//! arbitrary input — the nightly mutation fuzz loop drives
//! [`scan_frames`], [`read_checkpoint`], [`decode_snapshot`], and
//! [`decode_checkpoint`] directly.
//!
//! ## Layout
//!
//! A segment file is a fixed header followed by zero or more frames:
//!
//! ```text
//! header  := "EGSEG1" u8(format_version)
//! frame   := u8(kind) u32le(payload_len) payload u32le(crc)
//! ```
//!
//! The CRC covers `kind`, `payload_len`, and `payload`, so neither a torn
//! length field nor a torn payload can be mistaken for a committed record.
//! [`scan_frames`] consumes frames until the first incomplete or
//! CRC-invalid one and reports how many bytes of the file were valid; the
//! store truncates the file there at recovery (a torn tail write is
//! expected after a crash, never a panic).
//!
//! Frame kinds:
//!
//! * [`RECORD_EVENTS`] — an EGWB event bundle ([`eg_encoding::encode_bundle`]),
//!   the same codec used on the wire.
//! * [`RECORD_CHECKPOINT`] — a materialised document at a version: the
//!   remote-ID frontier, the full text, and two optional
//!   byte-length-prefixed sections — a [`TrackerSnapshot`] taken at that
//!   version (the §3.5 cached-load state) and a bulk-loadable oplog
//!   image ([`eg_encoding::encode_oplog_image`]). [`read_checkpoint`]
//!   parses the payload shallowly, leaving both heavy sections as
//!   borrowed slices so the loader can skip whichever it doesn't need.

use eg_dag::RemoteId;
use eg_encoding::crc32;
use eg_encoding::varint::{self, DecodeError};
use eg_rle::{DTRange, HasLength};
use egwalker::tracker::{CrdtSpan, SpState};
use egwalker::TrackerSnapshot;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 6] = b"EGSEG1";
/// Current format version (the byte after the magic).
pub const FORMAT_VERSION: u8 = 1;
/// Total header length in bytes.
pub const HEADER_LEN: usize = SEGMENT_MAGIC.len() + 1;

/// Frame kind: an EGWB event bundle.
pub const RECORD_EVENTS: u8 = 1;
/// Frame kind: a checkpoint (frontier + content + tracker snapshot).
pub const RECORD_CHECKPOINT: u8 = 2;

/// Bytes of framing around every payload (`kind` + `len` + `crc`).
pub const FRAME_OVERHEAD: usize = 1 + 4 + 4;

/// The segment file header.
pub fn file_header() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..SEGMENT_MAGIC.len()].copy_from_slice(SEGMENT_MAGIC);
    h[SEGMENT_MAGIC.len()] = FORMAT_VERSION;
    h
}

/// Appends one framed record to `out`.
pub fn push_frame(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    let start = out.len();
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// One frame as scanned from a segment file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawFrame<'a> {
    /// The record kind ([`RECORD_EVENTS`] / [`RECORD_CHECKPOINT`]).
    pub kind: u8,
    /// The payload bytes (CRC already verified).
    pub payload: &'a [u8],
}

/// Scans the complete, CRC-valid frames at the start of a segment file.
///
/// Returns the frames and the length of the valid prefix (header plus
/// whole frames); anything past that point is a torn or corrupt tail for
/// the caller to truncate. Unknown frame kinds also stop the scan — a
/// newer-format record and everything after it are unreadable to this
/// version, and keeping the prefix is the conservative recovery.
///
/// Errors only when the file cannot be ours at all: too short to hold a
/// full header is reported as a valid prefix of 0 frames (a torn header
/// write), but a complete header with the wrong magic or version is
/// [`DecodeError::BadMagic`].
pub fn scan_frames(bytes: &[u8]) -> Result<(Vec<RawFrame<'_>>, usize), DecodeError> {
    let Some(&version) = bytes.get(SEGMENT_MAGIC.len()) else {
        // Shorter than a full header — a torn header write committed
        // nothing, but bytes that aren't a magic prefix are not ours.
        if !SEGMENT_MAGIC.starts_with(bytes) {
            return Err(DecodeError::BadMagic);
        }
        return Ok((Vec::new(), 0));
    };
    if bytes.get(..SEGMENT_MAGIC.len()) != Some(SEGMENT_MAGIC.as_slice())
        || version != FORMAT_VERSION
    {
        return Err(DecodeError::BadMagic);
    }

    let mut frames = Vec::new();
    let mut pos = HEADER_LEN;
    loop {
        let rest = bytes.get(pos..).unwrap_or(&[]);
        if rest.len() < FRAME_OVERHEAD {
            break;
        }
        let (Some(&kind), Some(len)) = (rest.first(), rest.get(1..5).and_then(le_u32)) else {
            break;
        };
        let len = len as usize;
        let Some(frame_end) = len.checked_add(FRAME_OVERHEAD) else {
            break;
        };
        if rest.len() < frame_end {
            break;
        }
        // `body` is kind + len + payload; the CRC trailer follows it.
        let body_end = frame_end - 4;
        let (Some(body), Some(stored)) = (
            rest.get(..body_end),
            rest.get(body_end..frame_end).and_then(le_u32),
        ) else {
            break;
        };
        if crc32(body) != stored {
            break;
        }
        if kind != RECORD_EVENTS && kind != RECORD_CHECKPOINT {
            break;
        }
        let Some(payload) = rest.get(5..body_end) else {
            break;
        };
        frames.push(RawFrame { kind, payload });
        pos += frame_end;
    }
    Ok((frames, pos))
}

/// Little-endian u32 from an exactly-4-byte slice.
fn le_u32(bytes: &[u8]) -> Option<u32> {
    let arr: [u8; 4] = bytes.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}

/// A checkpoint record: the materialised document at a version, plus the
/// tracker state needed to resume a walk from there.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Checkpoint {
    /// The version the checkpoint reflects, as portable remote IDs.
    pub version: Vec<RemoteId>,
    /// The document text at `version`.
    pub content: String,
    /// The tracker state at `version` (prepare == effect == `version`).
    /// `None` means the loader re-derives tracker state with a fresh
    /// conflict-window walk — still O(tail), just without the warm resume.
    pub snapshot: Option<TrackerSnapshot>,
    /// A bulk-loadable image of the whole oplog at `version`
    /// ([`eg_encoding::encode_oplog_image`]). When present and valid, the
    /// loader restores the oplog from it and replays only the event
    /// records *after* this checkpoint — the O(tail) open. `None` (or a
    /// corrupt image) downgrades to replaying every event record.
    pub oplog_image: Option<Vec<u8>>,
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    varint::push_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn read_str<'a>(input: &mut &'a [u8]) -> Result<&'a str, DecodeError> {
    let len = varint::read_usize(input)?;
    if input.len() < len {
        return Err(DecodeError::UnexpectedEof);
    }
    let (raw, rest) = input.split_at(len);
    *input = rest;
    std::str::from_utf8(raw).map_err(|_| DecodeError::BadUtf8)
}

/// Serialises a checkpoint payload (the contents of a
/// [`RECORD_CHECKPOINT`] frame).
pub fn encode_checkpoint(ck: &Checkpoint) -> Vec<u8> {
    let mut out = Vec::new();
    varint::push_usize(&mut out, ck.version.len());
    for id in &ck.version {
        push_str(&mut out, &id.agent);
        varint::push_usize(&mut out, id.seq);
    }
    push_str(&mut out, &ck.content);
    match &ck.snapshot {
        None => out.push(0),
        Some(snap) => {
            // Byte-length-prefixed so readers can skip the section: a
            // loader with a sequential tail never parses the snapshot.
            out.push(1);
            let body = encode_snapshot(snap);
            varint::push_usize(&mut out, body.len());
            out.extend_from_slice(&body);
        }
    }
    match &ck.oplog_image {
        None => out.push(0),
        Some(img) => {
            out.push(1);
            varint::push_usize(&mut out, img.len());
            out.extend_from_slice(img);
        }
    }
    out
}

fn encode_snapshot(snap: &TrackerSnapshot) -> Vec<u8> {
    let mut out = Vec::new();
    varint::push_usize(&mut out, snap.records.len());
    for r in &snap.records {
        varint::push_usize(&mut out, r.id.start);
        varint::push_usize(&mut out, r.id.len());
        varint::push_u64(&mut out, r.origin_left as u64);
        varint::push_u64(&mut out, r.origin_right as u64);
        let (tag, del) = match r.sp {
            SpState::NotInsertedYet => (0u8, 0u32),
            SpState::Ins => (1, 0),
            SpState::Del(n) => (2, n),
        };
        out.push(tag | if r.se_deleted { 4 } else { 0 });
        if tag == 2 {
            varint::push_u64(&mut out, del as u64);
        }
    }
    varint::push_usize(&mut out, snap.del_runs.len());
    for &(events, target, fwd) in &snap.del_runs {
        varint::push_usize(&mut out, events.start);
        varint::push_usize(&mut out, events.len());
        varint::push_usize(&mut out, target.start);
        out.push(fwd as u8);
    }
    out
}

/// A checkpoint parsed shallowly: the version and document text are
/// decoded, but the heavy sections — tracker snapshot and oplog image —
/// stay as borrowed byte slices until the loader decides it needs them
/// (a sequential tail never parses the snapshot at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointView<'a> {
    /// The number of remote IDs in the version section.
    pub n_version: usize,
    /// The raw version section (`n_version` × (agent string, seq)).
    version_bytes: &'a [u8],
    /// The document text at the checkpoint version.
    pub content: &'a str,
    /// The raw tracker-snapshot section, if present
    /// ([`decode_snapshot`]).
    pub snapshot: Option<&'a [u8]>,
    /// The raw oplog image, if present
    /// ([`eg_encoding::decode_oplog_image`]).
    pub oplog_image: Option<&'a [u8]>,
}

impl<'a> CheckpointView<'a> {
    /// Iterates the checkpoint's version as borrowed `(agent, seq)`
    /// pairs. The section was structurally validated by
    /// [`read_checkpoint`], so iteration cannot fail.
    pub fn version_ids(&self) -> impl Iterator<Item = (&'a str, usize)> + 'a {
        let mut input = self.version_bytes;
        let n = self.n_version;
        (0..n).map(move |_| {
            // `read_checkpoint` already walked this section, so both
            // reads succeed; the fallbacks are dead code kept so the
            // iterator stays panic-free by construction.
            let agent = read_str(&mut input);
            debug_assert!(agent.is_ok(), "validated by read_checkpoint");
            let seq = varint::read_usize(&mut input);
            debug_assert!(seq.is_ok(), "validated by read_checkpoint");
            (agent.unwrap_or(""), seq.unwrap_or(0))
        })
    }
}

/// Shallowly parses a checkpoint payload: structure and UTF-8 of every
/// section are validated (never panicking on arbitrary bytes), but the
/// snapshot stays raw for [`decode_snapshot`] and the image for
/// [`eg_encoding::decode_oplog_image`]. Graph-level validation —
/// resolving the remote frontier, [`TrackerSnapshot::validate`] — is the
/// loader's job, because it needs the oplog.
pub fn read_checkpoint(bytes: &[u8]) -> Result<CheckpointView<'_>, DecodeError> {
    let input = &mut { bytes };
    let n_version = varint::read_usize(input)?;
    let version_bytes = *input;
    for _ in 0..n_version {
        read_str(input)?;
        varint::read_usize(input)?;
    }
    // `input` is a tail of `version_bytes`, so the subtraction holds.
    let consumed = version_bytes.len().saturating_sub(input.len());
    let version_bytes = version_bytes.get(..consumed).unwrap_or(&[]);
    let content = read_str(input)?;
    fn section<'a>(input: &mut &'a [u8]) -> Result<Option<&'a [u8]>, DecodeError> {
        let (&present, rest) = input.split_first().ok_or(DecodeError::UnexpectedEof)?;
        *input = rest;
        match present {
            0 => Ok(None),
            1 => {
                let len = varint::read_usize(input)?;
                if input.len() < len {
                    return Err(DecodeError::UnexpectedEof);
                }
                let (raw, rest) = input.split_at(len);
                *input = rest;
                Ok(Some(raw))
            }
            _ => Err(DecodeError::Corrupt),
        }
    }
    let snapshot = section(input)?;
    let oplog_image = section(input)?;
    if !input.is_empty() {
        return Err(DecodeError::Corrupt);
    }
    Ok(CheckpointView {
        n_version,
        version_bytes,
        content,
        snapshot,
        oplog_image,
    })
}

/// Fully decodes a checkpoint payload into its owned form.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, DecodeError> {
    let view = read_checkpoint(bytes)?;
    Ok(Checkpoint {
        version: view
            .version_ids()
            .map(|(agent, seq)| RemoteId {
                agent: agent.to_owned(),
                seq,
            })
            .collect(),
        content: view.content.to_owned(),
        snapshot: view.snapshot.map(decode_snapshot).transpose()?,
        oplog_image: view.oplog_image.map(<[u8]>::to_vec),
    })
}

/// Decodes the tracker-snapshot section of a checkpoint
/// ([`CheckpointView::snapshot`]).
pub fn decode_snapshot(bytes: &[u8]) -> Result<TrackerSnapshot, DecodeError> {
    let input = &mut { bytes };
    let n_records = varint::read_usize(input)?;
    let mut records = Vec::new();
    for _ in 0..n_records {
        let start = varint::read_usize(input)?;
        let len = varint::read_usize(input)?;
        let end = start.checked_add(len).ok_or(DecodeError::Corrupt)?;
        let origin_left = varint::read_u64(input)? as usize;
        let origin_right = varint::read_u64(input)? as usize;
        let (&flags, rest) = input.split_first().ok_or(DecodeError::UnexpectedEof)?;
        *input = rest;
        if flags & !7 != 0 {
            return Err(DecodeError::Corrupt);
        }
        let sp = match flags & 3 {
            0 => SpState::NotInsertedYet,
            1 => SpState::Ins,
            2 => {
                let n = varint::read_u64(input)?;
                SpState::Del(u32::try_from(n).map_err(|_| DecodeError::Corrupt)?)
            }
            _ => return Err(DecodeError::Corrupt),
        };
        records.push(CrdtSpan {
            id: DTRange::from(start..end),
            origin_left,
            origin_right,
            sp,
            se_deleted: flags & 4 != 0,
        });
    }
    let n_runs = varint::read_usize(input)?;
    let mut del_runs = Vec::new();
    for _ in 0..n_runs {
        let e_start = varint::read_usize(input)?;
        let len = varint::read_usize(input)?;
        let e_end = e_start.checked_add(len).ok_or(DecodeError::Corrupt)?;
        let t_start = varint::read_usize(input)?;
        let t_end = t_start.checked_add(len).ok_or(DecodeError::Corrupt)?;
        let (&fwd, rest) = input.split_first().ok_or(DecodeError::UnexpectedEof)?;
        *input = rest;
        if fwd > 1 {
            return Err(DecodeError::Corrupt);
        }
        del_runs.push((
            DTRange::from(e_start..e_end),
            DTRange::from(t_start..t_end),
            fwd == 1,
        ));
    }
    if !input.is_empty() {
        return Err(DecodeError::Corrupt);
    }
    Ok(TrackerSnapshot { records, del_runs })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            version: vec![
                RemoteId {
                    agent: "alice".into(),
                    seq: 41,
                },
                RemoteId {
                    agent: "bob".into(),
                    seq: 7,
                },
            ],
            content: "héllo wörld".into(),
            snapshot: Some(TrackerSnapshot {
                records: vec![
                    CrdtSpan {
                        id: DTRange::from(0..5),
                        origin_left: usize::MAX,
                        origin_right: usize::MAX - 1,
                        sp: SpState::Ins,
                        se_deleted: false,
                    },
                    CrdtSpan {
                        id: DTRange::from(5..9),
                        origin_left: 4,
                        origin_right: usize::MAX - 1,
                        sp: SpState::Del(2),
                        se_deleted: true,
                    },
                ],
                del_runs: vec![(DTRange::from(9..12), DTRange::from(0..3), true)],
            }),
            oplog_image: Some(b"opaque image bytes".to_vec()),
        }
    }

    #[test]
    fn checkpoint_roundtrip() {
        for ck in [
            Checkpoint::default(),
            sample_checkpoint(),
            Checkpoint {
                snapshot: None,
                ..sample_checkpoint()
            },
        ] {
            let bytes = encode_checkpoint(&ck);
            assert_eq!(decode_checkpoint(&bytes).expect("roundtrip"), ck);
        }
    }

    #[test]
    fn checkpoint_decode_rejects_junk() {
        let good = encode_checkpoint(&sample_checkpoint());
        // Truncations at every byte either fail cleanly or (never) panic.
        for cut in 0..good.len() {
            let _ = decode_checkpoint(&good[..cut]);
        }
        // Trailing garbage is rejected.
        let mut padded = good.clone();
        padded.push(0);
        assert!(decode_checkpoint(&padded).is_err());
    }

    #[test]
    fn frame_scan_stops_at_torn_tail() {
        let mut bytes = file_header().to_vec();
        push_frame(&mut bytes, RECORD_EVENTS, b"payload-1");
        push_frame(&mut bytes, RECORD_CHECKPOINT, b"payload-2");
        let full = bytes.len();
        push_frame(&mut bytes, RECORD_EVENTS, b"torn");
        // Cut inside the last frame: the first two frames survive intact.
        for cut in full..=bytes.len() {
            let (frames, valid) = scan_frames(&bytes[..cut]).expect("scan");
            if cut == bytes.len() {
                assert_eq!(frames.len(), 3);
            } else {
                assert_eq!(frames.len(), 2, "cut at {cut}");
                assert_eq!(valid, full);
                assert_eq!(frames[0].payload, b"payload-1");
                assert_eq!(frames[1].payload, b"payload-2");
            }
        }
    }

    #[test]
    fn frame_scan_rejects_flipped_bits() {
        let mut bytes = file_header().to_vec();
        push_frame(&mut bytes, RECORD_EVENTS, b"payload");
        let good_len = bytes.len();
        push_frame(&mut bytes, RECORD_EVENTS, b"second");
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[good_len + 3] ^= 1 << bit;
            let (frames, valid) = scan_frames(&corrupt).expect("scan");
            assert_eq!(frames.len(), 1);
            assert_eq!(valid, good_len);
        }
    }

    #[test]
    fn foreign_files_are_refused() {
        assert_eq!(
            scan_frames(b"not a segment file"),
            Err(DecodeError::BadMagic)
        );
        // A torn header is recoverable (nothing committed yet)…
        assert_eq!(scan_frames(&file_header()[..3]).expect("scan").0.len(), 0);
        // …but torn bytes that cannot be our header are not ours.
        assert!(scan_frames(b"XY").is_err());
    }
}
