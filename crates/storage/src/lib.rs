//! # Eg-storage: the event graph on disk
//!
//! An append-only *segment store* per document, making the paper's
//! cached-load claim (§3.5/§3.6 — open is O(tail), not O(history))
//! measurable on disk:
//!
//! * [`format`] — CRC-delimited record frames over the EGWB bundle codec,
//!   plus the checkpoint payload (remote-ID frontier, materialised text,
//!   [`egwalker::TrackerSnapshot`]). Pure and panic-free on arbitrary
//!   bytes; a torn tail write is detected and reported, never panicked on.
//! * [`store`] — [`DocStore`]: an open segment file that appends event
//!   bundles as edits commit, writes checkpoints on the caller's cadence,
//!   and reopens documents warm through [`egwalker::OpLog::open_cached`].
//!
//! See `crates/storage/README.md` for the byte layout and recovery rules.

pub mod format;
pub mod store;

pub use format::{
    decode_checkpoint, decode_snapshot, encode_checkpoint, push_frame, read_checkpoint,
    scan_frames, Checkpoint, CheckpointView, RawFrame, FORMAT_VERSION, FRAME_OVERHEAD, HEADER_LEN,
    RECORD_CHECKPOINT, RECORD_EVENTS, SEGMENT_MAGIC,
};
pub use store::{DocStore, LoadedDoc, StorageError};
