//! [`DocStore`]: one document's append-only segment file.
//!
//! The store owns an append handle to the file and remembers which oplog
//! version is already on disk, so persisting after an edit round is
//! "encode the bundle since the persisted frontier, append one frame".
//! Opening scans the file, truncates any torn tail
//! ([`format::scan_frames`]), rebuilds the oplog from the event frames,
//! and materialises the document through the cached-load fast path when a
//! usable checkpoint is present ([`egwalker::OpLog::open_cached`]).

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use eg_encoding::varint::DecodeError;
use eg_encoding::{apply_bundle_bytes, encode_bundle, ApplyBundleError};
use eg_rle::HasLength as _;
use egwalker::walker::{self, WalkerOpts};
use egwalker::{Branch, BundleError, Frontier, OpLog};

use crate::format::{
    self, encode_checkpoint, push_frame, scan_frames, Checkpoint, FRAME_OVERHEAD,
    RECORD_CHECKPOINT, RECORD_EVENTS,
};

/// Everything that can go wrong opening or appending to a segment store.
#[derive(Debug)]
pub enum StorageError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// A CRC-valid record had an undecodable payload (disk corruption
    /// beyond a torn tail, or a file from a different format lineage).
    Decode(DecodeError),
    /// A committed event bundle no longer applies to the log rebuilt from
    /// the records before it (only possible with external tampering).
    Bundle(BundleError),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "segment store I/O: {e}"),
            StorageError::Decode(e) => write!(f, "segment store record: {e}"),
            StorageError::Bundle(e) => write!(f, "segment store bundle: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<DecodeError> for StorageError {
    fn from(e: DecodeError) -> Self {
        StorageError::Decode(e)
    }
}

impl From<BundleError> for StorageError {
    fn from(e: BundleError) -> Self {
        StorageError::Bundle(e)
    }
}

impl From<ApplyBundleError> for StorageError {
    fn from(e: ApplyBundleError) -> Self {
        match e {
            ApplyBundleError::Decode(e) => StorageError::Decode(e),
            ApplyBundleError::Bundle(e) => StorageError::Bundle(e),
        }
    }
}

/// The in-memory result of opening a store: the rebuilt oplog and the
/// materialised document.
#[derive(Debug)]
pub struct LoadedDoc {
    /// The full event graph rebuilt from the segment file.
    pub oplog: OpLog,
    /// The document at the oplog tip.
    pub branch: Branch,
    /// `true` if a checkpoint drove the cached-load fast path; `false`
    /// means a cold full replay (no checkpoint, or one that did not
    /// resolve against the rebuilt log).
    pub cached: bool,
}

/// An open, append-positioned segment file for one document.
#[derive(Debug)]
pub struct DocStore {
    path: PathBuf,
    file: File,
    /// The oplog version already committed to disk as event records.
    persisted: Frontier,
    /// Events appended since the last checkpoint record (the server's
    /// checkpoint cadence counter).
    events_since_checkpoint: usize,
}

impl DocStore {
    /// Opens (or creates) the segment file at `path`, recovering from a
    /// torn tail write by truncating to the last CRC-complete record.
    ///
    /// Returns the store (positioned to append) together with the rebuilt
    /// [`LoadedDoc`].
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, LoadedDoc), StorageError> {
        let path = path.as_ref();
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };

        let (oplog, ck_view, image_len, since_checkpoint) = if bytes.is_empty() {
            std::fs::write(path, format::file_header())?;
            (OpLog::new(), None, None, 0)
        } else {
            let (frames, valid) = scan_frames(&bytes)?;

            // The O(tail) fast path: restore the oplog from the newest
            // checkpoint's bulk image and skip every event record before
            // it (the writer commits covering event records *before* the
            // checkpoint, so they are all contained in the image). A
            // missing or corrupt image downgrades to replaying from the
            // start of the file. The checkpoint itself is only *shallowly*
            // parsed here — whether its tracker snapshot is ever decoded
            // is decided below, after the tail's shape is known.
            let last_ck = frames
                .iter()
                .enumerate()
                .rfind(|(_, f)| f.kind == RECORD_CHECKPOINT);
            let mut ck_view: Option<format::CheckpointView<'_>> = None;
            let mut image_len: Option<usize> = None;
            let mut replay_from = 0;
            let mut oplog = OpLog::new();
            if let Some((i, ck_frame)) = last_ck {
                let view = format::read_checkpoint(ck_frame.payload)?;
                if let Some(img) = view.oplog_image {
                    if let Ok(log) = eg_encoding::decode_oplog_image(img) {
                        image_len = Some(log.len());
                        oplog = log;
                        replay_from = i + 1;
                    }
                }
                ck_view = Some(view);
            }

            let mut since_checkpoint = 0usize;
            for frame in frames.iter().skip(replay_from) {
                match frame.kind {
                    RECORD_EVENTS => {
                        // Streaming apply: no intermediate EventBundle.
                        // Non-atomicity is fine here — `oplog` is local to
                        // this open and discarded on error.
                        let new = apply_bundle_bytes(&mut oplog, frame.payload)
                            .map_err(StorageError::from)?;
                        since_checkpoint += new.len();
                    }
                    RECORD_CHECKPOINT => {
                        // Only reached on the replay (downgrade) path or
                        // for checkpoints before the newest one.
                        since_checkpoint = 0;
                    }
                    // `scan_frames` stops at the first unknown kind, so
                    // this arm is dead; error instead of panicking.
                    _ => return Err(DecodeError::Corrupt.into()),
                }
            }
            if valid == 0 {
                // Torn header: nothing was committed. Start the file over.
                std::fs::write(path, format::file_header())?;
            } else if valid < bytes.len() {
                // Torn or corrupt tail: drop it so appends continue
                // from the last committed record.
                let f = OpenOptions::new().write(true).open(path)?;
                f.set_len(valid as u64)?;
            }
            (oplog, ck_view, image_len, since_checkpoint)
        };

        // Resolve the newest checkpoint against the rebuilt log. Each
        // check that fails downgrades gracefully: an unresolvable frontier
        // means a cold replay, an invalid snapshot means a snapshot-less
        // cached open (fresh conflict-window walk from the checkpoint).
        //
        // When the image restored and the post-checkpoint tail is one
        // linear chain at the checkpoint version, nothing in the tail is
        // concurrent with anything: the raw ops replay verbatim onto the
        // checkpoint text ([`Branch::apply_sequential_tail`]) — no walker,
        // and the snapshot section is skipped without even parsing it.
        // The common single-author reopen stays O(tail). Only a tail with
        // real concurrency pays for decoding the snapshot and resuming
        // the tracker.
        let mut resolved: Option<(
            &str,
            Frontier,
            Option<usize>,
            Option<egwalker::TrackerSnapshot>,
        )> = None;
        if let Some(view) = &ck_view {
            let lvs: Option<Vec<egwalker::LV>> = view
                .version_ids()
                .map(|(agent, seq)| {
                    let a = oplog.agents.agent_id(agent)?;
                    oplog.agents.try_remote_to_lv(a, seq)
                })
                .collect();
            if let Some(lvs) = lvs {
                let frontier = oplog.graph.find_dominators(&lvs);
                let tail_from = image_len.filter(|&from| {
                    oplog
                        .graph
                        .is_sequential_extension(from, frontier.as_slice())
                });
                let snapshot = if tail_from.is_some() {
                    None
                } else {
                    view.snapshot
                        .and_then(|raw| format::decode_snapshot(raw).ok())
                        .filter(|s| s.validate(oplog.len()).is_ok())
                };
                resolved = Some((view.content, frontier, tail_from, snapshot));
            }
        }
        let (branch, cached) = match resolved {
            Some((content, frontier, Some(tail_from), _)) => {
                let mut b = Branch::from_cached(content, frontier);
                b.apply_sequential_tail(&oplog, (tail_from..oplog.len()).into());
                (b, true)
            }
            Some((content, frontier, None, snapshot)) => (
                oplog.open_cached(content, frontier.as_slice(), snapshot.as_ref()),
                true,
            ),
            None => (oplog.checkout_tip(), false),
        };

        let file = OpenOptions::new().append(true).open(path)?;
        let store = DocStore {
            path: path.to_path_buf(),
            file,
            persisted: oplog.version().clone(),
            events_since_checkpoint: since_checkpoint,
        };
        Ok((
            store,
            LoadedDoc {
                oplog,
                branch,
                cached,
            },
        ))
    }

    /// The segment file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The oplog version already committed as event records.
    pub fn persisted_version(&self) -> &Frontier {
        &self.persisted
    }

    /// Events appended since the last checkpoint record was written.
    pub fn events_since_checkpoint(&self) -> usize {
        self.events_since_checkpoint
    }

    /// Appends one event record covering everything in `oplog` past the
    /// persisted frontier. Returns the number of events committed (0 when
    /// already up to date — nothing is written).
    pub fn append_new(&mut self, oplog: &OpLog) -> Result<usize, StorageError> {
        let bundle = oplog.bundle_since_local(self.persisted.as_slice());
        if bundle.runs.is_empty() {
            return Ok(0);
        }
        let events: usize = bundle.runs.iter().map(|r| r.len()).sum();
        let payload = encode_bundle(&bundle);
        let mut frame = Vec::with_capacity(payload.len().saturating_add(FRAME_OVERHEAD));
        push_frame(&mut frame, RECORD_EVENTS, &payload);
        self.file.write_all(&frame)?;
        self.persisted = oplog.version().clone();
        self.events_since_checkpoint += events;
        Ok(events)
    }

    /// Appends a checkpoint record for `branch` (the document at some
    /// version of `oplog`, normally the tip) and resets the cadence
    /// counter. Any unpersisted events are committed first, so the
    /// checkpoint's version is always covered by the event records before
    /// it — the invariant recovery relies on.
    ///
    /// The tracker snapshot is built fresh at the branch version
    /// ([`walker::tracker_at`]); at a critical version it degenerates to
    /// the placeholder and costs nothing to restore.
    pub fn write_checkpoint(&mut self, oplog: &OpLog, branch: &Branch) -> Result<(), StorageError> {
        self.append_new(oplog)?;
        let snapshot = walker::tracker_at(oplog, branch.version.as_slice(), WalkerOpts::default())
            .to_snapshot();
        let ck = Checkpoint {
            version: branch
                .version
                .iter()
                .map(|&lv| oplog.lv_to_remote(lv))
                .collect(),
            content: branch.content.to_string(),
            snapshot: Some(snapshot),
            oplog_image: Some(eg_encoding::encode_oplog_image(oplog)),
        };
        let payload = encode_checkpoint(&ck);
        let mut frame = Vec::with_capacity(payload.len().saturating_add(FRAME_OVERHEAD));
        push_frame(&mut frame, RECORD_CHECKPOINT, &payload);
        self.file.write_all(&frame)?;
        self.events_since_checkpoint = 0;
        Ok(())
    }

    /// Forces the file's data to stable storage (`fdatasync`).
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.file.sync_data()?;
        Ok(())
    }
}
