//! A character-indexed rope: the document-state buffer of the Eg-walker
//! system (paper §3, "Document state").
//!
//! The rope stores UTF-8 text as bounded chunks in an
//! [`eg_content_tree::ContentTree`], giving `O(log n)` insertion and
//! deletion by **character** index (the index space of editing operations).
//! Between merges this is the *only* state Eg-walker keeps in memory, which
//! is where the paper's steady-state memory advantage comes from (§4.4).
//!
//! # Examples
//!
//! ```
//! use eg_rope::Rope;
//! let mut r = Rope::new();
//! r.insert(0, "Helo!");
//! r.insert(3, "l");
//! r.remove(5, 1);
//! assert_eq!(r.to_string(), "Hello");
//! assert_eq!(r.len_chars(), 5);
//! ```

use eg_content_tree::{ContentTree, TreeEntry};
use eg_rle::{HasLength, MergableSpan, SplitableSpan};
use std::fmt;

/// Maximum characters per chunk. Appends merge chunks up to this size;
/// larger insertions are split.
const MAX_CHUNK_CHARS: usize = 64;

/// A bounded chunk of text with cached character and newline counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Chunk {
    text: String,
    chars: usize,
    newlines: usize,
}

impl Chunk {
    fn new(text: &str) -> Self {
        Chunk {
            text: text.to_string(),
            chars: text.chars().count(),
            newlines: text.bytes().filter(|&b| b == b'\n').count(),
        }
    }

    fn byte_of_char(&self, char_idx: usize) -> usize {
        if char_idx >= self.chars {
            return self.text.len();
        }
        self.text
            .char_indices()
            .nth(char_idx)
            .map(|(b, _)| b)
            .unwrap()
    }
}

impl HasLength for Chunk {
    fn len(&self) -> usize {
        self.chars
    }
}

impl SplitableSpan for Chunk {
    fn truncate(&mut self, at: usize) -> Self {
        let byte = self.byte_of_char(at);
        let tail = self.text.split_off(byte);
        let rem = Chunk {
            chars: self.chars - at,
            newlines: tail.bytes().filter(|&b| b == b'\n').count(),
            text: tail,
        };
        self.chars = at;
        self.newlines -= rem.newlines;
        rem
    }
}

impl MergableSpan for Chunk {
    fn can_append(&self, other: &Self) -> bool {
        self.chars + other.chars <= MAX_CHUNK_CHARS
    }

    fn append(&mut self, other: Self) {
        self.text.push_str(&other.text);
        self.chars += other.chars;
        self.newlines += other.newlines;
    }
}

impl TreeEntry for Chunk {
    fn width_cur(&self) -> usize {
        self.chars
    }

    fn width_end(&self) -> usize {
        self.chars
    }
}

/// A rope: text with `O(log n)` insert/delete by character index.
#[derive(Clone, Default)]
pub struct Rope {
    tree: ContentTree<Chunk>,
    len_chars: usize,
}

impl Rope {
    /// Creates an empty rope.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a rope holding `text`.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(text: &str) -> Self {
        let mut r = Self::new();
        r.insert(0, text);
        r
    }

    /// The length in characters (Unicode scalar values).
    pub fn len_chars(&self) -> usize {
        self.len_chars
    }

    /// Returns `true` if the rope holds no text.
    pub fn is_empty(&self) -> bool {
        self.len_chars == 0
    }

    /// Inserts `text` before character `pos`.
    ///
    /// Short insertions splice their bytes straight into an existing
    /// chunk's buffer (no intermediate `String`, no new chunk) — the
    /// zero-allocation path the walker's emit pipeline rides. Longer
    /// insertions and full chunks fall back to chunk building/splitting,
    /// whose allocations amortise over [`MAX_CHUNK_CHARS`]-sized pieces.
    ///
    /// # Panics
    ///
    /// Panics if `pos > self.len_chars()`.
    pub fn insert(&mut self, pos: usize, text: &str) {
        assert!(pos <= self.len_chars, "insert position out of bounds");
        if text.is_empty() {
            return;
        }
        let n_chars = text.chars().count();
        if self.try_insert_in_place(pos, text, n_chars) {
            self.len_chars += n_chars;
            return;
        }
        let mut pos = pos;
        let mut notify = |_: &Chunk, _| {};
        // Feed the text in chunk-sized pieces.
        let mut rest = text;
        while !rest.is_empty() {
            let take_bytes = rest
                .char_indices()
                .nth(MAX_CHUNK_CHARS)
                .map(|(b, _)| b)
                .unwrap_or(rest.len());
            let (piece, tail) = rest.split_at(take_bytes);
            rest = tail;
            let chunk = Chunk::new(piece);
            let chunk_len = chunk.chars;
            let cursor = self.tree.cursor_at_cur_pos(pos);
            self.tree.insert_at(cursor, chunk, &mut notify);
            pos += chunk_len;
            self.len_chars += chunk_len;
        }
    }

    /// Tries to splice `text` into the buffer of an existing chunk around
    /// `pos`, repairing tree widths by delta. Fails (returns `false`) when
    /// no chunk at the position can absorb `n_chars` more characters.
    fn try_insert_in_place(&mut self, pos: usize, text: &str, n_chars: usize) -> bool {
        if n_chars > MAX_CHUNK_CHARS || self.len_chars == 0 {
            return false;
        }
        let cursor = self.tree.cursor_at_cur_pos(pos);
        let entries = self.tree.entries_in_leaf(cursor.leaf);
        // Candidate chunk: the one under the cursor; at a boundary
        // (offset 0 / end of leaf), the previous chunk's tail.
        let (entry_idx, offset) = if cursor.entry_idx < entries.len() && cursor.offset > 0 {
            (cursor.entry_idx, cursor.offset)
        } else if cursor.entry_idx < entries.len() && cursor.entry_idx == 0 {
            (0, 0)
        } else if cursor.entry_idx > 0 {
            (cursor.entry_idx - 1, entries[cursor.entry_idx - 1].chars)
        } else {
            return false;
        };
        if entries[entry_idx].chars + n_chars > MAX_CHUNK_CHARS {
            return false;
        }
        let new_newlines = text.bytes().filter(|&b| b == b'\n').count();
        self.tree.update_entry(cursor.leaf, entry_idx, |c| {
            let byte = c.byte_of_char(offset);
            c.text.insert_str(byte, text);
            c.chars += n_chars;
            c.newlines += new_newlines;
        });
        true
    }

    /// Removes `len` characters starting at character `pos`.
    ///
    /// A removal that stays strictly inside one chunk shifts the chunk's
    /// bytes in place (no allocation); anything wider falls back to the
    /// tree's range deletion.
    ///
    /// # Panics
    ///
    /// Panics if the range extends past the end of the rope.
    pub fn remove(&mut self, pos: usize, len: usize) {
        assert!(pos + len <= self.len_chars, "remove range out of bounds");
        if len == 0 {
            return;
        }
        if !self.try_remove_in_place(pos, len) {
            self.tree.delete_cur_range(pos, len);
        }
        self.len_chars -= len;
    }

    /// Tries to remove `[pos, pos + len)` from within a single chunk's
    /// buffer in place. Fails when the range crosses a chunk boundary or
    /// would empty the chunk (those paths remove whole entries instead).
    fn try_remove_in_place(&mut self, pos: usize, len: usize) -> bool {
        let cursor = self.tree.cursor_at_cur_pos(pos);
        let entries = self.tree.entries_in_leaf(cursor.leaf);
        if cursor.entry_idx >= entries.len() {
            return false;
        }
        let chars = entries[cursor.entry_idx].chars;
        if cursor.offset + len > chars || len == chars {
            return false;
        }
        self.tree.update_entry(cursor.leaf, cursor.entry_idx, |c| {
            let b0 = c.byte_of_char(cursor.offset);
            let b1 = c.byte_of_char(cursor.offset + len);
            c.newlines -= c.text[b0..b1].bytes().filter(|&b| b == b'\n').count();
            c.text.replace_range(b0..b1, "");
            c.chars -= len;
        });
        true
    }

    /// Applies an insert-or-delete in one call (convenience for replaying
    /// transformed operations).
    pub fn splice(&mut self, pos: usize, del_len: usize, ins: &str) {
        if del_len > 0 {
            self.remove(pos, del_len);
        }
        if !ins.is_empty() {
            self.insert(pos, ins);
        }
    }

    /// Iterates the rope's characters.
    pub fn chars(&self) -> impl Iterator<Item = char> + '_ {
        self.tree.iter().flat_map(|c| c.text.chars())
    }

    /// Copies the characters in `[pos, pos + len)` into a `String`.
    pub fn slice_to_string(&self, pos: usize, len: usize) -> String {
        self.chars().skip(pos).take(len).collect()
    }

    /// Total bytes of text (UTF-8).
    pub fn len_bytes(&self) -> usize {
        self.tree.iter().map(|c| c.text.len()).sum()
    }

    /// The number of lines (one more than the number of `'\n'`s; the empty
    /// rope has one empty line).
    pub fn line_count(&self) -> usize {
        self.tree.iter().map(|c| c.newlines).sum::<usize>() + 1
    }

    /// Converts a character index into a zero-based `(line, column)` pair.
    ///
    /// Each chunk caches its newline count, so this scans chunk headers
    /// (`O(n / chunk_size)`) and decodes at most one chunk — fine for
    /// editor-frequency addressing, not for per-character inner loops.
    ///
    /// # Panics
    ///
    /// Panics if `pos > self.len_chars()`.
    pub fn char_to_line_col(&self, pos: usize) -> (usize, usize) {
        assert!(pos <= self.len_chars, "position out of bounds");
        let mut line = 0usize;
        let mut col = 0usize;
        let mut remaining = pos;
        for chunk in self.tree.iter() {
            if remaining >= chunk.chars {
                remaining -= chunk.chars;
                if chunk.newlines > 0 {
                    line += chunk.newlines;
                    // Column restarts after the chunk's last newline.
                    let after_last = chunk
                        .text
                        .rfind('\n')
                        .map(|b| chunk.text[b + 1..].chars().count())
                        .unwrap_or(0);
                    col = after_last;
                } else {
                    col += chunk.chars;
                }
                continue;
            }
            for ch in chunk.text.chars().take(remaining) {
                if ch == '\n' {
                    line += 1;
                    col = 0;
                } else {
                    col += 1;
                }
            }
            return (line, col);
        }
        (line, col)
    }

    /// Converts a zero-based `(line, column)` pair into a character index.
    ///
    /// The column is clamped to the line's length (a caret past the end of
    /// a line lands at the line break), matching editor semantics.
    ///
    /// # Panics
    ///
    /// Panics if `line >= self.line_count()`.
    pub fn line_col_to_char(&self, line: usize, col: usize) -> usize {
        assert!(line < self.line_count(), "line out of bounds");
        let mut pos = 0usize;
        let mut lines_left = line;
        for c in self.tree.iter() {
            // Skip whole chunks that end before the target line starts.
            if lines_left > c.newlines {
                lines_left -= c.newlines;
                pos += c.chars;
                continue;
            }
            // The target line's start is inside (or just after) this chunk.
            if lines_left > 0 {
                for ch in c.text.chars() {
                    pos += 1;
                    if ch == '\n' {
                        lines_left -= 1;
                        if lines_left == 0 {
                            break;
                        }
                    }
                }
            }
            break;
        }
        // `pos` is the line start; advance by at most `col`, stopping at
        // the line end.
        let mut advanced = 0usize;
        for ch in self.chars().skip(pos) {
            if advanced == col || ch == '\n' {
                break;
            }
            advanced += 1;
        }
        pos + advanced
    }

    /// The text of a zero-based line, without its trailing newline.
    ///
    /// # Panics
    ///
    /// Panics if `line >= self.line_count()`.
    pub fn line_text(&self, line: usize) -> String {
        let start = self.line_col_to_char(line, 0);
        self.chars()
            .skip(start)
            .take_while(|&c| c != '\n')
            .collect()
    }

    /// Writes the whole text into a `String`.
    pub fn to_string_builder(&self, out: &mut String) {
        out.reserve(self.len_bytes());
        for c in self.tree.iter() {
            out.push_str(&c.text);
        }
    }
}

impl fmt::Display for Rope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in self.tree.iter() {
            f.write_str(&c.text)?;
        }
        Ok(())
    }
}

impl fmt::Debug for Rope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rope({:?})", self.to_string())
    }
}

impl PartialEq for Rope {
    fn eq(&self, other: &Self) -> bool {
        self.len_chars == other.len_chars && self.chars().eq(other.chars())
    }
}

impl Eq for Rope {}

impl From<&str> for Rope {
    fn from(s: &str) -> Self {
        Rope::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let r = Rope::new();
        assert!(r.is_empty());
        assert_eq!(r.to_string(), "");
        assert_eq!(r.len_bytes(), 0);
    }

    #[test]
    fn insert_and_remove_ascii() {
        let mut r = Rope::new();
        r.insert(0, "hello world");
        r.insert(5, ",");
        assert_eq!(r.to_string(), "hello, world");
        r.remove(0, 7);
        assert_eq!(r.to_string(), "world");
        r.insert(5, "!");
        assert_eq!(r.to_string(), "world!");
    }

    #[test]
    fn unicode_chars() {
        let mut r = Rope::new();
        r.insert(0, "héllo wörld");
        assert_eq!(r.len_chars(), 11);
        r.insert(6, "→");
        assert_eq!(r.to_string(), "héllo →wörld");
        r.remove(1, 1);
        assert_eq!(r.to_string(), "hllo →wörld");
    }

    #[test]
    fn large_insert_splits_chunks() {
        let text: String = "abcdefghij".repeat(100); // 1000 chars
        let mut r = Rope::new();
        r.insert(0, &text);
        assert_eq!(r.len_chars(), 1000);
        assert_eq!(r.to_string(), text);
        r.remove(100, 800);
        assert_eq!(r.len_chars(), 200);
        let mut expect = text.clone();
        expect.replace_range(100..900, "");
        assert_eq!(r.to_string(), expect);
    }

    #[test]
    fn splice() {
        let mut r = Rope::from_str("abcdef");
        r.splice(2, 2, "XY");
        assert_eq!(r.to_string(), "abXYef");
        r.splice(0, 0, "s");
        assert_eq!(r.to_string(), "sabXYef");
        r.splice(6, 1, "");
        assert_eq!(r.to_string(), "sabXYe");
    }

    #[test]
    fn slice_and_eq() {
        let r = Rope::from_str("the quick brown fox");
        assert_eq!(r.slice_to_string(4, 5), "quick");
        let r2 = Rope::from_str("the quick brown fox");
        assert_eq!(r, r2);
        let r3 = Rope::from_str("the quick brown foX");
        assert_ne!(r, r3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_out_of_bounds() {
        let mut r = Rope::new();
        r.insert(1, "x");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn remove_out_of_bounds() {
        let mut r = Rope::from_str("ab");
        r.remove(1, 5);
    }

    #[test]
    fn line_counts() {
        assert_eq!(Rope::new().line_count(), 1);
        assert_eq!(Rope::from_str("no newline").line_count(), 1);
        assert_eq!(Rope::from_str("a\nb\nc").line_count(), 3);
        assert_eq!(Rope::from_str("trailing\n").line_count(), 2);
    }

    #[test]
    fn char_to_line_col_basics() {
        let r = Rope::from_str("ab\ncde\n\nf");
        assert_eq!(r.char_to_line_col(0), (0, 0));
        assert_eq!(r.char_to_line_col(2), (0, 2)); // on the newline
        assert_eq!(r.char_to_line_col(3), (1, 0)); // 'c'
        assert_eq!(r.char_to_line_col(6), (1, 3));
        assert_eq!(r.char_to_line_col(7), (2, 0)); // empty line
        assert_eq!(r.char_to_line_col(8), (3, 0)); // 'f'
        assert_eq!(r.char_to_line_col(9), (3, 1)); // end of document
    }

    #[test]
    fn line_col_to_char_basics() {
        let r = Rope::from_str("ab\ncde\n\nf");
        assert_eq!(r.line_col_to_char(0, 0), 0);
        assert_eq!(r.line_col_to_char(1, 0), 3);
        assert_eq!(r.line_col_to_char(1, 2), 5);
        assert_eq!(r.line_col_to_char(2, 0), 7);
        assert_eq!(r.line_col_to_char(3, 1), 9);
        // Columns clamp to the line end.
        assert_eq!(r.line_col_to_char(0, 99), 2);
        assert_eq!(r.line_col_to_char(2, 99), 7);
    }

    #[test]
    fn line_text_extraction() {
        let r = Rope::from_str("first\nsecond line\n\nfourth");
        assert_eq!(r.line_text(0), "first");
        assert_eq!(r.line_text(1), "second line");
        assert_eq!(r.line_text(2), "");
        assert_eq!(r.line_text(3), "fourth");
    }

    #[test]
    fn line_queries_across_chunk_boundaries() {
        // Force many chunks with newlines scattered across them.
        let mut text = String::new();
        for i in 0..200 {
            text.push_str(&format!("line number {i} with some padding\n"));
        }
        let r = Rope::from_str(&text);
        assert_eq!(r.line_count(), 201);
        for line in [0usize, 1, 50, 123, 199] {
            let start = r.line_col_to_char(line, 0);
            assert_eq!(r.char_to_line_col(start), (line, 0), "line {line}");
            assert_eq!(
                r.line_text(line),
                format!("line number {line} with some padding")
            );
        }
    }

    /// Model test: line/col round-trips against a straightforward string
    /// implementation, across random edits.
    #[test]
    fn line_col_model() {
        let mut rope = Rope::new();
        let mut model = String::new();
        let mut seed = 0xfeed_f00d_u64;
        let mut rand = move |bound: usize| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as usize) % bound.max(1)
        };
        for _ in 0..200 {
            let chars: Vec<char> = model.chars().collect();
            let pos = rand(chars.len() + 1);
            let text = match rand(4) {
                0 => "\n".to_string(),
                1 => "ab\ncd".to_string(),
                _ => "xyz".to_string(),
            };
            rope.insert(pos, &text);
            let byte = chars[..pos].iter().map(|c| c.len_utf8()).sum::<usize>();
            model.insert_str(byte, &text);

            // Check every prefix position against the model.
            let model_chars: Vec<char> = model.chars().collect();
            let probe = rand(model_chars.len() + 1);
            let mut line = 0;
            let mut col = 0;
            for &c in &model_chars[..probe] {
                if c == '\n' {
                    line += 1;
                    col = 0;
                } else {
                    col += 1;
                }
            }
            assert_eq!(rope.char_to_line_col(probe), (line, col));
            assert_eq!(rope.line_col_to_char(line, col), probe);
        }
        assert_eq!(
            rope.line_count(),
            model.bytes().filter(|&b| b == b'\n').count() + 1
        );
    }

    /// Model test against String with char-based ops.
    #[test]
    fn model_random_edits() {
        let mut rope = Rope::new();
        let mut model = String::new();
        let mut seed = 0xdead_beef_u64;
        let mut rand = move |bound: usize| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as usize) % bound.max(1)
        };
        let alphabet: Vec<char> = "abcXYZ→é ".chars().collect();
        for step in 0..600 {
            let model_chars: Vec<char> = model.chars().collect();
            if model.is_empty() || rand(3) > 0 {
                let pos = rand(model_chars.len() + 1);
                let len = 1 + rand(20);
                let text: String = (0..len).map(|_| alphabet[rand(alphabet.len())]).collect();
                rope.insert(pos, &text);
                let byte = model_chars[..pos]
                    .iter()
                    .map(|c| c.len_utf8())
                    .sum::<usize>();
                model.insert_str(byte, &text);
            } else {
                let pos = rand(model_chars.len());
                let len = (1 + rand(12)).min(model_chars.len() - pos);
                rope.remove(pos, len);
                let b0 = model_chars[..pos]
                    .iter()
                    .map(|c| c.len_utf8())
                    .sum::<usize>();
                let b1 = b0
                    + model_chars[pos..pos + len]
                        .iter()
                        .map(|c| c.len_utf8())
                        .sum::<usize>();
                model.replace_range(b0..b1, "");
            }
            assert_eq!(rope.to_string(), model, "mismatch at step {step}");
            assert_eq!(rope.len_chars(), model.chars().count());
        }
    }
}
