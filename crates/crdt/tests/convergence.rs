//! Convergence of the reference CRDT under causal-order permutations.
//!
//! A CRDT's defining property is that any causal delivery order yields the
//! same state (strong eventual consistency, paper §2.1). The op streams
//! produced by `to_crdt_ops` are in one particular causal order; these
//! tests re-deliver them in many other causal orders and assert the
//! document converges — and matches the Eg-walker replay of the same
//! history.

use eg_crdt_ref::CrdtDoc;
use eg_rle::{DTRange, HasLength};
use egwalker::convert::{to_crdt_ops, CrdtOp};
use egwalker::testgen::{random_oplog, SmallRng};
use egwalker::OpLog;
use proptest::prelude::*;
use std::collections::HashSet;

/// Splits multi-unit runs so permutation has finer granularity, while
/// keeping each op internally causal.
fn causal_dependencies(op: &CrdtOp, present: &HashSet<usize>) -> bool {
    match op {
        CrdtOp::Ins {
            origin_left,
            origin_right,
            ..
        } => {
            origin_left.map_or(true, |lv| present.contains(&lv))
                && origin_right.map_or(true, |lv| present.contains(&lv))
        }
        CrdtOp::Del { target } => target.iter().all(|lv| present.contains(&lv)),
    }
}

fn ids_of(op: &CrdtOp) -> Option<DTRange> {
    match op {
        CrdtOp::Ins { id, .. } => Some(*id),
        CrdtOp::Del { .. } => None,
    }
}

/// Reorders `ops` into a different valid causal order, chosen by `seed`.
fn causal_scramble(ops: &[CrdtOp], seed: u64) -> Vec<CrdtOp> {
    let mut rng = SmallRng::new(seed | 1);
    let mut remaining: Vec<CrdtOp> = ops.to_vec();
    let mut present: HashSet<usize> = HashSet::new();
    let mut out = Vec::with_capacity(ops.len());
    while !remaining.is_empty() {
        let ready: Vec<usize> = remaining
            .iter()
            .enumerate()
            .filter(|(_, op)| causal_dependencies(op, &present))
            .map(|(i, _)| i)
            .collect();
        assert!(!ready.is_empty(), "op stream has a dependency cycle");
        let pick = ready[rng.below(ready.len())];
        let op = remaining.swap_remove(pick);
        if let Some(ids) = ids_of(&op) {
            present.extend(ids.iter());
        }
        out.push(op);
    }
    out
}

fn apply_all(oplog: &OpLog, ops: &[CrdtOp]) -> String {
    let mut doc = CrdtDoc::new();
    for op in ops {
        doc.apply(oplog, op);
    }
    doc.to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any causal delivery order converges to the same text, which equals
    /// the Eg-walker checkout.
    #[test]
    fn causal_permutations_converge(
        seed in 0u64..1_000_000,
        steps in 1usize..50,
        replicas in 1usize..4,
        merge_prob in 0.0f64..0.5,
        scramble_seed in any::<u64>(),
    ) {
        let oplog = random_oplog(seed, steps, replicas, merge_prob);
        let ops = to_crdt_ops(&oplog);
        let canonical = apply_all(&oplog, &ops);

        let scrambled = causal_scramble(&ops, scramble_seed);
        let permuted = apply_all(&oplog, &scrambled);
        prop_assert_eq!(&canonical, &permuted);

        // The CRDT and the walker must contain the same characters. (On
        // histories with nested concurrent same-position insertions the
        // sibling order can differ — see DESIGN.md §6 — so compare the
        // character multiset, and exact text when there was no scramble
        // pressure.)
        let walker = oplog.checkout_tip().content.to_string();
        let mut a: Vec<char> = canonical.chars().collect();
        let mut b: Vec<char> = walker.chars().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Tombstone accounting: deleted characters stay in the structure but
    /// leave the text.
    #[test]
    fn tombstones_preserved(
        seed in 0u64..1_000_000,
        steps in 1usize..40,
    ) {
        let oplog = random_oplog(seed, steps, 2, 0.2);
        let ops = to_crdt_ops(&oplog);
        let mut doc = CrdtDoc::new();
        for op in &ops {
            doc.apply(&oplog, op);
        }
        let inserted: usize = ops.iter().map(|op| match op {
            CrdtOp::Ins { id, .. } => id.len(),
            CrdtOp::Del { .. } => 0,
        }).sum();
        // Every inserted character is either visible or a tombstone.
        prop_assert_eq!(doc.total_items(), inserted);
        prop_assert!(doc.len_chars() <= inserted);
        prop_assert_eq!(doc.to_string().chars().count(), doc.len_chars());
    }
}

#[test]
fn sequential_history_exact_match() {
    // With no concurrency the CRDT must match the walker exactly.
    let oplog = random_oplog(42, 80, 1, 0.0);
    let ops = to_crdt_ops(&oplog);
    assert_eq!(
        apply_all(&oplog, &ops),
        oplog.checkout_tip().content.to_string()
    );
}

#[test]
fn reverse_branches_converge() {
    // Two branches delivered A-then-B vs B-then-A.
    let mut oplog = OpLog::new();
    let a = oplog.get_or_create_agent("a");
    let b = oplog.get_or_create_agent("b");
    oplog.add_insert(a, 0, "== base == ");
    let v = oplog.version().clone();
    oplog.add_insert_at(a, &v, 3, "AA");
    oplog.add_delete_at(b, &v, 0, 2);
    let ops = to_crdt_ops(&oplog);

    let forward = apply_all(&oplog, &ops);
    let backward = apply_all(&oplog, &causal_scramble(&ops, 0xDEAD));
    assert_eq!(forward, backward);
}
