//! Reference list CRDT — the "Ref CRDT" baseline of the paper's evaluation
//! (§4.2).
//!
//! This is a *traditional* text CRDT in the Yjs/YATA lineage: every
//! character carries a unique ID and its left/right origins; the full
//! structure — including tombstones for deleted characters — is *persistent
//! state* that must be held in memory while the document is edited, written
//! to disk, and rebuilt on load. That standing cost is exactly what
//! Eg-walker avoids (it derives the equivalent structure transiently during
//! merges and throws it away, paper §3).
//!
//! The implementation deliberately shares its building blocks with the
//! Eg-walker crate (the same order-statistic B-tree, the same RLE spans,
//! the same integration rule) so that benchmark differences reflect the
//! *algorithms*, not implementation quality — the paper's "like-to-like
//! comparison" (§4.2).
//!
//! # Examples
//!
//! ```
//! use egwalker::{convert::to_crdt_ops, OpLog};
//! use eg_crdt_ref::CrdtDoc;
//!
//! let mut oplog = OpLog::new();
//! let a = oplog.get_or_create_agent("alice");
//! oplog.add_insert(a, 0, "hello");
//! let ops = to_crdt_ops(&oplog);
//!
//! let mut doc = CrdtDoc::new();
//! for op in &ops {
//!     doc.apply(&oplog, op);
//! }
//! assert_eq!(doc.to_string(), "hello");
//! ```

use eg_content_tree::{ContentTree, Cursor, LeafIdx, TreeEntry};
use eg_dag::LV;
use eg_rle::{DTRange, HasLength, IntervalMap, MergableSpan, SplitableSpan};
use egwalker::convert::CrdtOp;
use egwalker::OpLog;

/// Origin sentinel: document start / end.
const ORIGIN_NONE: usize = usize::MAX;

/// A run of CRDT items: consecutively inserted characters sharing origins
/// and deletion state. Deleted characters remain as tombstones forever —
/// the defining memory cost of the CRDT approach.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct CrdtItem {
    /// Character IDs.
    id: DTRange,
    /// ID of the character left of the run at insert time (or
    /// [`ORIGIN_NONE`]).
    origin_left: usize,
    /// ID of the character right of the run at insert time (or
    /// [`ORIGIN_NONE`]).
    origin_right: usize,
    /// Tombstone flag.
    deleted: bool,
    /// The characters themselves (kept inline, as Yjs does).
    content: String,
}

impl CrdtItem {
    fn byte_of_char(&self, idx: usize) -> usize {
        self.content
            .char_indices()
            .nth(idx)
            .map(|(b, _)| b)
            .unwrap_or(self.content.len())
    }
}

impl HasLength for CrdtItem {
    fn len(&self) -> usize {
        self.id.len()
    }
}

impl SplitableSpan for CrdtItem {
    fn truncate(&mut self, at: usize) -> Self {
        let byte = self.byte_of_char(at);
        let rem_content = self.content.split_off(byte);
        let rem_id = self.id.truncate(at);
        CrdtItem {
            id: rem_id,
            origin_left: rem_id.start - 1,
            origin_right: self.origin_right,
            deleted: self.deleted,
            content: rem_content,
        }
    }
}

impl MergableSpan for CrdtItem {
    fn can_append(&self, other: &Self) -> bool {
        self.id.can_append(&other.id)
            && other.origin_left == self.id.last()
            && other.origin_right == self.origin_right
            && other.deleted == self.deleted
    }

    fn append(&mut self, other: Self) {
        self.id.append(other.id);
        self.content.push_str(&other.content);
    }
}

impl TreeEntry for CrdtItem {
    fn width_cur(&self) -> usize {
        if self.deleted {
            0
        } else {
            self.len()
        }
    }

    fn width_end(&self) -> usize {
        self.width_cur()
    }
}

/// A traditional list-CRDT document: the persistent ID-bearing structure.
#[derive(Debug, Default)]
pub struct CrdtDoc {
    tree: ContentTree<CrdtItem>,
    /// Character ID → leaf index (the CRDT's ID lookup structure).
    index: IntervalMap<LeafIdx>,
    /// Characters currently visible.
    len_chars: usize,
    /// Total characters ever inserted (tombstones included).
    total_items: usize,
}

impl CrdtDoc {
    /// Creates an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Visible document length in characters.
    pub fn len_chars(&self) -> usize {
        self.len_chars
    }

    /// Total items retained, including tombstones.
    pub fn total_items(&self) -> usize {
        self.total_items
    }

    /// The visible text.
    #[allow(clippy::inherent_to_string)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        for item in self.tree.iter() {
            if !item.deleted {
                out.push_str(&item.content);
            }
        }
        out
    }

    fn cursor_for_id(&self, id: usize) -> (Cursor, usize) {
        let (_, leaf) = self
            .index
            .get(id)
            .unwrap_or_else(|| panic!("unknown CRDT item {id}"));
        let entries = self.tree.entries_in_leaf(leaf);
        for (i, e) in entries.iter().enumerate() {
            if e.id.contains(id) {
                let offset = id - e.id.start;
                return (
                    Cursor {
                        leaf,
                        entry_idx: i,
                        offset,
                    },
                    e.len() - offset,
                );
            }
        }
        panic!("CRDT item {id} not in indexed leaf");
    }

    fn raw_pos_of(&self, id: usize) -> usize {
        let (cursor, _) = self.cursor_for_id(id);
        self.tree.offset_of(cursor.leaf, cursor.entry_idx).raw + cursor.offset
    }

    /// Applies one converted operation. `oplog` provides agent names for
    /// the insertion tie-break (a stand-in for carrying agent IDs in the
    /// operation itself).
    pub fn apply(&mut self, oplog: &OpLog, op: &CrdtOp) {
        match op {
            CrdtOp::Ins {
                id,
                origin_left,
                origin_right,
                content,
            } => self.apply_ins(oplog, *id, *origin_left, *origin_right, content),
            CrdtOp::Del { target } => self.apply_del(*target),
        }
    }

    fn apply_ins(
        &mut self,
        oplog: &OpLog,
        id: DTRange,
        origin_left: Option<LV>,
        origin_right: Option<LV>,
        content: &str,
    ) {
        // Scan start: just after the left origin (or the document start).
        let (cursor, cursor_raw) = match origin_left {
            None => (self.tree.cursor_at_start(), 0),
            Some(ol) => {
                let (c, _) = self.cursor_for_id(ol);
                let raw = self.tree.offset_of(c.leaf, c.entry_idx).raw + c.offset + 1;
                (
                    Cursor {
                        leaf: c.leaf,
                        entry_idx: c.entry_idx,
                        offset: c.offset + 1,
                    },
                    raw,
                )
            }
        };
        let left_raw: i64 = cursor_raw as i64 - 1;
        let right_raw: i64 = match origin_right {
            None => i64::MAX,
            Some(or) => self.raw_pos_of(or) as i64,
        };

        // YjsMod integration scan (same rule as the Eg-walker tracker).
        let mut scanning = false;
        let mut dest = cursor;
        let mut i = cursor;
        let mut i_raw = cursor_raw;
        loop {
            if !scanning {
                dest = i;
            }
            if i_raw as i64 == right_raw {
                break;
            }
            let valid = if i.entry_idx < self.tree.entries_in_leaf(i.leaf).len()
                && i.offset < self.tree.entry_at(&i).len()
            {
                true
            } else {
                i.offset = 0;
                self.tree.cursor_next_entry(&mut i)
            };
            if !valid {
                break;
            }
            let other = self.tree.entry_at(&i).clone();
            let oleft: i64 = if other.origin_left == ORIGIN_NONE {
                -1
            } else {
                self.raw_pos_of(other.origin_left) as i64
            };
            #[allow(clippy::comparison_chain)]
            if oleft < left_raw {
                break;
            } else if oleft == left_raw {
                let oright: i64 = if other.origin_right == ORIGIN_NONE {
                    i64::MAX
                } else {
                    self.raw_pos_of(other.origin_right) as i64
                };
                #[allow(clippy::comparison_chain)]
                if oright < right_raw {
                    scanning = true;
                } else if oright == right_raw {
                    let my_agent = oplog.agents.lv_to_agent_span(id.start).agent;
                    let other_agent = oplog.agents.lv_to_agent_span(other.id.start).agent;
                    if oplog.agents.agent_name(my_agent) < oplog.agents.agent_name(other_agent) {
                        break;
                    }
                    scanning = false;
                } else {
                    scanning = false;
                }
            }
            i_raw += other.len();
            i.offset = other.len();
        }

        let item = CrdtItem {
            id,
            origin_left: origin_left.unwrap_or(ORIGIN_NONE),
            origin_right: origin_right.unwrap_or(ORIGIN_NONE),
            deleted: false,
            content: content.to_string(),
        };
        let index = &mut self.index;
        self.tree.insert_at(dest, item, &mut |e: &CrdtItem, leaf| {
            index.set(e.id, leaf);
        });
        self.len_chars += id.len();
        self.total_items += id.len();
    }

    fn apply_del(&mut self, mut target: DTRange) {
        while !target.is_empty() {
            let (cursor, avail) = self.cursor_for_id(target.start);
            let chunk = target.len().min(avail);
            let was_deleted = self.tree.entry_at(&cursor).deleted;
            let index = &mut self.index;
            self.tree.mutate_entry(
                &cursor,
                chunk,
                |e| e.deleted = true,
                &mut |e: &CrdtItem, leaf| {
                    index.set(e.id, leaf);
                },
            );
            if !was_deleted {
                self.len_chars -= chunk;
            }
            target.start += chunk;
        }
    }

    /// Applies a whole converted operation stream ("merge from a remote
    /// peer", which for a CRDT is the same work as loading from disk).
    pub fn apply_all(&mut self, oplog: &OpLog, ops: &[CrdtOp]) {
        for op in ops {
            self.apply(oplog, op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egwalker::convert::to_crdt_ops;
    use egwalker::testgen::random_oplog;

    fn crdt_replay(oplog: &OpLog) -> CrdtDoc {
        let ops = to_crdt_ops(oplog);
        let mut doc = CrdtDoc::new();
        doc.apply_all(oplog, &ops);
        doc
    }

    #[test]
    fn sequential_text() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        oplog.add_insert(a, 0, "hello world");
        oplog.add_delete(a, 5, 6);
        let doc = crdt_replay(&oplog);
        assert_eq!(doc.to_string(), "hello");
        assert_eq!(doc.len_chars(), 5);
        // Tombstones retained.
        assert_eq!(doc.total_items(), 11);
    }

    #[test]
    fn concurrent_fig1() {
        let mut oplog = OpLog::new();
        let u1 = oplog.get_or_create_agent("user1");
        let u2 = oplog.get_or_create_agent("user2");
        oplog.add_insert(u1, 0, "Helo");
        let base = oplog.version().clone();
        oplog.add_insert_at(u1, &base, 3, "l");
        oplog.add_insert_at(u2, &base, 4, "!");
        let doc = crdt_replay(&oplog);
        assert_eq!(doc.to_string(), "Hello!");
    }

    /// The CRDT must produce the same document as Eg-walker on random
    /// histories (they implement the same abstract list CRDT).
    #[test]
    fn matches_egwalker_on_random_histories() {
        for seed in 0..40u64 {
            let oplog = random_oplog(seed, 120, 3, 0.35);
            let expected = oplog.checkout_tip().content.to_string();
            let doc = crdt_replay(&oplog);
            assert_eq!(doc.to_string(), expected, "seed {seed}");
        }
    }

    /// Unicode content splits correctly at item boundaries.
    #[test]
    fn unicode_splits() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        oplog.add_insert(a, 0, "héllo→wörld");
        oplog.add_delete(a, 2, 4);
        let doc = crdt_replay(&oplog);
        assert_eq!(doc.to_string(), oplog.checkout_tip().content.to_string());
    }
}
