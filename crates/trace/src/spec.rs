//! The seven benchmark trace specifications (paper Table 1).

use serde::{Deserialize, Serialize};

/// The editing pattern a trace exhibits (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// No concurrency: one author, or authors taking turns.
    Sequential,
    /// Real-time collaboration with network latency: many short-lived
    /// branches.
    Concurrent,
    /// Offline/git-style editing: few long-running branches.
    Asynchronous,
}

/// Parameters of one synthetic trace, with the paper-reported target
/// statistics it is tuned to reproduce.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Trace name (S1…A2).
    pub name: String,
    /// Editing pattern.
    pub kind: TraceKind,
    /// Deterministic seed.
    pub seed: u64,
    /// Total single-character events to generate.
    pub target_events: usize,
    /// Number of distinct authors.
    pub authors: usize,
    /// Fraction of inserted characters that should survive (Table 1
    /// "chars remaining").
    pub keep_ratio: f64,
    /// Events per editing turn (min, max).
    pub turn_len: (usize, usize),
    /// For concurrent/async kinds: number of simultaneously live branches
    /// to aim for (drives Table 1 "avg concurrency").
    pub live_branches: usize,
    /// Paper-reported statistics for this trace, for EXPERIMENTS.md
    /// comparisons: (events_k, avg_concurrency, graph_runs, authors,
    /// chars_remaining_pct, final_size_kb).
    pub paper_stats: (f64, f64, f64, f64, f64, f64),
}

/// The seven benchmark traces, scaled by `scale` (1.0 reproduces the
/// paper's ~0.5M-insert normalised sizes; the default benchmark scale is
/// smaller so the whole suite runs quickly on a laptop).
pub fn builtin_specs(scale: f64) -> Vec<TraceSpec> {
    let ev = |n: f64| ((n * 1000.0 * scale) as usize).max(1000);
    // Sequential/async turn lengths scale with the trace so run counts keep
    // the paper's shape; concurrent bursts are latency-bound and fixed.
    let turn = |lo: usize, hi: usize| {
        (
            ((lo as f64 * scale) as usize).max(20),
            ((hi as f64 * scale) as usize).max(100),
        )
    };
    vec![
        TraceSpec {
            name: "S1".into(),
            kind: TraceKind::Sequential,
            seed: 0x51,
            target_events: ev(779.0),
            authors: 2,
            keep_ratio: 0.575,
            turn_len: turn(400, 4000),
            live_branches: 1,
            paper_stats: (779.0, 0.00, 1.0, 2.0, 57.5, 307.2),
        },
        TraceSpec {
            name: "S2".into(),
            kind: TraceKind::Sequential,
            seed: 0x52,
            target_events: ev(1105.0),
            authors: 1,
            keep_ratio: 0.267,
            turn_len: turn(400, 4000),
            live_branches: 1,
            paper_stats: (1105.0, 0.00, 1.0, 1.0, 26.7, 166.3),
        },
        TraceSpec {
            name: "S3".into(),
            kind: TraceKind::Sequential,
            seed: 0x53,
            target_events: ev(2339.0),
            authors: 2,
            keep_ratio: 0.099,
            turn_len: turn(400, 4000),
            live_branches: 1,
            paper_stats: (2339.0, 0.00, 1.0, 2.0, 9.9, 119.5),
        },
        TraceSpec {
            name: "C1".into(),
            kind: TraceKind::Concurrent,
            seed: 0xC1,
            target_events: ev(652.0),
            authors: 2,
            keep_ratio: 0.901,
            turn_len: (2, 12),
            live_branches: 2,
            paper_stats: (652.0, 0.43, 92101.0, 2.0, 90.1, 521.5),
        },
        TraceSpec {
            name: "C2".into(),
            kind: TraceKind::Concurrent,
            seed: 0xC2,
            target_events: ev(608.0),
            authors: 2,
            keep_ratio: 0.93,
            turn_len: (1, 8),
            live_branches: 2,
            paper_stats: (608.0, 0.44, 133626.0, 2.0, 93.0, 516.3),
        },
        TraceSpec {
            name: "A1".into(),
            kind: TraceKind::Asynchronous,
            seed: 0xA1,
            target_events: ev(947.0),
            authors: 194,
            keep_ratio: 0.078,
            turn_len: turn(2000, 16000),
            live_branches: 2,
            paper_stats: (947.0, 0.10, 101.0, 194.0, 7.8, 37.2),
        },
        TraceSpec {
            name: "A2".into(),
            kind: TraceKind::Asynchronous,
            seed: 0xA2,
            target_events: ev(698.0),
            authors: 299,
            keep_ratio: 0.496,
            turn_len: turn(150, 1200),
            live_branches: 7,
            paper_stats: (698.0, 6.11, 2430.0, 299.0, 49.6, 222.0),
        },
    ]
}

/// Looks up a builtin spec by name (case-insensitive).
pub fn spec_by_name(name: &str, scale: f64) -> Option<TraceSpec> {
    builtin_specs(scale)
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_specs() {
        let specs = builtin_specs(1.0);
        assert_eq!(specs.len(), 7);
        assert_eq!(specs[0].target_events, 779_000);
        assert!(spec_by_name("a2", 1.0).is_some());
        assert!(spec_by_name("zz", 1.0).is_none());
    }

    #[test]
    fn scale_shrinks() {
        let specs = builtin_specs(0.1);
        assert_eq!(specs[0].target_events, 77_900);
    }
}
