//! Table 1 statistics (paper §4.1).

use eg_dag::Frontier;
use eg_rle::HasLength;
use egwalker::{ListOpKind, OpLog};
use serde::{Deserialize, Serialize};

/// The columns of the paper's Table 1, computed from an oplog.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TraceStats {
    /// Total editing events (each inserted or deleted character is one).
    pub events: usize,
    /// Mean number of concurrent branches per event: the average size of
    /// the frontier (minus one) as the graph is swept in causal order.
    pub avg_concurrency: f64,
    /// Number of linear runs in the event graph.
    pub graph_runs: usize,
    /// Number of distinct authors.
    pub authors: usize,
    /// Characters inserted over the whole trace.
    pub chars_inserted: usize,
    /// Percentage of inserted characters still present at the end.
    pub chars_remaining_pct: f64,
    /// Final document size in bytes (UTF-8).
    pub final_size_bytes: usize,
}

/// Computes the Table 1 statistics for an oplog.
///
/// `final_len_bytes` can be supplied if the caller already materialised the
/// final document (otherwise the oplog is replayed).
pub fn trace_stats(oplog: &OpLog, final_doc_bytes: Option<usize>) -> TraceStats {
    let events = oplog.len();
    // Average concurrency: sweep the graph in LV order, tracking the
    // frontier size after each event.
    let mut frontier = Frontier::root();
    let mut acc: f64 = 0.0;
    for entry in oplog.graph.iter() {
        frontier.advance_by(entry.span.last(), &entry.parents);
        acc += (frontier.len() - 1) as f64 * entry.span.len() as f64;
    }
    let avg_concurrency = if events == 0 {
        0.0
    } else {
        acc / events as f64
    };

    let mut chars_inserted = 0usize;
    if events > 0 {
        for (lvs, run) in oplog.ops_in((0..events).into()) {
            if run.kind == ListOpKind::Ins {
                chars_inserted += lvs.len();
            }
        }
    }
    let final_size_bytes =
        final_doc_bytes.unwrap_or_else(|| oplog.checkout_tip().content.len_bytes());
    // "Chars remaining": double deletions of the same character (concurrent
    // deletes) make the raw difference an approximation; measure the real
    // document instead.
    let final_chars = final_size_bytes; // ASCII-dominated filler text.
    let chars_remaining_pct = if chars_inserted == 0 {
        0.0
    } else {
        100.0 * final_chars.min(chars_inserted) as f64 / chars_inserted as f64
    };

    TraceStats {
        events,
        avg_concurrency,
        graph_runs: oplog.graph.num_entries(),
        authors: oplog.agents.num_agents(),
        chars_inserted,
        chars_remaining_pct,
        final_size_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stats() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        oplog.add_insert(a, 0, "hello world");
        oplog.add_delete(a, 0, 6);
        let s = trace_stats(&oplog, None);
        assert_eq!(s.events, 17);
        assert_eq!(s.avg_concurrency, 0.0);
        assert_eq!(s.graph_runs, 1);
        assert_eq!(s.authors, 1);
        assert_eq!(s.chars_inserted, 11);
        assert_eq!(s.final_size_bytes, 5);
        assert!((s.chars_remaining_pct - 45.45).abs() < 0.1);
    }

    #[test]
    fn concurrency_measured() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        let b = oplog.get_or_create_agent("bob");
        oplog.add_insert(a, 0, "xx");
        let base = oplog.version().clone();
        oplog.add_insert_at(a, &base, 0, "aa");
        oplog.add_insert_at(b, &base, 2, "bb");
        let s = trace_stats(&oplog, None);
        // Events 4,5 ran while the other branch (2,3) was open.
        assert!(s.avg_concurrency > 0.0);
        assert_eq!(s.graph_runs, 2);
        assert_eq!(s.authors, 2);
    }
}
