//! JSON interchange for editing traces, modelled on the `editing-traces`
//! repository's concurrent-trace format: a list of transactions, each with
//! parent transaction indexes, an agent, and index-based patches.

use eg_dag::Frontier;
use eg_rle::HasLength;
use egwalker::{ListOpKind, OpLog};
use serde::{Deserialize, Serialize};

/// One patch: at `pos`, delete `del` characters, then insert `ins`.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct Patch {
    /// Character index.
    pub pos: usize,
    /// Characters deleted.
    pub del: usize,
    /// Inserted text.
    pub ins: String,
}

/// One transaction: a run of patches by one agent at one version.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct Txn {
    /// Indexes of parent transactions (empty for roots).
    pub parents: Vec<usize>,
    /// Index into [`JsonTrace::agents`].
    pub agent: usize,
    /// The patches, applied in order.
    pub patches: Vec<Patch>,
}

/// A whole trace in interchange form.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct JsonTrace {
    /// Agent names.
    pub agents: Vec<String>,
    /// Transactions in causal order.
    pub txns: Vec<Txn>,
}

/// Exports an oplog as an interchange trace (one transaction per graph
/// run, one patch per op run).
pub fn export(oplog: &OpLog) -> JsonTrace {
    let agents: Vec<String> = (0..oplog.agents.num_agents())
        .map(|i| oplog.agents.agent_name(i as u32).to_string())
        .collect();
    // Map event LV -> txn index for parent resolution.
    let mut txns: Vec<Txn> = Vec::new();
    let mut txn_of_lv: Vec<(usize, usize)> = Vec::new(); // (end_lv, txn_idx)
    let find_txn = |txn_of_lv: &[(usize, usize)], lv: usize| -> usize {
        match txn_of_lv.binary_search_by(|&(end, _)| {
            if lv < end {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Less
            }
        }) {
            Err(i) => txn_of_lv[i].1,
            Ok(i) => txn_of_lv[i].1,
        }
    };
    // Transactions must end wherever another event's parent points, so
    // that parent references resolve to transaction tips on import.
    let mut cuts: Vec<usize> = Vec::new();
    for entry in oplog.graph.iter() {
        for &p in entry.parents.iter() {
            cuts.push(p + 1);
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
    for entry in oplog.graph.iter() {
        // A graph entry can span several agents and cut points; split.
        let mut lv = entry.span.start;
        let mut first_in_entry = true;
        while lv < entry.span.end {
            let agent_span = oplog.agents.lv_to_agent_span(lv);
            let mut seg_len = agent_span.seq_range.len().min(entry.span.end - lv);
            // Clip at the next cut point.
            if let Err(idx) = cuts.binary_search(&(lv + 1)) {
                if let Some(&c) = cuts.get(idx) {
                    if c > lv && c < lv + seg_len {
                        seg_len = c - lv;
                    }
                }
            } else if let Some(&c) = cuts.iter().find(|&&c| c > lv) {
                if c < lv + seg_len {
                    seg_len = c - lv;
                }
            }
            let seg = (lv..lv + seg_len).into();
            let parents: Vec<usize> = if first_in_entry {
                entry
                    .parents
                    .iter()
                    .map(|&p| find_txn(&txn_of_lv, p))
                    .collect()
            } else {
                vec![txns.len() - 1]
            };
            let mut patches = Vec::new();
            for (_lvs, run) in oplog.ops_in(seg) {
                match run.kind {
                    ListOpKind::Ins => patches.push(Patch {
                        pos: run.loc.start,
                        del: 0,
                        ins: oplog.content_slice(run.content.unwrap()).to_string(),
                    }),
                    ListOpKind::Del => patches.push(Patch {
                        pos: run.loc.start,
                        del: run.loc.len(),
                        ins: String::new(),
                    }),
                }
            }
            txns.push(Txn {
                parents,
                agent: agent_span.agent as usize,
                patches,
            });
            txn_of_lv.push((seg.start + seg_len, txns.len() - 1));
            lv += seg_len;
            first_in_entry = false;
        }
    }
    JsonTrace { agents, txns }
}

/// Imports an interchange trace into a fresh oplog.
pub fn import(trace: &JsonTrace) -> OpLog {
    let mut oplog = OpLog::new();
    let agents: Vec<_> = trace
        .agents
        .iter()
        .map(|n| oplog.get_or_create_agent(n))
        .collect();
    let mut txn_tips: Vec<Frontier> = Vec::with_capacity(trace.txns.len());
    for txn in &trace.txns {
        let mut frontier = if txn.parents.is_empty() {
            Frontier::root()
        } else {
            let lvs: Vec<usize> = txn
                .parents
                .iter()
                .flat_map(|&p| txn_tips[p].iter().copied())
                .collect();
            oplog.graph.find_dominators(&lvs)
        };
        for patch in &txn.patches {
            if patch.del > 0 {
                let lvs =
                    oplog.add_delete_at(agents[txn.agent], &frontier.clone(), patch.pos, patch.del);
                frontier = Frontier::new_1(lvs.last());
            }
            if !patch.ins.is_empty() {
                let lvs = oplog.add_insert_at(
                    agents[txn.agent],
                    &frontier.clone(),
                    patch.pos,
                    &patch.ins,
                );
                frontier = Frontier::new_1(lvs.last());
            }
        }
        txn_tips.push(frontier);
    }
    oplog
}

/// Serialises a trace to JSON.
pub fn to_json(trace: &JsonTrace) -> String {
    serde_json::to_string(trace).expect("trace serialisation cannot fail")
}

/// Parses a trace from JSON.
pub fn from_json(s: &str) -> Result<JsonTrace, serde_json::Error> {
    serde_json::from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::spec::builtin_specs;

    #[test]
    fn roundtrip_preserves_replay() {
        for spec in builtin_specs(0.002) {
            let oplog = generate(&spec);
            let expected = oplog.checkout_tip().content.to_string();
            let trace = export(&oplog);
            let json = to_json(&trace);
            let parsed = from_json(&json).unwrap();
            assert_eq!(parsed, trace);
            let imported = import(&parsed);
            assert_eq!(imported.len(), oplog.len(), "{}", spec.name);
            let got = imported.checkout_tip().content.to_string();
            assert_eq!(got, expected, "{}", spec.name);
        }
    }

    #[test]
    fn export_simple() {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("alice");
        oplog.add_insert(a, 0, "hi");
        oplog.add_delete(a, 0, 1);
        let t = export(&oplog);
        assert_eq!(t.agents, vec!["alice"]);
        assert_eq!(t.txns.len(), 1);
        assert_eq!(t.txns[0].patches.len(), 2);
    }
}
