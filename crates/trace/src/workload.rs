//! Multi-document sync workloads: deterministic edit scripts for driving
//! an [`eg_sync::NetworkSim`] across many nodes and document shards.
//!
//! The Table 1 generators ([`crate::gen`]) produce one oplog per trace —
//! the algorithm's input. The sync layer needs something different: a
//! *script* of node-scoped, document-scoped edits interleaved with time,
//! so the same workload can be replayed against different topologies
//! (mesh vs star), flush cadences, and link models and their
//! bytes-on-wire compared honestly. Positions are carried as raw hints
//! and reduced modulo the live document length at apply time, so every
//! edit is valid regardless of how deliveries interleaved.

use eg_sync::{DocId, NetworkSim};
use egwalker::testgen::SmallRng;

/// Parameters of one sync workload.
#[derive(Debug, Clone)]
pub struct SyncWorkloadSpec {
    /// Number of simulated nodes.
    pub nodes: usize,
    /// Number of document shards (ids `0..docs`).
    pub docs: u64,
    /// Total editing bursts to generate.
    pub bursts: usize,
    /// Characters typed (or deleted) per burst, `(min, max)` inclusive.
    pub burst_len: (usize, usize),
    /// Ticks of simulated time between bursts, `(min, max)` inclusive.
    pub gap_ticks: (u64, u64),
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for SyncWorkloadSpec {
    fn default() -> Self {
        SyncWorkloadSpec {
            nodes: 8,
            docs: 2,
            bursts: 64,
            burst_len: (2, 12),
            gap_ticks: (0, 3),
            seed: 0x5EED,
        }
    }
}

/// One step of a sync workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncOp {
    /// Insert `text` in `doc` at node `node`; `at` is reduced modulo the
    /// live document length at apply time.
    Insert {
        /// Editing node.
        node: usize,
        /// Target document shard.
        doc: u64,
        /// Raw position hint.
        at: u64,
        /// Characters to type.
        text: String,
    },
    /// Delete up to `len` characters in `doc` at node `node`.
    Delete {
        /// Editing node.
        node: usize,
        /// Target document shard.
        doc: u64,
        /// Raw position hint.
        at: u64,
        /// Characters to delete (clamped to the document).
        len: usize,
    },
    /// Advance simulated time by this many ticks.
    Ticks(u64),
}

/// Word-like filler, kept tiny and local (no dependency on the Table 1
/// babbler so the script shape stays independent of the trace
/// generators).
fn babble(rng: &mut SmallRng, n: usize) -> String {
    const SYLLABLES: &[&str] = &[
        "ing", "ter", "al", "ed", "es", "re", "tion", "an", "de", "en", "the", "to",
    ];
    let mut out = String::with_capacity(n + 4);
    while out.len() < n {
        if !out.is_empty() && rng.below(5) == 0 {
            out.push(' ');
        }
        out.push_str(SYLLABLES[rng.below(SYLLABLES.len())]);
    }
    out.truncate(n);
    out
}

/// Generates a deterministic multi-document edit script.
///
/// Bursts model typing: one node picks a (skewed-popularity) document and
/// types or deletes a run of characters, then time advances. Roughly one
/// burst in six deletes; everything else inserts.
pub fn sync_workload(spec: &SyncWorkloadSpec) -> Vec<SyncOp> {
    assert!(spec.nodes > 0 && spec.docs > 0 && spec.burst_len.0 >= 1);
    assert!(spec.burst_len.0 <= spec.burst_len.1);
    assert!(spec.gap_ticks.0 <= spec.gap_ticks.1);
    let mut rng = SmallRng::new(spec.seed);
    let mut ops = Vec::with_capacity(spec.bursts * 2);
    for _ in 0..spec.bursts {
        let node = rng.below(spec.nodes);
        // Skew document popularity: min of two draws biases toward low
        // ids, giving a few hot shards and a long cool tail.
        let doc = (rng
            .below(spec.docs as usize)
            .min(rng.below(spec.docs as usize))) as u64;
        let len = spec.burst_len.0 + rng.below(spec.burst_len.1 - spec.burst_len.0 + 1);
        let at = (rng.below(usize::MAX >> 1)) as u64;
        if rng.below(6) == 0 {
            ops.push(SyncOp::Delete { node, doc, at, len });
        } else {
            let text = babble(&mut rng, len);
            ops.push(SyncOp::Insert {
                node,
                doc,
                at,
                text,
            });
        }
        let gap =
            spec.gap_ticks.0 + rng.below((spec.gap_ticks.1 - spec.gap_ticks.0 + 1) as usize) as u64;
        if gap > 0 {
            ops.push(SyncOp::Ticks(gap));
        }
    }
    ops
}

/// Applies one script step to a sync engine, clamping position hints to
/// the editing node's live view.
pub fn apply_sync_op(net: &mut NetworkSim, op: &SyncOp) {
    match op {
        SyncOp::Insert {
            node,
            doc,
            at,
            text,
        } => {
            let len = net.replica(*node).len_chars_doc(DocId(*doc));
            let pos = (*at as usize) % (len + 1);
            net.edit_insert_doc(*node, DocId(*doc), pos, text);
        }
        SyncOp::Delete { node, doc, at, len } => {
            let doc_len = net.replica(*node).len_chars_doc(DocId(*doc));
            if doc_len == 0 {
                return;
            }
            let pos = (*at as usize) % doc_len;
            let n = (*len).min(doc_len - pos);
            if n > 0 {
                net.edit_delete_doc(*node, DocId(*doc), pos, n);
            }
        }
        SyncOp::Ticks(n) => {
            for _ in 0..*n {
                net.tick();
            }
        }
    }
}

/// Applies a whole script; see [`apply_sync_op`].
pub fn apply_sync_workload(net: &mut NetworkSim, ops: &[SyncOp]) {
    for op in ops {
        apply_sync_op(net, op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let spec = SyncWorkloadSpec::default();
        assert_eq!(sync_workload(&spec), sync_workload(&spec));
        let other = SyncWorkloadSpec {
            seed: 1,
            ..spec.clone()
        };
        assert_ne!(sync_workload(&spec), sync_workload(&other));
    }

    #[test]
    fn workload_respects_bounds() {
        let spec = SyncWorkloadSpec {
            nodes: 5,
            docs: 3,
            bursts: 200,
            ..Default::default()
        };
        let ops = sync_workload(&spec);
        let mut edits = 0;
        for op in &ops {
            match op {
                SyncOp::Insert {
                    node, doc, text, ..
                } => {
                    assert!(*node < 5 && *doc < 3);
                    assert!((2..=12).contains(&text.len()));
                    edits += 1;
                }
                SyncOp::Delete { node, doc, len, .. } => {
                    assert!(*node < 5 && *doc < 3);
                    assert!((2..=12).contains(len));
                    edits += 1;
                }
                SyncOp::Ticks(n) => assert!((1..=3).contains(n)),
            }
        }
        assert_eq!(edits, 200);
    }

    #[test]
    fn workload_drives_a_sim_to_convergence() {
        let spec = SyncWorkloadSpec {
            nodes: 4,
            docs: 3,
            bursts: 40,
            ..Default::default()
        };
        let ops = sync_workload(&spec);
        let names: Vec<String> = (0..4).map(|i| format!("n{i}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let mut net = NetworkSim::new(&refs, 99);
        apply_sync_workload(&mut net, &ops);
        assert!(net.run_until_quiescent(50_000));
        assert!(net.all_converged());
        // The hot shard really is multi-writer.
        assert!(net.replica(0).len_chars_doc(DocId(0)) > 0);
    }
}
