//! Multi-document sync workloads: deterministic edit scripts for driving
//! an [`eg_sync::NetworkSim`] across many nodes and document shards.
//!
//! The Table 1 generators ([`crate::gen`]) produce one oplog per trace —
//! the algorithm's input. The sync layer needs something different: a
//! *script* of node-scoped, document-scoped edits interleaved with time,
//! so the same workload can be replayed against different topologies
//! (mesh vs star), flush cadences, and link models and their
//! bytes-on-wire compared honestly. Positions are carried as raw hints
//! and reduced modulo the live document length at apply time, so every
//! edit is valid regardless of how deliveries interleaved.

use eg_sync::{DocId, NetworkSim};
use egwalker::testgen::SmallRng;

/// Parameters of one sync workload.
#[derive(Debug, Clone)]
pub struct SyncWorkloadSpec {
    /// Number of simulated nodes.
    pub nodes: usize,
    /// Number of document shards (ids `0..docs`).
    pub docs: u64,
    /// Total editing bursts to generate.
    pub bursts: usize,
    /// Characters typed (or deleted) per burst, `(min, max)` inclusive.
    pub burst_len: (usize, usize),
    /// Ticks of simulated time between bursts, `(min, max)` inclusive.
    pub gap_ticks: (u64, u64),
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for SyncWorkloadSpec {
    fn default() -> Self {
        SyncWorkloadSpec {
            nodes: 8,
            docs: 2,
            bursts: 64,
            burst_len: (2, 12),
            gap_ticks: (0, 3),
            seed: 0x5EED,
        }
    }
}

/// One step of a sync workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncOp {
    /// Insert `text` in `doc` at node `node`; `at` is reduced modulo the
    /// live document length at apply time.
    Insert {
        /// Editing node.
        node: usize,
        /// Target document shard.
        doc: u64,
        /// Raw position hint.
        at: u64,
        /// Characters to type.
        text: String,
    },
    /// Delete up to `len` characters in `doc` at node `node`.
    Delete {
        /// Editing node.
        node: usize,
        /// Target document shard.
        doc: u64,
        /// Raw position hint.
        at: u64,
        /// Characters to delete (clamped to the document).
        len: usize,
    },
    /// Advance simulated time by this many ticks.
    Ticks(u64),
}

/// Word-like filler, kept tiny and local (no dependency on the Table 1
/// babbler so the script shape stays independent of the trace
/// generators).
fn babble(rng: &mut SmallRng, n: usize) -> String {
    const SYLLABLES: &[&str] = &[
        "ing", "ter", "al", "ed", "es", "re", "tion", "an", "de", "en", "the", "to",
    ];
    let mut out = String::with_capacity(n + 4);
    while out.len() < n {
        if !out.is_empty() && rng.below(5) == 0 {
            out.push(' ');
        }
        out.push_str(SYLLABLES[rng.below(SYLLABLES.len())]);
    }
    out.truncate(n);
    out
}

/// Generates a deterministic multi-document edit script.
///
/// Bursts model typing: one node picks a (skewed-popularity) document and
/// types or deletes a run of characters, then time advances. Roughly one
/// burst in six deletes; everything else inserts.
pub fn sync_workload(spec: &SyncWorkloadSpec) -> Vec<SyncOp> {
    assert!(spec.nodes > 0 && spec.docs > 0 && spec.burst_len.0 >= 1);
    assert!(spec.burst_len.0 <= spec.burst_len.1);
    assert!(spec.gap_ticks.0 <= spec.gap_ticks.1);
    let mut rng = SmallRng::new(spec.seed);
    let mut ops = Vec::with_capacity(spec.bursts * 2);
    for _ in 0..spec.bursts {
        let node = rng.below(spec.nodes);
        // Skew document popularity: min of two draws biases toward low
        // ids, giving a few hot shards and a long cool tail.
        let doc = (rng
            .below(spec.docs as usize)
            .min(rng.below(spec.docs as usize))) as u64;
        let len = spec.burst_len.0 + rng.below(spec.burst_len.1 - spec.burst_len.0 + 1);
        let at = (rng.below(usize::MAX >> 1)) as u64;
        if rng.below(6) == 0 {
            ops.push(SyncOp::Delete { node, doc, at, len });
        } else {
            let text = babble(&mut rng, len);
            ops.push(SyncOp::Insert {
                node,
                doc,
                at,
                text,
            });
        }
        let gap =
            spec.gap_ticks.0 + rng.below((spec.gap_ticks.1 - spec.gap_ticks.0 + 1) as usize) as u64;
        if gap > 0 {
            ops.push(SyncOp::Ticks(gap));
        }
    }
    ops
}

/// Applies one script step to a sync engine, clamping position hints to
/// the editing node's live view.
pub fn apply_sync_op(net: &mut NetworkSim, op: &SyncOp) {
    match op {
        SyncOp::Insert {
            node,
            doc,
            at,
            text,
        } => {
            let len = net.replica(*node).len_chars_doc(DocId(*doc));
            let pos = (*at as usize) % (len + 1);
            net.edit_insert_doc(*node, DocId(*doc), pos, text);
        }
        SyncOp::Delete { node, doc, at, len } => {
            let doc_len = net.replica(*node).len_chars_doc(DocId(*doc));
            if doc_len == 0 {
                return;
            }
            let pos = (*at as usize) % doc_len;
            let n = (*len).min(doc_len - pos);
            if n > 0 {
                net.edit_delete_doc(*node, DocId(*doc), pos, n);
            }
        }
        SyncOp::Ticks(n) => {
            for _ in 0..*n {
                net.tick();
            }
        }
    }
}

/// Applies a whole script; see [`apply_sync_op`].
pub fn apply_sync_workload(net: &mut NetworkSim, ops: &[SyncOp]) {
    for op in ops {
        apply_sync_op(net, op);
    }
}

// ---------------------------------------------------------------------------
// Fleet workloads: what a multi-core server host actually serves.
// ---------------------------------------------------------------------------

/// Parameters of a fleet workload: many documents, many sessions, the
/// access patterns observed in large collaborative deployments (see the
/// Large-Scale Collaborative Writing paper in PAPERS.md): *zipfian*
/// document popularity (a few hot documents, a long cold tail), *bursty*
/// typing separated by think time, and session *churn* (editors joining
/// a document, working for a while, and moving on).
///
/// The generated script is a pure function of the spec, so the same fleet
/// can be replayed against a single-threaded baseline and a multi-worker
/// host and the results compared byte for byte.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Document population (ids `0..docs`; id 0 is the most popular).
    pub docs: u64,
    /// Live session slots. Each slot is one editor identity (`s<slot>`);
    /// on churn the slot leaves its document and rejoins another.
    pub sessions: usize,
    /// Total edit operations (insert or delete bursts) to generate.
    pub edits: usize,
    /// Zipf exponent for document popularity (1.0 is the classic web
    /// skew; 0.0 degenerates to uniform).
    pub zipf_s: f64,
    /// Characters typed (or deleted) per burst, `(min, max)` inclusive.
    pub burst_len: (usize, usize),
    /// Think-time ticks between one session's bursts, `(min, max)`
    /// inclusive.
    pub think_ticks: (u64, u64),
    /// Per-burst probability (‰) that the session leaves its document
    /// afterwards and rejoins a freshly drawn one.
    pub churn_per_mille: u32,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for FleetSpec {
    fn default() -> Self {
        FleetSpec {
            docs: 128,
            sessions: 64,
            edits: 4096,
            zipf_s: 1.0,
            burst_len: (2, 12),
            think_ticks: (1, 8),
            churn_per_mille: 30,
            seed: 0xF1EE7,
        }
    }
}

/// One step of a fleet workload.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetOp {
    /// Session `session` opens `doc` and will edit it until it leaves.
    Join {
        /// Session slot.
        session: u32,
        /// Document it opened.
        doc: u64,
    },
    /// Session `session` closes its current document.
    Leave {
        /// Session slot.
        session: u32,
    },
    /// One typing burst: `text` inserted at the raw position hint `at`
    /// (reduced modulo the live document length at apply time).
    Insert {
        /// Authoring session slot.
        session: u32,
        /// Target document.
        doc: u64,
        /// Raw position hint.
        at: u64,
        /// Characters typed.
        text: String,
    },
    /// One deletion burst: up to `len` characters removed at the raw
    /// position hint `at` (clamped to the live document at apply time).
    Delete {
        /// Authoring session slot.
        session: u32,
        /// Target document.
        doc: u64,
        /// Raw position hint.
        at: u64,
        /// Characters to delete.
        len: usize,
    },
    /// Simulated think time: no session was due for this many ticks.
    Ticks(u64),
}

/// Zipfian sampler over `0..docs`: popularity of rank `k` is
/// `1 / (k+1)^s`, sampled by binary search over the cumulative weights.
/// Purely deterministic for a given RNG stream.
#[derive(Debug, Clone)]
struct Zipf {
    /// Cumulative (unnormalised) weights; `cdf[k]` covers ranks `0..=k`.
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(docs: u64, s: f64) -> Self {
        assert!(docs > 0, "zipf over an empty population");
        let mut cdf = Vec::with_capacity(docs as usize);
        let mut total = 0.0;
        for k in 0..docs {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut SmallRng) -> u64 {
        let target = rng.unit_f64() * self.cdf[self.cdf.len() - 1];
        // partition_point: first rank whose cumulative weight exceeds the
        // dart. The last bucket is a catch-all for target == total.
        let idx = self.cdf.partition_point(|&c| c <= target);
        idx.min(self.cdf.len() - 1) as u64
    }
}

/// One live session while generating: its document and next wake-up time.
#[derive(Debug, Clone)]
struct SessionState {
    doc: u64,
    wake: u64,
}

/// Generates a deterministic fleet edit script (see [`FleetSpec`]).
///
/// The script is event-driven: every session sleeps for a think-time gap
/// between bursts, and the generator always wakes the earliest-due
/// session (ties broken by slot number), so sessions genuinely interleave
/// the way a fleet of concurrent editors does. A burst is one run of
/// typing (roughly one in six bursts deletes instead); after a burst the
/// session may churn — leave its document and rejoin a freshly drawn
/// (zipf-popular) one.
pub fn fleet_workload(spec: &FleetSpec) -> Vec<FleetOp> {
    assert!(spec.docs > 0 && spec.sessions > 0, "empty fleet");
    assert!(spec.sessions <= u32::MAX as usize, "too many sessions");
    assert!(spec.burst_len.0 >= 1 && spec.burst_len.0 <= spec.burst_len.1);
    assert!(spec.think_ticks.0 <= spec.think_ticks.1);
    let mut rng = SmallRng::new(spec.seed);
    let zipf = Zipf::new(spec.docs, spec.zipf_s);
    let mut ops = Vec::with_capacity(spec.edits * 2 + spec.sessions);
    let mut now = 0u64;

    // Everyone joins up front, with staggered first wake-ups so the
    // initial bursts interleave rather than running slot 0..n in order.
    let mut sessions: Vec<SessionState> = (0..spec.sessions)
        .map(|slot| {
            let doc = zipf.sample(&mut rng);
            ops.push(FleetOp::Join {
                session: slot as u32,
                doc,
            });
            let spread = spec.think_ticks.1.max(1);
            SessionState {
                doc,
                wake: rng.below(spread as usize) as u64,
            }
        })
        .collect();

    for _ in 0..spec.edits {
        // Wake the earliest-due session (lowest slot wins ties).
        let slot = (0..sessions.len())
            .min_by_key(|&i| (sessions[i].wake, i))
            .unwrap();
        if sessions[slot].wake > now {
            ops.push(FleetOp::Ticks(sessions[slot].wake - now));
            now = sessions[slot].wake;
        }
        let session = slot as u32;
        let doc = sessions[slot].doc;
        let len = spec.burst_len.0 + rng.below(spec.burst_len.1 - spec.burst_len.0 + 1);
        let at = (rng.below(usize::MAX >> 1)) as u64;
        if rng.below(6) == 0 {
            ops.push(FleetOp::Delete {
                session,
                doc,
                at,
                len,
            });
        } else {
            let text = babble(&mut rng, len);
            ops.push(FleetOp::Insert {
                session,
                doc,
                at,
                text,
            });
        }
        // Churn: leave and rejoin a freshly drawn document.
        if rng.below(1000) < spec.churn_per_mille as usize {
            ops.push(FleetOp::Leave { session });
            let doc = zipf.sample(&mut rng);
            ops.push(FleetOp::Join { session, doc });
            sessions[slot].doc = doc;
        }
        let think = spec.think_ticks.0
            + rng.below((spec.think_ticks.1 - spec.think_ticks.0 + 1) as usize) as u64;
        sessions[slot].wake = now + think;
    }
    for slot in 0..spec.sessions {
        ops.push(FleetOp::Leave {
            session: slot as u32,
        });
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let spec = SyncWorkloadSpec::default();
        assert_eq!(sync_workload(&spec), sync_workload(&spec));
        let other = SyncWorkloadSpec {
            seed: 1,
            ..spec.clone()
        };
        assert_ne!(sync_workload(&spec), sync_workload(&other));
    }

    #[test]
    fn workload_respects_bounds() {
        let spec = SyncWorkloadSpec {
            nodes: 5,
            docs: 3,
            bursts: 200,
            ..Default::default()
        };
        let ops = sync_workload(&spec);
        let mut edits = 0;
        for op in &ops {
            match op {
                SyncOp::Insert {
                    node, doc, text, ..
                } => {
                    assert!(*node < 5 && *doc < 3);
                    assert!((2..=12).contains(&text.len()));
                    edits += 1;
                }
                SyncOp::Delete { node, doc, len, .. } => {
                    assert!(*node < 5 && *doc < 3);
                    assert!((2..=12).contains(len));
                    edits += 1;
                }
                SyncOp::Ticks(n) => assert!((1..=3).contains(n)),
            }
        }
        assert_eq!(edits, 200);
    }

    #[test]
    fn workload_drives_a_sim_to_convergence() {
        let spec = SyncWorkloadSpec {
            nodes: 4,
            docs: 3,
            bursts: 40,
            ..Default::default()
        };
        let ops = sync_workload(&spec);
        let names: Vec<String> = (0..4).map(|i| format!("n{i}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let mut net = NetworkSim::new(&refs, 99);
        apply_sync_workload(&mut net, &ops);
        assert!(net.run_until_quiescent(50_000));
        assert!(net.all_converged());
        // The hot shard really is multi-writer.
        assert!(net.replica(0).len_chars_doc(DocId(0)) > 0);
    }

    // --- fleet workloads -------------------------------------------------

    #[test]
    fn fleet_is_deterministic() {
        let spec = FleetSpec::default();
        assert_eq!(fleet_workload(&spec), fleet_workload(&spec));
        let other = FleetSpec {
            seed: 1,
            ..spec.clone()
        };
        assert_ne!(fleet_workload(&spec), fleet_workload(&other));
    }

    #[test]
    fn fleet_respects_bounds() {
        let spec = FleetSpec {
            docs: 24,
            sessions: 10,
            edits: 800,
            ..Default::default()
        };
        let ops = fleet_workload(&spec);
        let mut edits = 0;
        let mut current_doc = vec![None::<u64>; spec.sessions];
        for op in &ops {
            match op {
                FleetOp::Join { session, doc } => {
                    assert!(*doc < 24 && (*session as usize) < 10);
                    assert!(current_doc[*session as usize].is_none(), "double join");
                    current_doc[*session as usize] = Some(*doc);
                }
                FleetOp::Leave { session } => {
                    assert!(
                        current_doc[*session as usize].take().is_some(),
                        "leave w/o join"
                    );
                }
                FleetOp::Insert {
                    session, doc, text, ..
                } => {
                    assert_eq!(current_doc[*session as usize], Some(*doc), "edit w/o join");
                    assert!((2..=12).contains(&text.len()));
                    edits += 1;
                }
                FleetOp::Delete {
                    session, doc, len, ..
                } => {
                    assert_eq!(current_doc[*session as usize], Some(*doc), "edit w/o join");
                    assert!((2..=12).contains(len));
                    edits += 1;
                }
                FleetOp::Ticks(n) => assert!(*n > 0),
            }
        }
        assert_eq!(edits, 800);
        assert!(
            current_doc.iter().all(Option::is_none),
            "sessions left open"
        );
    }

    #[test]
    fn fleet_popularity_is_zipfian() {
        let spec = FleetSpec {
            docs: 64,
            sessions: 32,
            edits: 6000,
            ..Default::default()
        };
        let ops = fleet_workload(&spec);
        let mut per_doc = vec![0usize; 64];
        for op in &ops {
            match op {
                FleetOp::Insert { doc, .. } | FleetOp::Delete { doc, .. } => {
                    per_doc[*doc as usize] += 1;
                }
                _ => {}
            }
        }
        // Rank 0 is the hottest document and the head dwarfs the tail:
        // with s = 1.0 over 64 docs, rank 0 alone carries ~1/H(64) ≈ 21%
        // of the traffic and the top 8 docs a majority of it.
        let max = *per_doc.iter().max().unwrap();
        assert_eq!(per_doc[0], max, "doc 0 is not the hottest");
        let head: usize = per_doc[..8].iter().sum();
        assert!(
            head * 2 > spec.edits,
            "top-8 docs carry only {head}/{} edits — popularity is not skewed",
            spec.edits
        );
        let tail: usize = per_doc[32..].iter().sum();
        assert!(
            tail * 4 < spec.edits,
            "cold tail carries {tail}/{} edits — too flat",
            spec.edits
        );
    }

    #[test]
    fn fleet_churns_sessions() {
        let spec = FleetSpec {
            churn_per_mille: 100,
            ..Default::default()
        };
        let ops = fleet_workload(&spec);
        let joins = ops
            .iter()
            .filter(|op| matches!(op, FleetOp::Join { .. }))
            .count();
        // Every slot joins once up front; churn must add rejoins on top.
        assert!(
            joins > spec.sessions + spec.edits / 50,
            "only {joins} joins across {} edits — churn is not happening",
            spec.edits
        );
    }

    #[test]
    fn fleet_interleaves_sessions() {
        let ops = fleet_workload(&FleetSpec::default());
        // Consecutive edits should regularly come from different sessions
        // (think time forces interleaving).
        let authors: Vec<u32> = ops
            .iter()
            .filter_map(|op| match op {
                FleetOp::Insert { session, .. } | FleetOp::Delete { session, .. } => Some(*session),
                _ => None,
            })
            .collect();
        let switches = authors.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            switches * 2 > authors.len(),
            "sessions do not interleave: {switches} switches over {} edits",
            authors.len()
        );
    }
}
