//! Synthetic trace generators (paper §4.1).
//!
//! Each generator simulates the editing *process* that produced the
//! corresponding real trace, emitting events directly into an [`OpLog`].
//! Positions are always generated against a simulated author's live
//! document, maintained with real Eg-walker merges — so every event is
//! valid in its parent version, exactly as in a recorded trace.

use crate::spec::{TraceKind, TraceSpec};
use eg_dag::Frontier;
use egwalker::testgen::SmallRng;
use egwalker::{Branch, OpLog};

/// One simulated author: a version, the document at it, and a cursor.
struct Author {
    frontier: Frontier,
    doc_len: usize,
    cursor: usize,
    agent: eg_dag::AgentId,
}

/// Word-like filler text generator.
struct Babbler {
    syllables: Vec<&'static str>,
}

impl Babbler {
    fn new() -> Self {
        Babbler {
            syllables: vec![
                "ing", "ter", "al", "ed", "es", "re", "tion", "an", "de", "en", "the", "to", "or",
                "st", "ar", "nd", "is", "of", "and", "in", "er", "at", "on", "it",
            ],
        }
    }

    /// Produces `n` characters of plausible prose.
    fn text(&self, rng: &mut SmallRng, n: usize) -> String {
        let mut out = String::with_capacity(n + 8);
        while out.chars().count() < n {
            if !out.is_empty() && rng.below(5) == 0 {
                out.push(' ');
            }
            out.push_str(self.syllables[rng.below(self.syllables.len())]);
        }
        out.chars().take(n).collect()
    }
}

/// Generates a trace per its specification, returning the oplog.
pub fn generate(spec: &TraceSpec) -> OpLog {
    match spec.kind {
        TraceKind::Sequential => gen_sequential(spec),
        TraceKind::Concurrent => gen_concurrent(spec),
        TraceKind::Asynchronous => gen_async(spec),
    }
}

/// An editing turn: a burst of typing/deleting by one author, applied at
/// their current version. Returns the number of events emitted.
#[allow(clippy::too_many_arguments)]
fn edit_turn(
    oplog: &mut OpLog,
    rng: &mut SmallRng,
    babbler: &Babbler,
    author: &mut Author,
    turn_events: usize,
    keep_ratio: f64,
    ins_burst: usize,
    del_burst: usize,
) -> usize {
    let mut done = 0;
    // Probability that a burst deletes rather than inserts, tuned so the
    // expected deleted characters are (1 - keep_ratio) of the inserted
    // ones, accounting for the different average burst sizes:
    // p·d̄ = (1-keep)·(1-p)·ī.
    let ins_avg = (1.0 + ins_burst as f64) / 2.0;
    let del_avg = (1.0 + del_burst as f64) / 2.0;
    let p_del = (1.0 - keep_ratio) * ins_avg / (del_avg + (1.0 - keep_ratio) * ins_avg);
    while done < turn_events {
        // Move the cursor occasionally (people scroll around).
        if rng.below(8) == 0 {
            author.cursor = rng.below(author.doc_len + 1);
        }
        author.cursor = author.cursor.min(author.doc_len);
        let deleting = author.doc_len > 16 && rng.unit_f64() < p_del;
        if deleting {
            let n = (1 + rng.below(del_burst)).min(turn_events - done);
            if rng.below(2) == 0 && author.cursor >= n {
                // Backspace run.
                let lvs = oplog.add_backspace_at(
                    author.agent,
                    &author.frontier.clone(),
                    author.cursor - 1,
                    n,
                );
                author.frontier = Frontier::new_1(lvs.last());
                author.cursor -= n;
            } else {
                let pos = author.cursor.min(author.doc_len - 1);
                let n = n.min(author.doc_len - pos);
                let lvs = oplog.add_delete_at(author.agent, &author.frontier.clone(), pos, n);
                author.frontier = Frontier::new_1(lvs.last());
            }
            author.doc_len -= n.min(author.doc_len);
            done += n;
        } else {
            let n = (1 + rng.below(ins_burst)).min(turn_events - done);
            let text = babbler.text(rng, n);
            let lvs =
                oplog.add_insert_at(author.agent, &author.frontier.clone(), author.cursor, &text);
            author.frontier = Frontier::new_1(lvs.last());
            author.cursor += n;
            author.doc_len += n;
            done += n;
        }
    }
    done
}

/// Sequential traces (S1–S3): authors take turns; the graph is one linear
/// chain.
fn gen_sequential(spec: &TraceSpec) -> OpLog {
    let mut rng = SmallRng::new(spec.seed);
    let babbler = Babbler::new();
    let mut oplog = OpLog::new();
    let agents: Vec<_> = (0..spec.authors)
        .map(|i| oplog.get_or_create_agent(&format!("author{i}")))
        .collect();
    let mut author = Author {
        frontier: Frontier::root(),
        doc_len: 0,
        cursor: 0,
        agent: agents[0],
    };
    let mut emitted = 0;
    let mut turn = 0usize;
    while emitted < spec.target_events {
        author.agent = agents[turn % spec.authors];
        turn += 1;
        let turn_events = (spec.turn_len.0 + rng.below(spec.turn_len.1 - spec.turn_len.0 + 1))
            .min(spec.target_events - emitted);
        emitted += edit_turn(
            &mut oplog,
            &mut rng,
            &babbler,
            &mut author,
            turn_events,
            spec.keep_ratio,
            20,
            8,
        );
        // Turn hand-off is sequential: the next author continues from the
        // same version.
    }
    oplog
}

/// Concurrent traces (C1, C2): two authors typing at the same time with
/// ~1 s of latency — each works against a slightly stale version, creating
/// many short-lived branches that immediately merge.
fn gen_concurrent(spec: &TraceSpec) -> OpLog {
    let mut rng = SmallRng::new(spec.seed);
    let babbler = Babbler::new();
    let mut oplog = OpLog::new();
    let agents: Vec<_> = (0..spec.authors)
        .map(|i| oplog.get_or_create_agent(&format!("author{i}")))
        .collect();
    // The shared merged state both editors observe (with latency).
    let mut shared = Branch::new();
    let mut emitted = 0;
    while emitted < spec.target_events {
        let mut tips: Vec<Frontier> = Vec::new();
        // One "latency window": each author types a small burst in
        // parallel, based on the shared state.
        for &agent in &agents {
            let mut author = Author {
                frontier: shared.version.clone(),
                doc_len: shared.len_chars(),
                cursor: rng.below(shared.len_chars() + 1),
                agent,
            };
            let burst = (spec.turn_len.0 + rng.below(spec.turn_len.1 - spec.turn_len.0 + 1))
                .min(spec.target_events.saturating_sub(emitted).max(1));
            emitted += edit_turn(
                &mut oplog,
                &mut rng,
                &babbler,
                &mut author,
                burst,
                spec.keep_ratio,
                6,
                3,
            );
            tips.push(author.frontier);
        }
        // Deliver: both sides receive each other's burst.
        for tip in tips {
            shared.merge_to(&oplog, &tip);
        }
    }
    oplog
}

/// Asynchronous traces (A1, A2): long-running branches in the style of git
/// histories — contributors fork from some version, edit offline for a
/// long turn, and merge later. `live_branches` controls how many branches
/// stay open at once.
fn gen_async(spec: &TraceSpec) -> OpLog {
    let mut rng = SmallRng::new(spec.seed);
    let babbler = Babbler::new();
    let mut oplog = OpLog::new();
    let agents: Vec<_> = (0..spec.authors)
        .map(|i| oplog.get_or_create_agent(&format!("dev{i:03}")))
        .collect();
    // Branch pool: (frontier, doc at it). Start with a small trunk.
    let mut trunk = Branch::new();
    {
        let mut author = Author {
            frontier: Frontier::root(),
            doc_len: 0,
            cursor: 0,
            agent: agents[0],
        };
        edit_turn(
            &mut oplog,
            &mut rng,
            &babbler,
            &mut author,
            (spec.target_events / 20).max(64),
            spec.keep_ratio,
            24,
            10,
        );
        trunk.merge_to(&oplog, &author.frontier);
    }
    let mut branches: Vec<Branch> = vec![trunk];
    let mut emitted = oplog.len();
    let mut author_idx = 0usize;
    while emitted < spec.target_events {
        let roll = rng.below(10);
        if branches.len() < spec.live_branches && roll < 6 {
            // Fork a new branch from a random existing one.
            let src = rng.below(branches.len());
            branches.push(branches[src].clone());
        } else if branches.len() > 1 && (roll < 2 || emitted >= spec.target_events) {
            // Merge a random branch into another.
            let a = rng.below(branches.len());
            let mut b = rng.below(branches.len());
            if a == b {
                b = (b + 1) % branches.len();
            }
            let tip = branches[b].version.clone();
            branches[a].merge_to(&oplog, &tip);
            branches.remove(b);
            continue;
        }
        // Extend a random branch with a long offline turn.
        let i = rng.below(branches.len());
        let branch = &mut branches[i];
        let mut author = Author {
            frontier: branch.version.clone(),
            doc_len: branch.len_chars(),
            cursor: rng.below(branch.len_chars() + 1),
            agent: agents[author_idx % agents.len()],
        };
        author_idx += 1;
        let turn_events = (spec.turn_len.0 + rng.below(spec.turn_len.1 - spec.turn_len.0 + 1))
            .min(spec.target_events - emitted);
        emitted += edit_turn(
            &mut oplog,
            &mut rng,
            &babbler,
            &mut author,
            turn_events,
            spec.keep_ratio,
            32,
            12,
        );
        let tip = author.frontier.clone();
        branch.merge_to(&oplog, &tip);
    }
    // Merge everything at the end (the paper's traces end merged).
    let mut final_branch = branches.pop().unwrap();
    for b in branches {
        let tip = b.version.clone();
        final_branch.merge_to(&oplog, &tip);
    }
    // Record the final merge event so the graph frontier is a single
    // version, as in the real traces.
    if oplog.version().len() > 1 {
        let v = oplog.version().clone();
        oplog.add_insert_at(agents[0], &v, 0, "\n");
    }
    oplog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::builtin_specs;

    fn small_specs() -> Vec<TraceSpec> {
        builtin_specs(0.004) // ~3-9k events per trace
    }

    #[test]
    fn generators_are_deterministic() {
        for spec in small_specs() {
            let a = generate(&spec);
            let b = generate(&spec);
            assert_eq!(a.len(), b.len(), "{}", spec.name);
            assert_eq!(a.version(), b.version(), "{}", spec.name);
        }
    }

    #[test]
    fn sequential_traces_are_linear() {
        for spec in small_specs().into_iter().take(3) {
            let oplog = generate(&spec);
            assert_eq!(oplog.graph.num_entries(), 1, "{}", spec.name);
        }
    }

    #[test]
    fn concurrent_traces_branch_and_replay() {
        for spec in small_specs()
            .into_iter()
            .filter(|s| s.name.starts_with('C'))
        {
            let oplog = generate(&spec);
            assert!(oplog.graph.num_entries() > 50, "{}", spec.name);
            // The full walker replays them without panicking.
            let doc = oplog.checkout_tip();
            assert!(doc.len_chars() > 0);
        }
    }

    #[test]
    fn async_traces_have_long_branches_and_replay() {
        for spec in small_specs()
            .into_iter()
            .filter(|s| s.name.starts_with('A'))
        {
            let oplog = generate(&spec);
            assert!(oplog.graph.num_entries() > 3, "{}", spec.name);
            let doc = oplog.checkout_tip();
            assert!(doc.len_chars() > 0, "{}", spec.name);
        }
    }

    #[test]
    fn event_counts_hit_targets() {
        for spec in small_specs() {
            let oplog = generate(&spec);
            let target = spec.target_events as f64;
            let got = oplog.len() as f64;
            assert!(
                (got - target).abs() / target < 0.2,
                "{}: {} vs target {}",
                spec.name,
                got,
                target
            );
        }
    }
}
