//! Editing-trace suite for the Eg-walker evaluation (paper §4.1, Table 1).
//!
//! The paper benchmarks on seven recorded traces (LaTeX papers, a blog
//! post, two pair-writing sessions, two git histories) published in the
//! `editing-traces` repository. Those recordings are not redistributable
//! here, so this crate generates **synthetic traces with the same
//! statistical shape**: event counts, author counts, concurrency pattern
//! (linear / many short-lived branches / few long-running branches), graph
//! run counts and the fraction of inserted characters surviving to the end.
//! The benchmark-relevant behaviour of every algorithm in the suite is
//! driven exactly by those properties.
//!
//! * [`spec`] — the seven trace specifications (S1–S3, C1, C2, A1, A2) and
//!   their paper-reported target statistics, with a scale knob;
//! * [`gen`] — the generators (sequential typist, realtime pair editing
//!   with latency, git-style asynchronous branching);
//! * [`stats`] — Table 1 statistics computed from any oplog;
//! * [`json`] — (de)serialisation of traces in a simple JSON format
//!   modelled on the `editing-traces` repository's concurrent format;
//! * [`workload`] — multi-document sync workloads: deterministic edit
//!   scripts for driving `eg-sync` topologies (mesh vs star) over many
//!   nodes and shards, plus fleet workloads (zipfian document popularity,
//!   bursty sessions with churn) for the multi-core server host.

pub mod gen;
pub mod json;
pub mod spec;
pub mod stats;
pub mod workload;

pub use gen::generate;
pub use spec::{builtin_specs, spec_by_name, TraceKind, TraceSpec};
pub use stats::{trace_stats, TraceStats};
pub use workload::{
    apply_sync_workload, fleet_workload, sync_workload, FleetOp, FleetSpec, SyncOp,
    SyncWorkloadSpec,
};
