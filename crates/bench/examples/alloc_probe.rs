//! Allocation probe for the concurrent (C-series) replay path: prints how
//! many allocator calls the walk planner and the full walk make on a
//! 3-branch concurrent trace, cold and warm. This is the diagnostic that
//! attributed the per-merge allocation storm to the (pre-pooling) planner;
//! run it after touching the planner or tracker to see where the calls go.
//!
//! ```text
//! cargo run --release -p eg-bench --example alloc_probe
//! ```

use eg_bench::alloc_track::{alloc_calls, TrackingAlloc};
use eg_dag::walk::{PlanOrder, WalkPlan};
use eg_dag::Frontier;
use egwalker::testgen::SmallRng;
use egwalker::tracker::Tracker;
use egwalker::walker::WalkerOpts;
use egwalker::OpLog;

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

fn main() {
    let mut oplog = OpLog::new();
    let agents: Vec<u32> = (0..3)
        .map(|i| oplog.get_or_create_agent(&format!("user{i}")))
        .collect();
    let mut rng = SmallRng::new(0xc0c0);
    // Sequential prefix, then three long concurrent branches.
    oplog.add_insert(agents[0], 0, &"x".repeat(500));
    let base = oplog.version().clone();
    let mut frontiers: Vec<Frontier> = vec![base; 3];
    let mut lens = [500usize; 3];
    let mut total = 0;
    while total < 4500 {
        let a = rng.below(3);
        let burst = 1 + rng.below(6);
        let parents = frontiers[a].clone();
        let pos = rng.below(lens[a] + 1);
        let text: String = (0..burst)
            .map(|i| (b'a' + (i as u8 % 26)) as char)
            .collect();
        let lvs = oplog.add_insert_at(agents[a], &parents, pos, &text);
        lens[a] += burst;
        total += burst;
        frontiers[a] = Frontier::new_1(lvs.last());
    }

    let target = oplog.version().clone();
    let diff = oplog.graph.diff(&[], &target);
    let (wbase, spans) = oplog.graph.conflict_window(&[], &target);

    let mut plan = WalkPlan::new();
    let b0 = alloc_calls();
    plan.plan_with_order(
        &oplog.graph,
        &wbase,
        &spans,
        &diff.only_b,
        PlanOrder::SmallestFirst,
    );
    let b1 = alloc_calls();
    eprintln!("plan (cold pool): {} allocs, {} steps", b1 - b0, plan.len());

    let b2 = alloc_calls();
    plan.plan_with_order(
        &oplog.graph,
        &wbase,
        &spans,
        &diff.only_b,
        PlanOrder::SmallestFirst,
    );
    let b3 = alloc_calls();
    eprintln!("plan (warm pool): {} allocs", b3 - b2);

    let mut tracker: Tracker = Tracker::new();
    let opts = WalkerOpts::default();
    let b4 = alloc_calls();
    egwalker::walker::walk_reusing(
        &oplog,
        &wbase,
        &spans,
        &diff.only_b,
        opts,
        &mut tracker,
        &mut |_, _| {},
    );
    let b5 = alloc_calls();
    eprintln!("walk (incl. plan, cold tracker): {} allocs", b5 - b4);

    let b6 = alloc_calls();
    egwalker::walker::walk_reusing(
        &oplog,
        &wbase,
        &spans,
        &diff.only_b,
        opts,
        &mut tracker,
        &mut |_, _| {},
    );
    let b7 = alloc_calls();
    eprintln!("walk (incl. plan, warm tracker): {} allocs", b7 - b6);
}
