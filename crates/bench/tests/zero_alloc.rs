//! Tier-1 proof of the zero-allocation emit pipeline: transforming a
//! steady-state (sequential) run of events performs **zero per-op heap
//! allocations**, and applying it to a live branch allocates only the
//! amortised chunk-growth tail — never per operation.
//!
//! The whole test binary runs under the counting [`TrackingAlloc`], so the
//! numbers include every allocation the pipeline makes (walker plan,
//! tracker, rope, arena slices).

use eg_bench::alloc_track::{alloc_calls, TrackingAlloc};
use eg_rle::HasLength;
use egwalker::testgen::SmallRng;
use egwalker::walker::{self, WalkerOpts};
use egwalker::{Branch, OpLog};

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

/// Appends `events` single-author events to the oplog in short bursts at
/// pseudo-random positions (sequential history: every run chains on its
/// predecessor, as in the paper's S-series traces). Returns the number of
/// events appended.
fn append_sequential(oplog: &mut OpLog, agent: u32, rng: &mut SmallRng, events: usize) -> usize {
    let mut doc_len = oplog.checkout_tip().len_chars();
    let mut done = 0;
    while done < events {
        let burst = 1 + rng.below(8).min(events - done - 1);
        if doc_len > 32 && rng.below(4) == 0 {
            let pos = rng.below(doc_len - burst.min(doc_len - 1));
            let n = burst.min(doc_len - pos).max(1);
            oplog.add_delete(agent, pos, n);
            doc_len -= n;
            done += n;
        } else {
            let pos = rng.below(doc_len + 1);
            let text: String = (0..burst)
                .map(|i| (b'a' + (i as u8 % 26)) as char)
                .collect();
            oplog.add_insert(agent, pos, &text);
            doc_len += burst;
            done += burst;
        }
    }
    done
}

/// Transform-only allocation count: replay the new events through the
/// walker with a sink that reads (but does not copy) every borrowed op.
fn transform_allocs(oplog: &OpLog, from: &[usize]) -> usize {
    let target = oplog.graph.version_union(from, oplog.version());
    let diff = oplog.graph.diff(from, &target);
    let (base, spans) = oplog.graph.conflict_window(from, &target);
    let before = alloc_calls();
    let mut sum = 0usize;
    walker::walk(
        oplog,
        &base,
        &spans,
        &diff.only_b,
        WalkerOpts::default(),
        &mut |lvs, op| {
            // Touch the borrowed content so the slice is really served.
            sum += lvs.len() + op.pos + op.content.map_or(0, str::len);
        },
    );
    std::hint::black_box(sum);
    alloc_calls() - before
}

#[test]
fn transform_is_zero_alloc_per_op() {
    let mut oplog = OpLog::new();
    let agent = oplog.get_or_create_agent("solo");
    let mut rng = SmallRng::new(0x5eed);
    append_sequential(&mut oplog, agent, &mut rng, 2000);

    // Small batch, then a 4× batch: the walker's allocation count is the
    // per-merge fixed overhead (plan, tracker, frontier bookkeeping) and
    // must NOT scale with the number of events transformed.
    let from_small = oplog.version().clone();
    append_sequential(&mut oplog, agent, &mut rng, 1000);
    let allocs_small = transform_allocs(&oplog, &from_small);

    let from_large = oplog.version().clone();
    append_sequential(&mut oplog, agent, &mut rng, 4000);
    let allocs_large = transform_allocs(&oplog, &from_large);

    eprintln!("transform allocs: {allocs_small} (1000 events), {allocs_large} (4000 events)");
    assert!(
        allocs_small < 200,
        "transforming 1000 events allocated {allocs_small} times (expected fixed overhead only)"
    );
    assert!(
        allocs_large <= allocs_small + 64,
        "transform allocations scale with events: {allocs_small} for 1000 \
         events vs {allocs_large} for 4000"
    );
}

#[test]
fn transform_and_apply_allocates_sublinearly() {
    let mut oplog = OpLog::new();
    let agent = oplog.get_or_create_agent("solo");
    let mut rng = SmallRng::new(0xfeed);
    append_sequential(&mut oplog, agent, &mut rng, 2000);

    // Warm state: branch caught up, rope chunks built.
    let mut branch = Branch::new();
    branch.merge(&oplog);

    // Steady state: merge a fresh batch of sequential events into the live
    // branch and count every allocation on the transform+apply path.
    let events = append_sequential(&mut oplog, agent, &mut rng, 4000);
    let before = alloc_calls();
    branch.merge(&oplog);
    let allocs = alloc_calls() - before;

    // Per-op allocation (the pre-arena pipeline: a String per emitted
    // insert plus chunk copies) would cost >= `events` calls. The only
    // allocations left are amortised: rope chunk splits/growth (every
    // ~64 chars) and the per-merge fixed overhead.
    eprintln!("transform+apply allocs: {allocs} for {events} events");
    assert!(
        allocs < events / 4,
        "merge of {events} events allocated {allocs} times — per-op allocation regressed"
    );
    assert_eq!(
        branch.content.to_string(),
        oplog.checkout_tip().content.to_string()
    );
}
