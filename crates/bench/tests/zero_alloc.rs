//! Tier-1 proof of the zero-allocation emit pipeline: transforming a
//! steady-state (sequential) run of events performs **zero per-op heap
//! allocations**, and applying it to a live branch allocates only the
//! amortised chunk-growth tail — never per operation.
//!
//! The whole test binary runs under the counting [`TrackingAlloc`], so the
//! numbers include every allocation the pipeline makes (walker plan,
//! tracker, rope, arena slices).

use eg_bench::alloc_track::{alloc_calls, TrackingAlloc};
use eg_dag::Frontier;
use eg_rle::HasLength;
use egwalker::testgen::SmallRng;
use egwalker::tracker::Tracker;
use egwalker::walker::{self, WalkerOpts};
use egwalker::{Branch, OpLog};

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

/// Appends `events` single-author events to the oplog in short bursts at
/// pseudo-random positions (sequential history: every run chains on its
/// predecessor, as in the paper's S-series traces). Returns the number of
/// events appended.
fn append_sequential(oplog: &mut OpLog, agent: u32, rng: &mut SmallRng, events: usize) -> usize {
    let mut doc_len = oplog.checkout_tip().len_chars();
    let mut done = 0;
    while done < events {
        let burst = 1 + rng.below(8).min(events - done - 1);
        if doc_len > 32 && rng.below(4) == 0 {
            let pos = rng.below(doc_len - burst.min(doc_len - 1));
            let n = burst.min(doc_len - pos).max(1);
            oplog.add_delete(agent, pos, n);
            doc_len -= n;
            done += n;
        } else {
            let pos = rng.below(doc_len + 1);
            let text: String = (0..burst)
                .map(|i| (b'a' + (i as u8 % 26)) as char)
                .collect();
            oplog.add_insert(agent, pos, &text);
            doc_len += burst;
            done += burst;
        }
    }
    done
}

/// Transform-only allocation count: replay the new events through the
/// walker with a sink that reads (but does not copy) every borrowed op.
fn transform_allocs(oplog: &OpLog, from: &[usize]) -> usize {
    let target = oplog.graph.version_union(from, oplog.version());
    let diff = oplog.graph.diff(from, &target);
    let (base, spans) = oplog.graph.conflict_window(from, &target);
    let before = alloc_calls();
    let mut sum = 0usize;
    walker::walk(
        oplog,
        &base,
        &spans,
        &diff.only_b,
        WalkerOpts::default(),
        &mut |lvs, op| {
            // Touch the borrowed content so the slice is really served.
            sum += lvs.len() + op.pos + op.content.map_or(0, str::len);
        },
    );
    std::hint::black_box(sum);
    alloc_calls() - before
}

#[test]
fn transform_is_zero_alloc_per_op() {
    let mut oplog = OpLog::new();
    let agent = oplog.get_or_create_agent("solo");
    let mut rng = SmallRng::new(0x5eed);
    append_sequential(&mut oplog, agent, &mut rng, 2000);

    // Small batch, then a 4× batch: the walker's allocation count is the
    // per-merge fixed overhead (plan, tracker, frontier bookkeeping) and
    // must NOT scale with the number of events transformed.
    let from_small = oplog.version().clone();
    append_sequential(&mut oplog, agent, &mut rng, 1000);
    let allocs_small = transform_allocs(&oplog, &from_small);

    let from_large = oplog.version().clone();
    append_sequential(&mut oplog, agent, &mut rng, 4000);
    let allocs_large = transform_allocs(&oplog, &from_large);

    eprintln!("transform allocs: {allocs_small} (1000 events), {allocs_large} (4000 events)");
    assert!(
        allocs_small < 200,
        "transforming 1000 events allocated {allocs_small} times (expected fixed overhead only)"
    );
    assert!(
        allocs_large <= allocs_small + 64,
        "transform allocations scale with events: {allocs_small} for 1000 \
         events vs {allocs_large} for 4000"
    );
}

/// Appends `events` events per agent on `agents.len()` long-running
/// concurrent branches (no intermediate merges — the paper's C-series
/// shape: every branch is concurrent with every other). Positions are
/// relative to each agent's own isolated view.
fn append_concurrent(
    oplog: &mut OpLog,
    agents: &[u32],
    rng: &mut SmallRng,
    events_per_agent: usize,
) -> usize {
    let base = oplog.version().clone();
    let base_len = oplog.checkout_tip().len_chars();
    let mut frontiers: Vec<Frontier> = vec![base; agents.len()];
    let mut doc_lens: Vec<usize> = vec![base_len; agents.len()];
    let mut total = 0usize;
    let mut done = vec![0usize; agents.len()];
    while done.iter().any(|&d| d < events_per_agent) {
        let a = rng.below(agents.len());
        if done[a] >= events_per_agent {
            continue;
        }
        let burst = 1 + rng.below(6).min(events_per_agent - done[a] - 1);
        let parents = frontiers[a].clone();
        let lvs = if doc_lens[a] > 16 && rng.below(4) == 0 {
            let pos = rng.below(doc_lens[a] - 1);
            let n = burst.min(doc_lens[a] - pos).max(1);
            doc_lens[a] -= n;
            oplog.add_delete_at(agents[a], &parents, pos, n)
        } else {
            let pos = rng.below(doc_lens[a] + 1);
            let text: String = (0..burst)
                .map(|i| (b'a' + (i as u8 % 26)) as char)
                .collect();
            doc_lens[a] += burst;
            oplog.add_insert_at(agents[a], &parents, pos, &text)
        };
        let n = lvs.len();
        frontiers[a] = Frontier::new_1(lvs.last());
        done[a] += n;
        total += n;
    }
    total
}

/// Concurrent (C-series) batch: merging long concurrent branches must stay
/// well below one allocation per event — the slab-arena tracker builds its
/// whole CRDT structure out of inline-array nodes, so the only remaining
/// allocations are slab growth doublings and per-merge fixed overhead.
#[test]
fn concurrent_merge_allocates_sublinearly() {
    let mut oplog = OpLog::new();
    let agents: Vec<u32> = (0..3)
        .map(|i| oplog.get_or_create_agent(&format!("user{i}")))
        .collect();
    let mut rng = SmallRng::new(0xc0c0);
    // Shared sequential prefix, then three long concurrent branches.
    append_sequential(&mut oplog, agents[0], &mut rng, 500);
    let events = append_concurrent(&mut oplog, &agents, &mut rng, 1500);

    let mut branch = Branch::new();
    let before = alloc_calls();
    branch.merge(&oplog);
    let allocs = alloc_calls() - before;

    eprintln!("concurrent merge allocs: {allocs} for {events} concurrent events");
    assert!(
        allocs < events / 4,
        "concurrent merge of {events} events allocated {allocs} times — \
         the C-series allocation storm regressed"
    );
    assert_eq!(
        branch.content.to_string(),
        oplog.checkout_tip().content.to_string()
    );
}

/// Reused-tracker steady state: after the first merge warms a tracker's
/// slabs and scratch buffers, every subsequent merge through the same
/// (cleared) tracker must stay below a fixed allocation-call bound —
/// independent of how many merges have gone before.
#[test]
fn reused_tracker_merges_stay_below_fixed_alloc_bound() {
    let mut oplog = OpLog::new();
    let agents: Vec<u32> = (0..3)
        .map(|i| oplog.get_or_create_agent(&format!("peer{i}")))
        .collect();
    let mut rng = SmallRng::new(0xbeef);
    append_sequential(&mut oplog, agents[0], &mut rng, 400);

    let mut branch = Branch::new();
    let mut tracker: Tracker = Tracker::new();
    // Warm-up: first merge pays the slab / index / scratch capacity.
    branch.merge_reusing(&oplog, &mut tracker);

    // Steady state: concurrent batches of the same magnitude, merged
    // through the reused tracker. Allocation cost must not grow over the
    // sequence (no leak of capacity, no per-merge reconstruction).
    const BOUND: usize = 500;
    for round in 0..6 {
        let events = append_concurrent(&mut oplog, &agents, &mut rng, 300);
        let before = alloc_calls();
        branch.merge_reusing(&oplog, &mut tracker);
        let allocs = alloc_calls() - before;
        eprintln!("round {round}: {allocs} allocs for {events} events");
        assert!(
            allocs < BOUND,
            "round {round}: merge through a reused tracker allocated {allocs} \
             times (bound {BOUND}) — clear() is not retaining capacity"
        );
    }
    assert_eq!(
        branch.content.to_string(),
        oplog.checkout_tip().content.to_string()
    );
}

#[test]
fn transform_and_apply_allocates_sublinearly() {
    let mut oplog = OpLog::new();
    let agent = oplog.get_or_create_agent("solo");
    let mut rng = SmallRng::new(0xfeed);
    append_sequential(&mut oplog, agent, &mut rng, 2000);

    // Warm state: branch caught up, rope chunks built.
    let mut branch = Branch::new();
    branch.merge(&oplog);

    // Steady state: merge a fresh batch of sequential events into the live
    // branch and count every allocation on the transform+apply path.
    let events = append_sequential(&mut oplog, agent, &mut rng, 4000);
    let before = alloc_calls();
    branch.merge(&oplog);
    let allocs = alloc_calls() - before;

    // Per-op allocation (the pre-arena pipeline: a String per emitted
    // insert plus chunk copies) would cost >= `events` calls. The only
    // allocations left are amortised: rope chunk splits/growth (every
    // ~64 chars) and the per-merge fixed overhead.
    eprintln!("transform+apply allocs: {allocs} for {events} events");
    assert!(
        allocs < events / 4,
        "merge of {events} events allocated {allocs} times — per-op allocation regressed"
    );
    assert_eq!(
        branch.content.to_string(),
        oplog.checkout_tip().content.to_string()
    );
}
