//! Tier-1 proof that the PR-6 zero-allocation steady state survives the
//! move onto worker threads (ISSUE 7 acceptance criterion).
//!
//! The whole test binary runs under the counting [`TrackingAlloc`] — the
//! counters are global atomics, so allocations made *on the worker
//! threads* are included. After a warm-up round (channel buffers, slab
//! arenas, session-name cache, rope chunks), each further round of the
//! same fleet script through the same host must stay within a small
//! per-op allocation budget, and the budget must not grow from round to
//! round: batch vectors recycle, trackers are reused per document, and
//! the edit path formats no strings.
//!
//! The per-op budget is NOT zero: every fleet edit is its own merge, and
//! a merge through a reused tracker has a small fixed overhead (tip
//! clone, version union — the same overhead the PR-6 `zero_alloc` test
//! bounds at 500 calls per *merge*). The bound here is far tighter than
//! that per-merge bound because steady-state sequential merges skip the
//! conflict machinery; what this test guards is the *pool* adding per-op
//! allocations (un-recycled batches, per-op boxing, name formatting).

use eg_bench::alloc_track::{alloc_calls, TrackingAlloc};
use eg_server::{ServerConfig, ServerHost};
use eg_trace::{fleet_workload, FleetOp, FleetSpec};
use std::sync::Arc;

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

fn fleet_script() -> Arc<[FleetOp]> {
    fleet_workload(&FleetSpec {
        docs: 64,
        sessions: 32,
        edits: 4000,
        ..FleetSpec::default()
    })
    .into()
}

fn steady_state_allocs_per_op(workers: usize) -> Vec<f64> {
    let script = fleet_script();
    let host = ServerHost::with_config(ServerConfig {
        workers,
        ..ServerConfig::default()
    });
    // Warm-up: pays slab growth, channel buffers, session names, rope
    // chunks, histogram tables.
    let warm = host.run_script(&script);
    assert!(warm.edits() > 0);

    let mut per_round = Vec::new();
    for _ in 0..4 {
        let before = alloc_calls();
        let report = host.run_script(&script);
        let allocs = alloc_calls() - before;
        per_round.push(allocs as f64 / report.edits() as f64);
    }
    per_round
}

#[test]
fn worker_pool_steady_state_allocs_per_op_stay_bounded() {
    for workers in [1, 4] {
        let rounds = steady_state_allocs_per_op(workers);
        eprintln!("workers={workers}: allocs/op per round = {rounds:?}");
        for (i, &per_op) in rounds.iter().enumerate() {
            assert!(
                per_op < 16.0,
                "workers={workers} round {i}: {per_op:.1} allocs/op — \
                 the pool lost the zero-alloc steady state"
            );
        }
        // Flatness: the last round must not allocate meaningfully more
        // than the first (a growth trend means something is not being
        // recycled / reused).
        let (first, last) = (rounds[0], rounds[rounds.len() - 1]);
        assert!(
            last <= first * 1.5 + 1.0,
            "workers={workers}: allocs/op grew across rounds ({first:.1} -> {last:.1})"
        );
    }
}
