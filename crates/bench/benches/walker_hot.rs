//! Walker hot-path microbenchmarks: the tracker-tree fanout sweep and the
//! cursor-cache ablation on the concurrent traces (C1/C2) whose merge
//! time is dominated by tracker work, plus a scan-heavy sweep on the
//! asynchronous traces (A1/A2) whose long-running branches drive the
//! `integrate` scan and its `raw_pos_of` memo.
//!
//! The shipped defaults — `TRACKER_FANOUT` and `WalkerOpts::cursor_cache`
//! — were chosen from this bench; re-run it after changing the tracker's
//! data layout:
//!
//! ```text
//! EG_SCALE=0.02 cargo bench -p eg-bench --bench walker_hot
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eg_trace::{generate, spec_by_name};
use egwalker::walker::{transformed_ops_with_fanout, WalkerOpts};
use egwalker::OpLog;

fn scale() -> f64 {
    std::env::var("EG_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02)
}

fn traces(names: &[&str]) -> Vec<(String, OpLog)> {
    names
        .iter()
        .map(|name| {
            let spec = spec_by_name(name, scale()).expect("builtin trace");
            (spec.name.clone(), generate(&spec))
        })
        .collect()
}

fn concurrent_traces() -> Vec<(String, OpLog)> {
    traces(&["C1", "C2"])
}

fn merge_with_fanout<const N: usize>(oplog: &OpLog, opts: WalkerOpts) -> usize {
    let (_, ops) = transformed_ops_with_fanout::<N>(oplog, &[], oplog.version(), opts);
    ops.len()
}

fn bench_fanout(c: &mut Criterion) {
    let traces = concurrent_traces();
    let mut group = c.benchmark_group("walker_hot/fanout");
    group.sample_size(10);
    for (name, oplog) in &traces {
        let opts = WalkerOpts::default();
        group.bench_with_input(BenchmarkId::new(name, 8), oplog, |b, o| {
            b.iter(|| merge_with_fanout::<8>(o, opts))
        });
        group.bench_with_input(BenchmarkId::new(name, 16), oplog, |b, o| {
            b.iter(|| merge_with_fanout::<16>(o, opts))
        });
        group.bench_with_input(BenchmarkId::new(name, 32), oplog, |b, o| {
            b.iter(|| merge_with_fanout::<32>(o, opts))
        });
        group.bench_with_input(BenchmarkId::new(name, 64), oplog, |b, o| {
            b.iter(|| merge_with_fanout::<64>(o, opts))
        });
    }
    group.finish();
}

fn bench_cursor_cache(c: &mut Criterion) {
    let traces = concurrent_traces();
    let mut group = c.benchmark_group("walker_hot/cursor_cache");
    group.sample_size(10);
    for (name, oplog) in &traces {
        for cache in [true, false] {
            let opts = WalkerOpts {
                cursor_cache: cache,
                ..Default::default()
            };
            let label = if cache { "on" } else { "off" };
            group.bench_with_input(BenchmarkId::new(name, label), oplog, |b, o| {
                b.iter(|| {
                    let (_, ops) = egwalker::walker::transformed_ops(o, &[], o.version(), opts);
                    ops.len()
                })
            });
        }
    }
    group.finish();
}

/// Scan-heavy workload: full merges of the asynchronous traces, whose
/// long offline branches make `integrate` walk long runs of concurrent
/// records (each step asking for origin raw positions). Sweeps the
/// emit-position cache on/off alongside, since A-series merges mix the
/// scan path with long sequential emit runs.
fn bench_scan_heavy(c: &mut Criterion) {
    let traces = traces(&["A1", "A2"]);
    let mut group = c.benchmark_group("walker_hot/scan_heavy");
    group.sample_size(10);
    for (name, oplog) in &traces {
        for emit_cache in [true, false] {
            let opts = WalkerOpts {
                emit_cache,
                ..Default::default()
            };
            let label = if emit_cache {
                "emit_cache_on"
            } else {
                "emit_cache_off"
            };
            group.bench_with_input(BenchmarkId::new(name, label), oplog, |b, o| {
                b.iter(|| {
                    let (_, ops) = egwalker::walker::transformed_ops(o, &[], o.version(), opts);
                    ops.len()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    walker_hot,
    bench_fanout,
    bench_cursor_cache,
    bench_scan_heavy
);
criterion_main!(walker_hot);
