//! Criterion bench behind Fig. 8's load columns: reopening a document from
//! disk. Eg-walker reads the cached text; the CRDT must rebuild state.

use criterion::{criterion_group, criterion_main, Criterion};
use eg_crdt_ref::CrdtDoc;
use eg_encoding::{decode_cached_doc_only, encode, EncodeOpts};
use eg_trace::{builtin_specs, generate};
use egwalker::convert::to_crdt_ops;

fn load_benches(c: &mut Criterion) {
    let scale = std::env::var("EG_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    for spec in builtin_specs(scale) {
        let oplog = generate(&spec);
        let file = encode(
            &oplog,
            EncodeOpts {
                cache_final_doc: true,
                ..Default::default()
            },
        );
        let ops = to_crdt_ops(&oplog);
        let mut group = c.benchmark_group(format!("load/{}", spec.name));
        group.sample_size(10);
        group.bench_function("egwalker_cached", |b| {
            b.iter(|| std::hint::black_box(decode_cached_doc_only(&file).unwrap().unwrap().len()))
        });
        group.bench_function("ref_crdt_rebuild", |b| {
            b.iter(|| {
                let mut doc = CrdtDoc::new();
                doc.apply_all(&oplog, &ops);
                std::hint::black_box(doc.len_chars())
            })
        });
        group.finish();
    }
}

criterion_group!(benches, load_benches);
criterion_main!(benches);
