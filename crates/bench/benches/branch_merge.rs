//! Criterion bench behind the §4.3 crossover: merging two branches that
//! each diverged by k events — Eg-walker O(k log k) vs OT O(k^2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eg_ot::OtMerger;
use egwalker::{Frontier, OpLog};

fn build_two_branch(k: usize) -> OpLog {
    let mut oplog = OpLog::new();
    let a = oplog.get_or_create_agent("alice");
    let b = oplog.get_or_create_agent("bob");
    oplog.add_insert(a, 0, "base text for the two branch experiment ");
    let base = oplog.version().clone();
    let mut va = base.clone();
    let mut vb = base;
    let mut rng = 0x2bad_cafe_u64;
    let mut rand = move |bound: usize| {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        (rng as usize) % bound.max(1)
    };
    let mut la = 40usize;
    let mut lb = 40usize;
    for _ in 0..k / 8 {
        let lvs = oplog.add_insert_at(a, &va, rand(la + 1), "abcdefgh");
        va = Frontier::new_1(lvs.last());
        la += 8;
        let lvs = oplog.add_insert_at(b, &vb, rand(lb + 1), "ABCDEFGH");
        vb = Frontier::new_1(lvs.last());
        lb += 8;
    }
    oplog
}

fn branch_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_branch_merge");
    group.sample_size(10);
    // Eg-walker stays fast as k grows; sweep it further than OT.
    for k in [1024usize, 4096, 16384] {
        let oplog = build_two_branch(k);
        group.bench_with_input(BenchmarkId::new("egwalker", k), &oplog, |b, oplog| {
            b.iter(|| std::hint::black_box(oplog.checkout_tip().len_chars()))
        });
    }
    // OT is quadratic: k = 1024 already costs tens of seconds per merge, so
    // the criterion sweep stops at 512. The `crossover` binary extends the
    // sweep (single-shot timing) for the full §4.3 comparison.
    for k in [128usize, 512] {
        let oplog = build_two_branch(k);
        group.bench_with_input(BenchmarkId::new("ot", k), &oplog, |b, oplog| {
            b.iter(|| {
                let mut m = OtMerger::new(oplog);
                std::hint::black_box(m.replay().len_chars())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, branch_benches);
criterion_main!(benches);
