//! Criterion bench behind Fig. 8: time to merge each trace from a remote
//! replica, per algorithm. (OT is limited to the traces it can merge in
//! reasonable time at this scale.)

use criterion::{criterion_group, criterion_main, Criterion};
use eg_crdt_ref::CrdtDoc;
use eg_ot::OtMerger;
use eg_trace::{builtin_specs, generate};
use egwalker::convert::to_crdt_ops;

fn bench_scale() -> f64 {
    std::env::var("EG_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01)
}

fn merge_benches(c: &mut Criterion) {
    let scale = bench_scale();
    for spec in builtin_specs(scale) {
        let oplog = generate(&spec);
        let mut group = c.benchmark_group(format!("merge/{}", spec.name));
        group.sample_size(10);
        group.bench_function("egwalker", |b| {
            b.iter(|| std::hint::black_box(oplog.checkout_tip().len_chars()))
        });
        let ops = to_crdt_ops(&oplog);
        group.bench_function("ref_crdt", |b| {
            b.iter(|| {
                let mut doc = CrdtDoc::new();
                doc.apply_all(&oplog, &ops);
                std::hint::black_box(doc.len_chars())
            })
        });
        // OT on the asynchronous traces is the paper's hour-long case;
        // keep criterion runs bounded by benching OT on S/C traces only.
        if !spec.name.starts_with('A') {
            group.bench_function("ot", |b| {
                b.iter(|| {
                    let mut m = OtMerger::new(&oplog);
                    std::hint::black_box(m.replay().len_chars())
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, merge_benches);
criterion_main!(benches);
