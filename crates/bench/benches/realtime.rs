//! Criterion bench for the real-time collaboration path: applying one
//! remote event burst to a live document (paper Fig. 8's 16 ms frame
//! budget).
//!
//! This exercises the §3.6 partial replay: the walker replays only the
//! conflict window (here, a handful of events), never the full trace.

use criterion::{criterion_group, criterion_main, Criterion};
use eg_trace::{builtin_specs, generate};
use egwalker::OpLog;

fn bench_scale() -> f64 {
    std::env::var("EG_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01)
}

fn extend_with_remote(oplog: &OpLog, k: usize) -> OpLog {
    let mut extended = oplog.clone();
    let remote = extended.get_or_create_agent("late-remote-peer");
    let back = oplog.len().saturating_sub(k + 1);
    let parents = if oplog.is_empty() { vec![] } else { vec![back] };
    let text = "r".repeat(k);
    extended.add_insert_at(remote, &parents, 0, &text);
    extended
}

fn realtime_benches(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("realtime_merge");
    for spec in builtin_specs(scale) {
        let oplog = generate(&spec);
        let tip = oplog.version().clone();
        let extended = extend_with_remote(&oplog, 16);
        let live = extended.checkout(&tip);
        group.bench_function(&spec.name, |b| {
            b.iter(|| {
                let mut doc = live.clone();
                doc.merge(&extended);
                std::hint::black_box(doc.len_chars())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, realtime_benches);
criterion_main!(benches);
