//! Criterion bench behind Figs. 11/12: encoding event graphs to the
//! on-disk formats.

use criterion::{criterion_group, criterion_main, Criterion};
use eg_encoding::{encode, encode_crdt_state, EncodeOpts};
use eg_trace::{builtin_specs, generate};

fn encode_benches(c: &mut Criterion) {
    let scale = std::env::var("EG_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    for spec in builtin_specs(scale).into_iter().take(4) {
        let oplog = generate(&spec);
        let mut group = c.benchmark_group(format!("encode/{}", spec.name));
        group.sample_size(10);
        group.bench_function("event_graph", |b| {
            b.iter(|| std::hint::black_box(encode(&oplog, EncodeOpts::default()).len()))
        });
        group.bench_function("event_graph_lz4", |b| {
            b.iter(|| {
                std::hint::black_box(
                    encode(
                        &oplog,
                        EncodeOpts {
                            compress_content: true,
                            ..Default::default()
                        },
                    )
                    .len(),
                )
            })
        });
        group.bench_function("crdt_state", |b| {
            b.iter(|| std::hint::black_box(encode_crdt_state(&oplog).len()))
        });
        group.finish();
    }
}

criterion_group!(benches, encode_benches);
criterion_main!(benches);
