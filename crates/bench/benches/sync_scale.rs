//! Criterion bench for the sync engine at scale: the same multi-document
//! workload driven through full-mesh eager broadcast, full-mesh batched
//! outboxes, and star-relay batched outboxes.
//!
//! The interesting outputs are wall-clock (engine overhead per topology)
//! and, printed once per configuration, the bytes-on-wire split — the
//! quantity the ROADMAP's scale-out item is about.

use criterion::{criterion_group, criterion_main, Criterion};
use eg_sync::NetworkSim;
use eg_trace::workload::{apply_sync_workload, sync_workload, SyncWorkloadSpec};

fn scale() -> f64 {
    std::env::var("EG_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02)
}

fn run(nodes: usize, star: bool, flush_every: u64, ops: &[eg_trace::SyncOp]) -> NetworkSim {
    let names: Vec<String> = (0..nodes).map(|i| format!("n{i:03}")).collect();
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let b = NetworkSim::builder(&refs, 0xBE7C);
    let b = if star { b.star() } else { b.mesh() };
    let mut net = b.flush_every(flush_every).build();
    apply_sync_workload(&mut net, ops);
    assert!(net.run_until_quiescent(1_000_000));
    net
}

fn sync_benches(c: &mut Criterion) {
    // EG_SCALE=1.0 ≈ 3200 bursts over 64 nodes; the 0.02 default keeps the
    // suite laptop-quick.
    let bursts = ((3200.0 * scale()) as usize).max(120);
    let nodes = 64;
    let ops = sync_workload(&SyncWorkloadSpec {
        nodes,
        docs: 8,
        bursts,
        burst_len: (2, 10),
        gap_ticks: (0, 2),
        seed: 0x5CA1E,
    });

    let mut group = c.benchmark_group("sync_scale");
    for (name, star, flush) in [
        ("mesh_eager", false, 0u64),
        ("mesh_batched", false, 4),
        ("star_batched", true, 4),
    ] {
        let net = run(nodes, star, flush, &ops);
        let s = net.stats();
        eprintln!(
            "  {name}: {} msgs, {} bytes on wire ({} digest + {} bundle), {} syncs",
            s.sent, s.bytes, s.digest_bytes, s.bundle_bytes, s.syncs
        );
        group.bench_function(name, |b| {
            b.iter(|| {
                let net = run(nodes, star, flush, &ops);
                std::hint::black_box(net.stats().bytes)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, sync_benches);
criterion_main!(benches);
