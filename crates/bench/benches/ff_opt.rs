//! Criterion bench behind Fig. 9: the §3.5 clearing/fast-forward
//! optimisation, on and off.

use criterion::{criterion_group, criterion_main, Criterion};
use eg_trace::{builtin_specs, generate};
use egwalker::{Branch, WalkerOpts};

fn ff_benches(c: &mut Criterion) {
    let scale = std::env::var("EG_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    for spec in builtin_specs(scale) {
        let oplog = generate(&spec);
        let mut group = c.benchmark_group(format!("ff_opt/{}", spec.name));
        group.sample_size(10);
        for (label, enable) in [("enabled", true), ("disabled", false)] {
            group.bench_function(label, |b| {
                b.iter(|| {
                    let mut branch = Branch::new();
                    branch.merge_with_opts(
                        &oplog,
                        oplog.version(),
                        WalkerOpts {
                            enable_clearing: enable,
                            ..Default::default()
                        },
                    );
                    std::hint::black_box(branch.len_chars())
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, ff_benches);
criterion_main!(benches);
