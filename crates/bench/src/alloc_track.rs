//! A byte-counting global allocator (for the Fig. 10 memory experiment).
//!
//! Binaries opt in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: eg_bench::alloc_track::TrackingAlloc = eg_bench::alloc_track::TrackingAlloc;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// The tracking allocator: forwards to the system allocator, counting
/// live bytes and the high-water mark.
pub struct TrackingAlloc;

// SAFETY: All allocation is delegated to `System`; the extra work only
// updates atomic counters.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let cur = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(cur, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            let old = layout.size();
            if new_size >= old {
                let cur = CURRENT.fetch_add(new_size - old, Ordering::Relaxed) + (new_size - old);
                PEAK.fetch_max(cur, Ordering::Relaxed);
            } else {
                CURRENT.fetch_sub(old - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Live heap bytes right now.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Resets the peak to the current level and returns the previous peak.
pub fn reset_peak() -> usize {
    PEAK.swap(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed)
}

/// The high-water mark since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Runs `f`, returning `(result, peak_delta, retained_delta)`: extra bytes
/// at peak during the call, and extra bytes still live afterwards (the
/// result is kept alive).
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, usize, usize) {
    let before = current_bytes();
    reset_peak();
    let value = f();
    let peak = peak_bytes().saturating_sub(before);
    let retained = current_bytes().saturating_sub(before);
    (value, peak, retained)
}
