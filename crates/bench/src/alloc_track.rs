//! A counting global allocator (for the Fig. 10 memory experiment and the
//! zero-allocation emit-path test).
//!
//! Byte accounting (live bytes + peak) is always on. With the
//! `alloc-counts` feature (default), the allocator additionally counts
//! **allocation calls** — the metric the zero-allocation emit pipeline is
//! measured by: a steady-state transform+apply must not allocate per
//! operation, which byte peaks alone cannot prove (a small alloc/free per
//! op leaves the peak flat).
//!
//! Binaries opt in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: eg_bench::alloc_track::TrackingAlloc = eg_bench::alloc_track::TrackingAlloc;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
#[cfg(feature = "alloc-counts")]
static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

/// The tracking allocator: forwards to the system allocator, counting
/// live bytes, the high-water mark, and (with `alloc-counts`) the number
/// of allocation calls.
pub struct TrackingAlloc;

// SAFETY: All allocation is delegated to `System`; the extra work only
// updates atomic counters.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: `layout` is forwarded verbatim under `GlobalAlloc`'s
        // own contract.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let cur = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(cur, Ordering::Relaxed);
            #[cfg(feature = "alloc-counts")]
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        p
    }

    // SAFETY: caller upholds `GlobalAlloc`'s contract (`ptr` came from
    // this allocator with this `layout`); both are forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: see fn-level comment.
        unsafe { System.dealloc(ptr, layout) };
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    // SAFETY: caller upholds `GlobalAlloc`'s contract (`ptr` came from
    // this allocator with this `layout`); all three are forwarded.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: see fn-level comment.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            let old = layout.size();
            if new_size >= old {
                let cur = CURRENT.fetch_add(new_size - old, Ordering::Relaxed) + (new_size - old);
                PEAK.fetch_max(cur, Ordering::Relaxed);
            } else {
                CURRENT.fetch_sub(old - new_size, Ordering::Relaxed);
            }
            // A realloc that moves (or grows) is allocator work too; count
            // it as one call.
            #[cfg(feature = "alloc-counts")]
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        p
    }
}

/// Live heap bytes right now.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Resets the peak to the current level and returns the previous peak.
pub fn reset_peak() -> usize {
    PEAK.swap(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed)
}

/// The high-water mark since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Total allocation calls so far (alloc + realloc; 0 without the
/// `alloc-counts` feature).
pub fn alloc_calls() -> usize {
    #[cfg(feature = "alloc-counts")]
    {
        ALLOC_CALLS.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "alloc-counts"))]
    {
        0
    }
}

/// Runs `f`, returning `(result, peak_delta, retained_delta)`: extra bytes
/// at peak during the call, and extra bytes still live afterwards (the
/// result is kept alive).
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, usize, usize) {
    let before = current_bytes();
    reset_peak();
    let value = f();
    let peak = peak_bytes().saturating_sub(before);
    let retained = current_bytes().saturating_sub(before);
    (value, peak, retained)
}

/// Runs `f`, returning `(result, peak_delta, retained_delta, alloc_calls)`
/// — [`measure`] plus the number of allocation calls performed during the
/// call (0 without `alloc-counts`).
pub fn measure_counting<T>(f: impl FnOnce() -> T) -> (T, usize, usize, usize) {
    let calls_before = alloc_calls();
    let (value, peak, retained) = measure(f);
    (value, peak, retained, alloc_calls() - calls_before)
}
