//! Benchmark harness for the Eg-walker evaluation (paper §4).
//!
//! One binary per table/figure regenerates the corresponding results (see
//! DESIGN.md §3 for the experiment index); Criterion benches cover the
//! timing-sensitive subset. Shared infrastructure lives here:
//!
//! * [`alloc_track`] — a byte-counting global allocator for the memory
//!   experiment (Fig. 10);
//! * [`harness`] — trace construction, argument parsing and table
//!   formatting.

pub mod alloc_track;
pub mod harness;
