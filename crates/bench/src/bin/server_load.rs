//! Fleet-scale load benchmark for the multi-core server host.
//!
//! Drives the deterministic `eg-trace` fleet workload (zipfian document
//! popularity, bursty sessions, join/leave churn) through `eg-server`
//! worker pools of increasing size and reports, per pool size:
//!
//! * `merge_ops_per_sec` — aggregate merged-edit throughput (submit →
//!   merged, including routing and queueing);
//! * `{insert,delete}_{p50,p99,p999}_latency_s` — end-to-end per-op-class
//!   latency percentiles from the workers' mergeable histograms;
//! * `events` — merged edit count, a deterministic function of the seed
//!   (exact-checked by `bench_diff`, so generator or skip-rule drift in
//!   either direction fails the nightly diff).
//!
//! Every run is verified byte-identical against the single-threaded
//! sequential replay of the same script before its numbers are reported —
//! a fast parallel host that diverges from the paper's merge semantics is
//! a bug, not a result. The JSON capture records the worker sweep
//! top-level so `bench_diff` refuses cross-sweep comparisons, and
//! `_per_sec` fields diff as higher-is-better.
//!
//! `EG_WORKERS=1,2,4` overrides the default `1,2,4,8` sweep. Wall-clock
//! speedup needs actual cores; on a single-core machine the sweep still
//! measures (and regression-gates) the routing/queueing overhead of the
//! pool, while the byte-identity check keeps its full strength.

use eg_bench::harness::{fmt_time, json_num, json_str, parse_args, row, write_json_extra, JsonRow};
use eg_server::{replay_fleet_sequential, LoadReport, ServerConfig, ServerHost};
use eg_trace::{fleet_workload, FleetOp, FleetSpec};
use std::sync::Arc;
use std::time::Instant;

/// The fleet at scale 1.0; floors keep tiny scales meaningful (enough
/// documents to shard across 8 workers, enough sessions to churn).
fn fleet_spec(scale: f64) -> FleetSpec {
    FleetSpec {
        docs: ((1024.0 * scale) as u64).max(64),
        sessions: ((512.0 * scale) as usize).max(32),
        edits: ((400_000.0 * scale) as usize).max(2_000),
        ..FleetSpec::default()
    }
}

/// Trimmed-mean over per-run wall times (same policy as
/// `harness::time_mean`, but each run needs a fresh host, so the samples
/// are collected by the caller).
fn trimmed_mean(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let trim = if samples.len() >= 5 {
        (samples.len() / 10).max(1)
    } else {
        0
    };
    let kept = &samples[trim..samples.len() - trim];
    kept.iter().sum::<f64>() / kept.len() as f64
}

fn main() {
    let args = parse_args();
    let sweep: Vec<usize> = std::env::var("EG_WORKERS")
        .unwrap_or_else(|_| "1,2,4,8".to_string())
        .split(',')
        .map(|s| s.trim().parse().expect("EG_WORKERS: bad worker count"))
        .collect();
    assert!(!sweep.is_empty());

    let spec = fleet_spec(args.scale);
    eprintln!(
        "generating fleet workload: {} docs, {} sessions, {} edits (scale {}) …",
        spec.docs, spec.sessions, spec.edits, args.scale
    );
    let script: Arc<[FleetOp]> = fleet_workload(&spec).into();

    eprintln!("sequential reference replay …");
    let reference = replay_fleet_sequential("server", &script);

    println!(
        "server_load — fleet workload over shard-affinity worker pools (scale {:.3})",
        args.scale
    );
    let widths = [4, 8, 14, 12, 12, 12, 9];
    println!(
        "{}",
        row(
            &[
                "w",
                "events",
                "merge ops/s",
                "ins p50",
                "ins p99",
                "ins p999",
                "speedup"
            ]
            .map(String::from),
            &widths
        )
    );

    let mut json_rows: Vec<JsonRow> = Vec::new();
    let mut base_rate = None;
    for &workers in &sweep {
        // Fresh host per run (state accumulates); first run is warm-up.
        let runs = args.iters.max(2);
        let mut times = Vec::with_capacity(runs);
        let mut report = LoadReport::default();
        let mut per_run_edits = 0u64;
        for i in 0..=runs {
            let host = ServerHost::with_config(ServerConfig {
                workers,
                ..ServerConfig::default()
            });
            let t0 = Instant::now();
            let run = host.run_script(&script);
            let dt = t0.elapsed().as_secs_f64();
            // Byte-identity against the sequential replay: every run,
            // not just the warm-up — this is the determinism contract.
            assert_eq!(
                host.snapshot(),
                reference,
                "parallel host diverged from sequential replay at {workers} workers"
            );
            if i > 0 {
                times.push(dt);
                per_run_edits = run.edits();
                report.merge(&run);
            }
        }
        let mean = trimmed_mean(&mut times);
        let rate = per_run_edits as f64 / mean;
        let speedup = *base_rate.get_or_insert(rate);
        println!(
            "{}",
            row(
                &[
                    workers.to_string(),
                    per_run_edits.to_string(),
                    format!("{rate:.0}"),
                    fmt_time(report.insert_latency.percentile_secs(0.50)),
                    fmt_time(report.insert_latency.percentile_secs(0.99)),
                    fmt_time(report.insert_latency.percentile_secs(0.999)),
                    format!("{:.2}x", rate / speedup),
                ],
                &widths
            )
        );
        json_rows.push(vec![
            ("name", json_str(&format!("w{workers}"))),
            ("workers", json_num(workers as f64)),
            ("events", json_num(per_run_edits as f64)),
            ("merge_ops_per_sec", json_num(rate)),
            (
                "insert_p50_latency_s",
                json_num(report.insert_latency.percentile_secs(0.50)),
            ),
            (
                "insert_p99_latency_s",
                json_num(report.insert_latency.percentile_secs(0.99)),
            ),
            (
                "insert_p999_latency_s",
                json_num(report.insert_latency.percentile_secs(0.999)),
            ),
            (
                "delete_p50_latency_s",
                json_num(report.delete_latency.percentile_secs(0.50)),
            ),
            (
                "delete_p99_latency_s",
                json_num(report.delete_latency.percentile_secs(0.99)),
            ),
            (
                "delete_p999_latency_s",
                json_num(report.delete_latency.percentile_secs(0.999)),
            ),
        ]);
    }
    println!("(all runs byte-identical to the single-threaded sequential replay)");

    if let Some(path) = &args.json {
        let sweep_str = sweep
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(",");
        write_json_extra(
            path,
            "server_load",
            args.scale,
            &[("workers", json_str(&sweep_str))],
            &json_rows,
        );
    }
}
