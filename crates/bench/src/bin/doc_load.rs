//! Cached-load fast path (paper §3.5/§3.6): opening a document from its
//! on-disk segment store, cold vs checkpointed.
//!
//! Cold open rebuilds the oplog from the event records and replays the
//! *whole* history through the walker — O(history). A checkpointed store
//! restores the materialised text plus the tracker snapshot and replays
//! only the events past the checkpoint frontier — O(tail). This bin
//! measures both against the same store contents: every file holds the
//! full trace plus a small "typed since last save" tail; the cached
//! variant has a checkpoint record just before that tail.
//!
//! The `speedup_x` column is the paper's claim made concrete on disk:
//! unlike the raw `_s` timings it is a same-machine ratio, so the
//! `bench_diff` gate enforces it even in cross-machine CI runs.

use eg_bench::harness::{
    build_traces, fmt_bytes, fmt_time, json_num, json_str, parse_args, row, time_mean, write_json,
};
use eg_storage::DocStore;
use egwalker::OpLog;
use std::path::PathBuf;

/// Events typed "since the last checkpoint" — the tail a cached open
/// still has to replay. A couple of edit rounds' worth.
const TAIL_EVENTS: usize = 64;

/// Appends a short single-author tail at the tip, the shape of a user
/// typing after the last autosave.
fn extend_with_tail(oplog: &OpLog) -> OpLog {
    let mut extended = oplog.clone();
    let agent = extended.get_or_create_agent("post-checkpoint-typist");
    let parents = extended.version().to_vec();
    let text = "t".repeat(TAIL_EVENTS);
    extended.add_insert_at(agent, &parents, 0, &text);
    extended
}

/// A scratch directory for the segment files, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new() -> Self {
        let dir = std::env::temp_dir().join(format!("eg-doc-load-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn main() {
    let args = parse_args();
    eprintln!("building traces at scale {} …", args.scale);
    let traces = build_traces(args.scale);
    let scratch = ScratchDir::new();
    let widths = [4, 16, 16, 10, 12];
    println!(
        "Document open from segment store (scale {:.3}) — cold replay vs checkpointed",
        args.scale
    );
    println!(
        "{}",
        row(
            &["", "cold open", "cached open", "speedup", "store size"].map(String::from),
            &widths
        )
    );
    let mut json_rows = Vec::new();
    for (spec, oplog) in &traces {
        let extended = extend_with_tail(oplog);

        // Cold store: the full history as event records, no checkpoint.
        let cold_path = scratch.0.join(format!("{}-cold.seg", spec.name));
        let (mut store, _) = DocStore::open(&cold_path).expect("create cold store");
        store.append_new(&extended).expect("append events");
        drop(store);

        // Cached store: same events, with a checkpoint written where the
        // last autosave would have run — just before the tail.
        let cached_path = scratch.0.join(format!("{}-cached.seg", spec.name));
        let (mut store, _) = DocStore::open(&cached_path).expect("create cached store");
        store.append_new(oplog).expect("append events");
        let at_save = oplog.checkout_tip();
        store
            .write_checkpoint(oplog, &at_save)
            .expect("write checkpoint");
        store.append_new(&extended).expect("append tail");
        drop(store);

        // Both paths must materialise the identical document before we
        // bother timing them.
        let expect = extended.checkout_tip();
        let (_, cold_doc) = DocStore::open(&cold_path).expect("reopen cold");
        let (_, cached_doc) = DocStore::open(&cached_path).expect("reopen cached");
        assert!(!cold_doc.cached, "cold store must take the replay path");
        assert!(cached_doc.cached, "checkpoint must drive the cached path");
        assert_eq!(cold_doc.branch.content, expect.content);
        assert_eq!(cached_doc.branch.content, expect.content);

        let cold = time_mean(args.iters, || {
            let (_, loaded) = DocStore::open(&cold_path).unwrap();
            std::hint::black_box(loaded.branch.len_chars());
        });
        let cached = time_mean(args.iters.max(10), || {
            let (_, loaded) = DocStore::open(&cached_path).unwrap();
            std::hint::black_box(loaded.branch.len_chars());
        });
        let store_bytes = std::fs::metadata(&cached_path).expect("stat store").len() as usize;
        let speedup = cold / cached;
        println!(
            "{}",
            row(
                &[
                    spec.name.clone(),
                    fmt_time(cold),
                    fmt_time(cached),
                    format!("{speedup:.0}x"),
                    fmt_bytes(store_bytes),
                ],
                &widths
            )
        );
        json_rows.push(vec![
            ("name", json_str(&spec.name)),
            ("events", json_num(extended.len() as f64)),
            ("tail_events", json_num(TAIL_EVENTS as f64)),
            ("cold_open_s", json_num(cold)),
            ("cached_open_s", json_num(cached)),
            ("speedup_x", json_num(speedup)),
            ("store_bytes", json_num(store_bytes as f64)),
        ]);
    }
    println!("\n(both opens rebuild the oplog; the cached one skips the history replay)");
    if let Some(path) = &args.json {
        write_json(path, "doc_load", args.scale, &json_rows);
    }
}
