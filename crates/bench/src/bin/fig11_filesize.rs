//! Regenerates the paper's Fig. 11: full-history file sizes.
//!
//! Compares the event-graph encoding (with and without a cached copy of
//! the final document) against a naive one-record-per-event history file
//! (the stand-in for heavier full-history formats), with the concatenated
//! inserted text as the lower bound.

use eg_bench::harness::{build_traces, fmt_bytes, parse_args, row};
use eg_encoding::{encode, encode_verbose, EncodeOpts};
use eg_rle::HasLength;
use egwalker::ListOpKind;

fn main() {
    let args = parse_args();
    eprintln!("building traces at scale {} …", args.scale);
    let traces = build_traces(args.scale);
    let widths = [4, 13, 16, 13, 15];
    println!(
        "Fig. 11 — full-history file sizes (scale {:.3})",
        args.scale
    );
    println!(
        "{}",
        row(
            &[
                "",
                "eg-walker",
                "eg + cached doc",
                "verbose",
                "raw text (min)"
            ]
            .map(String::from),
            &widths
        )
    );
    for (spec, oplog) in &traces {
        let plain = encode(oplog, EncodeOpts::default());
        let cached = encode(
            oplog,
            EncodeOpts {
                cache_final_doc: true,
                ..Default::default()
            },
        );
        let verbose = encode_verbose(oplog);
        let mut raw_text = 0usize;
        for (lvs, run) in oplog.ops_in((0..oplog.len()).into()) {
            if run.kind == ListOpKind::Ins {
                raw_text += lvs.len();
            }
        }
        println!(
            "{}",
            row(
                &[
                    spec.name.clone(),
                    fmt_bytes(plain.len()),
                    fmt_bytes(cached.len()),
                    fmt_bytes(verbose.len()),
                    fmt_bytes(raw_text),
                ],
                &widths
            )
        );
    }
}
