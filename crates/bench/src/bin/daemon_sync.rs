//! Daemon-mode sync cost: convergence time and wire bytes for two
//! `eg-daemon` reactors syncing a seeded fleet workload over a
//! Unix-domain socket, with a fault proxy injecting loss at 0%, 1%,
//! and 5%.
//!
//! Unlike the in-process benches this measures the full socket path —
//! frame codec, session handshake, pull-terminated anti-entropy
//! rounds, and (under faults) drop detection plus digest-driven
//! retransmission. Numbers are therefore *latency-bound by the sync
//! interval*, not throughput-bound: see bench-results/README.md before
//! comparing against the in-process figures.
//!
//! Byte counters under faults depend on how many digest rounds elapse
//! before convergence, which is wall-clock sensitive; they are reported
//! for inspection but deliberately named so `bench_diff` does not
//! regression-check them.

use eg_bench::harness::{fmt_bytes, fmt_time, json_num, json_str, parse_args, row, write_json};
use eg_daemon::{ControlCmd, Daemon, DaemonConfig, DaemonHandle, FaultProxy, ProxyFaults};
use serde::Value;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Fault rates swept, in per-mille (‰): clean link, 1%, 5%.
const FAULT_PER_MILLE: [u16; 3] = [0, 10, 50];

/// A scratch directory for sockets, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("eg-daemon-sync-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config(name: &str, socket: PathBuf, peers: Vec<PathBuf>) -> DaemonConfig {
    DaemonConfig {
        name: name.to_owned(),
        socket,
        peers,
        sync_interval: Duration::from_millis(25),
        heartbeat_interval: Duration::from_millis(100),
        heartbeat_timeout: Duration::from_millis(1500),
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(200),
        ..DaemonConfig::default()
    }
}

fn snapshot(handle: &DaemonHandle) -> (String, u64) {
    let v = handle
        .control(ControlCmd::Snapshot { full: false })
        .expect("daemon thread alive");
    let hash = match v.get_field("hash") {
        Some(Value::Str(s)) => s.clone(),
        other => panic!("bad hash field {other:?}"),
    };
    let docs = match v.get_field("docs") {
        Some(Value::UInt(n)) => *n,
        other => panic!("bad docs field {other:?}"),
    };
    (hash, docs)
}

/// One measured round at a given fault rate: two daemons, seeded
/// workloads on both sides, wall-clock until their snapshot hashes
/// agree. Returns `(converge_seconds, proxy_stats)`.
fn run_round(per_mille: u16, edits: usize) -> (f64, eg_daemon::ProxyStats) {
    let scratch = ScratchDir::new(&format!("f{per_mille}"));
    let sock_a = scratch.0.join("a.sock");
    let sock_b = scratch.0.join("b.sock");
    let sock_proxy = scratch.0.join("p.sock");

    let alpha = Daemon::spawn(config("alpha", sock_a.clone(), Vec::new())).expect("spawn alpha");
    let faults = ProxyFaults::uniform(per_mille);
    let proxy = FaultProxy::spawn(
        sock_proxy.clone(),
        sock_a,
        faults,
        0xB000 + per_mille as u64,
    )
    .expect("spawn proxy");
    let beta = Daemon::spawn(config("beta", sock_b, vec![sock_proxy])).expect("spawn beta");

    let script = |seed: u64| ControlCmd::Script {
        docs: 4,
        sessions: 4,
        edits,
        seed,
    };
    let start = Instant::now();
    alpha.control(script(101)).expect("alpha script");
    beta.control(script(202)).expect("beta script");

    let deadline = start + Duration::from_secs(180);
    loop {
        let (ha, da) = snapshot(&alpha);
        let (hb, db) = snapshot(&beta);
        if ha == hb && da >= 4 && db >= 4 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no convergence at {per_mille}‰ within 180s: {ha} ({da} docs) vs {hb} ({db} docs)"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let converge = start.elapsed().as_secs_f64();

    let stats = proxy.stats();
    beta.shutdown();
    proxy.shutdown();
    alpha.shutdown();
    (converge, stats)
}

fn main() {
    let args = parse_args();
    // Edits per side; 0.02 scale → 500, enough for several bundle frames
    // per document without making the 5% round crawl.
    let edits = ((args.scale * 25_000.0).round() as usize).max(100);
    let widths = [8, 12, 12, 12, 10];
    println!(
        "Daemon sync over Unix socket (scale {:.3}, {edits} edits/side) — fault-rate sweep",
        args.scale
    );
    println!(
        "{}",
        row(
            &["faults", "converge", "wire", "bundles", "injected"].map(String::from),
            &widths
        )
    );
    let mut json_rows = Vec::new();
    for per_mille in FAULT_PER_MILLE {
        let (converge, stats) = run_round(per_mille, edits);
        let injected = stats.frames_dropped
            + stats.frames_duplicated
            + stats.frames_delayed
            + stats.frames_truncated;
        println!(
            "{}",
            row(
                &[
                    format!("{:.1}%", per_mille as f64 / 10.0),
                    fmt_time(converge),
                    fmt_bytes(stats.bytes_forwarded as usize),
                    fmt_bytes(stats.bundle_bytes_forwarded as usize),
                    injected.to_string(),
                ],
                &widths
            )
        );
        json_rows.push(vec![
            ("name", json_str(&format!("fault_{per_mille}pm"))),
            ("fault_per_mille", json_num(per_mille as f64)),
            ("edits_per_side", json_num(edits as f64)),
            ("converge_s", json_num(converge)),
            // Wire counters are round-count sensitive under faults:
            // named to stay outside bench_diff's checked suffixes.
            ("wire_b", json_num(stats.bytes_forwarded as f64)),
            (
                "bundle_wire_b",
                json_num(stats.bundle_bytes_forwarded as f64),
            ),
            ("faults_injected", json_num(injected as f64)),
        ]);
    }
    println!("\n(latency-bound by the 25ms sync interval; see bench-results/README.md)");
    if let Some(path) = &args.json {
        write_json(path, "daemon_sync", args.scale, &json_rows);
    }
}
