//! Cross-run bench-trajectory diff: compares two captures of the
//! `bench-results/` JSON files and flags regressions automatically, so
//! nightly CI (and local runs of `scripts/bench_trajectory.sh`) no longer
//! rely on eyeballing artifacts (ROADMAP "bench trajectory capture").
//!
//! ```text
//! bench_diff --baseline <dir-or-file> --current <dir-or-file> \
//!            [--threshold 0.5] [--min-seconds 1e-4] [--advisory-time]
//! bench_diff --trend <capture>... [<capture>]
//! ```
//!
//! `--trend` is the informational companion to the pass/fail diff: given
//! two or more captures in chronological order (e.g. the frozen
//! `prN_baseline/` directories plus the live `bench-results/`), it prints
//! every checked metric's value across all of them with a first→last
//! ratio, so a slow drift that never trips a single pairwise threshold is
//! still visible as a trajectory. Trend mode never fails the run.
//!
//! Rows are matched by their `name` field within each matching file name.
//! Numeric fields ending in `_s` (seconds) are regression-checked: a
//! current value more than `threshold` (fractional) above the baseline
//! fails the run, unless both sides are below `min-seconds` (too small to
//! measure reliably). Fields ending in `_per_sec` (throughput) are
//! higher-is-better: a *drop* below `1/(1+threshold)` of the baseline
//! fails the same way. Byte and allocation-count fields (`_bytes`,
//! `_calls`) are near-deterministic but only fail above `2 × threshold`,
//! so allocator noise does not trip the bound while blowups (e.g. a
//! reintroduced per-op allocation) still do. Speedup-ratio fields
//! (`_x`, e.g. `doc_load`'s `speedup_x`) are higher-is-better like
//! `_per_sec` but machine-independent (both sides measured in the same
//! process), so they enforce even under `--advisory-time`. With
//! `--advisory-time`, time and throughput regressions are printed but do
//! not fail the run — for CI, where the fresh capture runs on a different
//! machine class than the committed baseline and absolute `_s`/`_per_sec`
//! comparisons are meaningless (bytes still enforce). Captures whose
//! top-level `workers` sweep differs are refused outright, like captures
//! at different `scale`. Checked metrics present in the
//! baseline but missing from the current capture are a hard failure —
//! a renamed row or field must come with a refreshed baseline, not
//! silently lose its regression check. An entirely empty baseline is
//! fine (first capture of a new bench).

use serde::Value;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    baseline: Option<PathBuf>,
    current: Option<PathBuf>,
    threshold: f64,
    min_seconds: f64,
    advisory_time: bool,
    /// Captures (oldest first) for the multi-capture trend view; non-empty
    /// selects trend mode instead of the pairwise diff.
    trend: Vec<PathBuf>,
}

fn parse_args() -> Args {
    let mut baseline = None;
    let mut current = None;
    let mut threshold = 0.5;
    let mut min_seconds = 1e-4;
    let mut advisory_time = false;
    let mut trend = Vec::new();
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--trend" => {
                while let Some(next) = argv.get(i + 1) {
                    if next.starts_with("--") {
                        break;
                    }
                    trend.push(PathBuf::from(next));
                    i += 1;
                }
                assert!(trend.len() >= 2, "--trend needs at least two captures");
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(
                    argv.get(i + 1).expect("--baseline needs a path"),
                ));
                i += 1;
            }
            "--current" => {
                current = Some(PathBuf::from(
                    argv.get(i + 1).expect("--current needs a path"),
                ));
                i += 1;
            }
            "--threshold" => {
                threshold = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--threshold needs a number");
                i += 1;
            }
            "--min-seconds" => {
                min_seconds = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--min-seconds needs a number");
                i += 1;
            }
            "--advisory-time" => advisory_time = true,
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    Args {
        baseline,
        current,
        threshold,
        min_seconds,
        advisory_time,
        trend,
    }
}

/// The multi-capture trend view: every checked metric across all captures
/// (oldest first), with a first→last ratio. Purely informational.
fn run_trend(paths: &[PathBuf]) -> ExitCode {
    let labels: Vec<String> = paths
        .iter()
        .map(|p| {
            p.file_name()
                .and_then(|s| s.to_str())
                .unwrap_or("?")
                .to_string()
        })
        .collect();
    let captures: Vec<Capture> = paths.iter().map(|p| load(p)).collect();

    // Captures at different EG_SCALE are not comparable; warn (but still
    // print — the trend view is informational).
    for (i, capture) in captures.iter().enumerate().skip(1) {
        for (stem, scale) in &capture.scales {
            if let Some((_, first)) = captures[0].scales.iter().find(|(s, _)| s == stem) {
                if (scale - first).abs() > f64::EPSILON * first.abs() {
                    eprintln!(
                        "warning: {stem} captured at scale {scale} in {} vs {first} in {} — \
                         values are not comparable",
                        labels[i], labels[0]
                    );
                }
            }
        }
    }

    // Metric keys in first-seen order across all captures.
    let mut keys: Vec<(&str, &str, &str)> = Vec::new();
    for capture in &captures {
        for (stem, name, field, _) in &capture.metrics {
            if !checked_field(field) {
                continue;
            }
            let key = (stem.as_str(), name.as_str(), field.as_str());
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
    }

    print!("{:<12} {:<6} {:<22}", "bench", "row", "field");
    for label in &labels {
        print!(" {label:>14}");
    }
    println!(" {:>8}", "overall");
    let mut rows = 0usize;
    for (stem, name, field) in keys {
        let values: Vec<Option<f64>> = captures
            .iter()
            .map(|capture| {
                capture
                    .metrics
                    .iter()
                    .find(|(s, n, f, _)| s == stem && n == name && f == field)
                    .map(|(_, _, _, v)| *v)
            })
            .collect();
        // A metric seen in only one capture has no trajectory to show.
        if values.iter().flatten().count() < 2 {
            continue;
        }
        print!("{stem:<12} {name:<6} {field:<22}");
        for v in &values {
            match v {
                Some(v) => print!(" {v:>14.4e}"),
                None => print!(" {:>14}", "-"),
            }
        }
        let first = values.iter().flatten().next().unwrap();
        let last = values.iter().flatten().last().unwrap();
        if *first > 0.0 {
            println!(" {:>7.2}x", last / first);
        } else {
            println!(" {:>8}", "-");
        }
        rows += 1;
    }
    println!("trend across {} captures, {rows} metrics", labels.len());
    ExitCode::SUCCESS
}

/// `true` for field names the diff regression-checks. `_calls` fields
/// (allocation counts) are near-deterministic like `_bytes` and get the
/// same looser bound.
fn checked_field(field: &str) -> bool {
    field.ends_with("_s")
        || field.ends_with("_bytes")
        || field.ends_with("_calls")
        || field.ends_with("_per_sec")
        || ratio_field(field)
        || exact_field(field)
}

/// Same-machine speedup ratios (`_x`, e.g. `doc_load`'s `speedup_x`):
/// higher is better, like `_per_sec`, but because both sides of the
/// ratio were measured in the same process on the same machine, the
/// value is machine-independent — so unlike raw times, a drop beyond
/// the threshold still *fails* under `--advisory-time`.
fn ratio_field(field: &str) -> bool {
    field.ends_with("_x")
}

/// Higher-is-better throughput metrics (`_per_sec`): a *drop* beyond the
/// threshold is the regression, mirrored from the time check (ratio below
/// `1/(1+threshold)`), and they share the machine-dependence of `_s`
/// fields, so `--advisory-time` downgrades them too.
fn rate_field(field: &str) -> bool {
    field.ends_with("_per_sec")
}

/// Machine-independent trace statistics (the `table1` columns): fully
/// deterministic for a given generator and scale, so any change in
/// either direction is generator drift and fails the diff exactly.
fn exact_field(field: &str) -> bool {
    matches!(
        field,
        "events" | "avg_concurrency" | "graph_runs" | "authors" | "chars_remaining_pct"
    )
}

/// One numeric metric: `(file stem, row name, field, value)`.
type Metric = (String, String, String, f64);

/// Everything `load` extracts from one capture.
struct Capture {
    metrics: Vec<Metric>,
    /// Each file's recorded capture scale: stem -> scale.
    scales: Vec<(String, f64)>,
    /// Top-level capture configuration that must match between diffed
    /// captures — currently the `workers` sweep of `server_load`, where
    /// comparing a 1,2,4-worker capture against a 1,2,4,8 one would
    /// match rows by name across different pool shapes: stem -> value.
    workers: Vec<(String, String)>,
}

/// `(file stem, row name, field) -> value` for every numeric field of
/// every row of every bench JSON under `path` (a file or a directory),
/// plus each file's recorded capture scale and worker sweep.
fn load(path: &Path) -> Capture {
    let files: Vec<PathBuf> = if path.is_dir() {
        let mut v: Vec<PathBuf> = std::fs::read_dir(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        v.sort();
        v
    } else {
        vec![path.to_path_buf()]
    };
    let mut out = Vec::new();
    let mut scales = Vec::new();
    let mut workers = Vec::new();
    for file in files {
        let stem = file
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default()
            .to_string();
        let text = match std::fs::read_to_string(&file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("skipping {}: {e}", file.display());
                continue;
            }
        };
        let doc: Value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("skipping {} (bad JSON): {e}", file.display());
                continue;
            }
        };
        let Value::Obj(top) = &doc else { continue };
        if let Some(scale) = top
            .iter()
            .find(|(k, _)| k == "scale")
            .and_then(|(_, v)| match v {
                Value::Float(f) => Some(*f),
                Value::UInt(u) => Some(*u as f64),
                _ => None,
            })
        {
            scales.push((stem.clone(), scale));
        }
        if let Some(Value::Str(w)) = top.iter().find(|(k, _)| k == "workers").map(|(_, v)| v) {
            workers.push((stem.clone(), w.clone()));
        }
        let Some(Value::Arr(rows)) = top.iter().find(|(k, _)| k == "rows").map(|(_, v)| v) else {
            continue;
        };
        for row in rows {
            let Value::Obj(fields) = row else { continue };
            let name = fields
                .iter()
                .find(|(k, _)| k == "name")
                .and_then(|(_, v)| match v {
                    Value::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .unwrap_or_default();
            for (key, value) in fields {
                let num = match value {
                    Value::Float(f) => *f,
                    Value::UInt(u) => *u as f64,
                    _ => continue,
                };
                out.push((stem.clone(), name.clone(), key.clone(), num));
            }
        }
    }
    Capture {
        metrics: out,
        scales,
        workers,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if !args.trend.is_empty() {
        return run_trend(&args.trend);
    }
    let baseline_path = args.baseline.expect("--baseline is required");
    let base_capture = load(&baseline_path);
    let cur_capture = load(&args.current.expect("--current is required"));
    let (baseline, current) = (&base_capture.metrics, &cur_capture.metrics);
    // Captures at different EG_SCALE are not comparable at all — every
    // metric shifts with trace size. Refuse rather than report bogus
    // regressions (or mask real ones).
    for (stem, cur_scale) in &cur_capture.scales {
        if let Some((_, base_scale)) = base_capture.scales.iter().find(|(s, _)| s == stem) {
            if (cur_scale - base_scale).abs() > f64::EPSILON * base_scale.abs() {
                eprintln!(
                    "scale mismatch for {stem}: baseline captured at {base_scale}, current at {cur_scale} — re-capture both at the same EG_SCALE"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    // Same refusal for worker-count sweeps: rows are matched by name
    // ("w4"), so diffing captures with different pool shapes would
    // silently compare different configurations.
    for (stem, cur_workers) in &cur_capture.workers {
        if let Some((_, base_workers)) = base_capture.workers.iter().find(|(s, _)| s == stem) {
            if cur_workers != base_workers {
                eprintln!(
                    "worker-count mismatch for {stem}: baseline captured with workers={base_workers}, current with workers={cur_workers} — re-capture both with the same sweep"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if baseline.is_empty() {
        eprintln!(
            "no baseline rows under {} — nothing to diff (first capture?)",
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let mut regressions = 0usize;
    let mut advisories = 0usize;
    let mut compared = 0usize;
    let mut missing = 0usize;

    // A checked metric that exists in the baseline but not in the fresh
    // capture means a bench or field was renamed/dropped without
    // refreshing the baseline — its regression check would silently
    // vanish. Fail loudly instead.
    for (stem, name, field, _) in baseline {
        if !checked_field(field) {
            continue;
        }
        let present = current
            .iter()
            .any(|(s, n, f, _)| s == stem && n == name && f == field);
        if !present {
            eprintln!("MISSING in current capture: {stem}/{name}/{field}");
            missing += 1;
        }
    }
    println!(
        "{:<12} {:<6} {:<22} {:>12} {:>12} {:>8}",
        "bench", "row", "field", "baseline", "current", "ratio"
    );
    for (stem, name, field, cur) in current {
        let Some((_, _, _, base)) = baseline
            .iter()
            .find(|(s, n, f, _)| s == stem && n == name && f == field)
        else {
            continue;
        };
        let checked_time = field.ends_with("_s");
        let checked_rate = rate_field(field);
        if !checked_field(field) {
            continue;
        }
        compared += 1;
        let ratio = if *base > 0.0 { cur / base } else { f64::NAN };
        let over = if exact_field(field) {
            // Deterministic statistics: any drift, either direction.
            cur != base
        } else if ratio_field(field) {
            // Same-machine speedup ratio: a drop beyond the threshold
            // regresses, and `--advisory-time` does not soften it.
            ratio.is_finite() && ratio < 1.0 / (1.0 + args.threshold)
        } else if checked_rate {
            // Higher is better: a throughput *drop* beyond the time
            // threshold regresses (mirror of the `_s` bound).
            ratio.is_finite() && ratio < 1.0 / (1.0 + args.threshold)
        } else {
            let limit = if checked_time {
                1.0 + args.threshold
            } else {
                1.0 + 2.0 * args.threshold
            };
            let too_small = checked_time && *base < args.min_seconds && *cur < args.min_seconds;
            ratio.is_finite() && ratio > limit && !too_small
        };
        let advisory_only = over && (checked_time || checked_rate) && args.advisory_time;
        println!(
            "{:<12} {:<6} {:<22} {:>12.4e} {:>12.4e} {:>7.2}x{}",
            stem,
            name,
            field,
            base,
            cur,
            ratio,
            if advisory_only {
                "  << slower (advisory: cross-machine)"
            } else if over {
                "  << REGRESSION"
            } else {
                ""
            }
        );
        if advisory_only {
            advisories += 1;
        } else if over {
            regressions += 1;
        }
    }
    println!(
        "compared {compared} metrics; {regressions} regression(s), {advisories} advisory, {missing} missing, beyond +{:.0}% (time) / +{:.0}% (bytes, calls)",
        args.threshold * 100.0,
        args.threshold * 200.0
    );
    if regressions > 0 || missing > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
