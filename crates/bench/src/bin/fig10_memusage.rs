//! Regenerates the paper's Fig. 10: RAM while merging each trace.
//!
//! * Eg-walker: peak (during replay) and steady state (document text only —
//!   the walker's internal state is discarded);
//! * OT: peak (memoised transforms) and steady state (document text);
//! * reference CRDT: steady state (its full structure stays resident; the
//!   paper notes CRDT peak is within ~25% of steady).

use eg_bench::alloc_track::{measure, measure_counting, TrackingAlloc};
use eg_bench::harness::{build_traces, fmt_bytes, json_num, json_str, parse_args, row, write_json};
use eg_crdt_ref::CrdtDoc;
use eg_ot::OtMerger;
use egwalker::convert::to_crdt_ops;

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

fn main() {
    let args = parse_args();
    eprintln!("building traces at scale {} …", args.scale);
    let traces = build_traces(args.scale);
    let widths = [4, 13, 13, 13, 13, 13, 13, 13];
    println!("Fig. 10 — RAM while merging (scale {:.3})", args.scale);
    println!(
        "{}",
        row(
            &[
                "",
                "eg peak",
                "eg steady",
                "eg allocs",
                "allocs/op",
                "ot peak",
                "ot steady",
                "crdt steady"
            ]
            .map(String::from),
            &widths
        )
    );
    let mut json_rows = Vec::new();
    for (spec, oplog) in &traces {
        let (doc, eg_peak, eg_steady, eg_allocs) = measure_counting(|| oplog.checkout_tip());
        drop(doc);
        let (ot_doc, ot_peak, _) = measure(|| {
            let mut m = OtMerger::new(oplog);
            m.replay()
        });
        // OT steady state: the final document only (history on disk) —
        // the same rope Eg-walker retains.
        let ot_steady = eg_steady;
        drop(ot_doc);
        let ops = to_crdt_ops(oplog);
        let (crdt, _, crdt_steady) = measure(|| {
            let mut doc = CrdtDoc::new();
            doc.apply_all(oplog, &ops);
            doc
        });
        std::hint::black_box(crdt.len_chars());
        println!(
            "{}",
            row(
                &[
                    spec.name.clone(),
                    fmt_bytes(eg_peak),
                    fmt_bytes(eg_steady),
                    format!("{eg_allocs}"),
                    format!("{:.3}", eg_allocs as f64 / oplog.len() as f64),
                    fmt_bytes(ot_peak),
                    fmt_bytes(ot_steady),
                    fmt_bytes(crdt_steady),
                ],
                &widths
            )
        );
        json_rows.push(vec![
            ("name", json_str(&spec.name)),
            ("events", json_num(oplog.len() as f64)),
            ("eg_peak_bytes", json_num(eg_peak as f64)),
            ("eg_steady_bytes", json_num(eg_steady as f64)),
            ("eg_alloc_calls", json_num(eg_allocs as f64)),
            ("ot_peak_bytes", json_num(ot_peak as f64)),
            ("crdt_steady_bytes", json_num(crdt_steady as f64)),
        ]);
    }
    if let Some(path) = &args.json {
        write_json(path, "fig10_memusage", args.scale, &json_rows);
    }
}
