//! Regenerates the paper's Fig. 9: Eg-walker merge time with and without
//! the §3.5 optimisations (internal-state clearing + fast-forward).

use eg_bench::harness::{
    build_traces, fmt_time, json_num, json_str, parse_args, row, time_mean, write_json,
};
use egwalker::{Branch, WalkerOpts};

fn main() {
    let args = parse_args();
    eprintln!("building traces at scale {} …", args.scale);
    let traces = build_traces(args.scale);
    let widths = [4, 16, 16, 8];
    println!(
        "Fig. 9 — the effect of state clearing (scale {:.3})",
        args.scale
    );
    println!(
        "{}",
        row(
            &["", "opt enabled", "opt disabled", "ratio"].map(String::from),
            &widths
        )
    );
    let mut json_rows = Vec::new();
    for (spec, oplog) in &traces {
        let on = time_mean(args.iters, || {
            let mut b = Branch::new();
            b.merge_with_opts(
                oplog,
                oplog.version(),
                WalkerOpts {
                    enable_clearing: true,
                    ..Default::default()
                },
            );
            std::hint::black_box(b.len_chars());
        });
        let off = time_mean(args.iters, || {
            let mut b = Branch::new();
            b.merge_with_opts(
                oplog,
                oplog.version(),
                WalkerOpts {
                    enable_clearing: false,
                    ..Default::default()
                },
            );
            std::hint::black_box(b.len_chars());
        });
        println!(
            "{}",
            row(
                &[
                    spec.name.clone(),
                    fmt_time(on),
                    fmt_time(off),
                    format!("{:.1}x", off / on),
                ],
                &widths
            )
        );
        json_rows.push(vec![
            ("name", json_str(&spec.name)),
            ("events", json_num(oplog.len() as f64)),
            ("opt_enabled_s", json_num(on)),
            ("opt_disabled_s", json_num(off)),
        ]);
    }
    if let Some(path) = &args.json {
        write_json(path, "fig9_opts", args.scale, &json_rows);
    }
}
