//! Regenerates the paper's Fig. 12: file sizes with deleted text omitted.
//!
//! Compares the event-graph encoding without deleted content against a
//! Yjs-like CRDT state file, with the final document as the lower bound.

use eg_bench::harness::{build_traces, fmt_bytes, parse_args, row};
use eg_encoding::{encode, encode_crdt_state, EncodeOpts};

fn main() {
    let args = parse_args();
    eprintln!("building traces at scale {} …", args.scale);
    let traces = build_traces(args.scale);
    let widths = [4, 18, 14, 15];
    println!(
        "Fig. 12 — file sizes, deleted text omitted (scale {:.3})",
        args.scale
    );
    println!(
        "{}",
        row(
            &["", "eg (no deleted)", "yjs-like", "final doc (min)"].map(String::from),
            &widths
        )
    );
    for (spec, oplog) in &traces {
        let slim = encode(
            oplog,
            EncodeOpts {
                keep_deleted_content: false,
                ..Default::default()
            },
        );
        let yjs_like = encode_crdt_state(oplog);
        let final_doc = oplog.checkout_tip().content.len_bytes();
        println!(
            "{}",
            row(
                &[
                    spec.name.clone(),
                    fmt_bytes(slim.len()),
                    fmt_bytes(yjs_like.len()),
                    fmt_bytes(final_doc),
                ],
                &widths
            )
        );
    }
}
