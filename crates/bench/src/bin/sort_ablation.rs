//! Traversal-order ablation (paper §4.3): "When merging an event graph
//! with very high concurrency (like A2), the performance of Eg-walker is
//! highly dependent on the order in which events are traversed. A poorly
//! chosen traversal order can make this trace as much as 8× slower to
//! merge."
//!
//! Merges every trace under the three [`PlanOrder`] policies: the paper's
//! smallest-branch-first heuristic, the pathological largest-first order,
//! and plain arrival order. Sequential traces are order-insensitive (one
//! branch); the concurrent and asynchronous traces show the gap.

use eg_bench::harness::{build_traces, fmt_time, parse_args, row, time_mean};
use eg_dag::walk::PlanOrder;
use egwalker::{Branch, WalkerOpts};

fn main() {
    let args = parse_args();
    eprintln!("building traces at scale {} …", args.scale);
    let traces = build_traces(args.scale);
    let widths = [4, 14, 14, 14, 9];
    println!(
        "Traversal-order ablation (scale {:.3}) — §4.3's 'up to 8× slower'",
        args.scale
    );
    println!(
        "{}",
        row(
            &[
                "",
                "smallest-first",
                "largest-first",
                "arrival",
                "worst/best"
            ]
            .map(String::from),
            &widths
        )
    );
    for (spec, oplog) in &traces {
        let run = |order: PlanOrder| {
            time_mean(args.iters, || {
                let mut b = Branch::new();
                b.merge_with_opts(
                    oplog,
                    oplog.version(),
                    WalkerOpts {
                        enable_clearing: true,
                        plan_order: order,
                        ..Default::default()
                    },
                );
                std::hint::black_box(b.len_chars());
            })
        };
        let smallest = run(PlanOrder::SmallestFirst);
        let largest = run(PlanOrder::LargestFirst);
        let arrival = run(PlanOrder::Arrival);
        let worst = largest.max(arrival).max(smallest);
        let best = largest.min(arrival).min(smallest);
        println!(
            "{}",
            row(
                &[
                    spec.name.clone(),
                    fmt_time(smallest),
                    fmt_time(largest),
                    fmt_time(arrival),
                    format!("{:.1}x", worst / best),
                ],
                &widths
            )
        );
    }
}
