//! Regenerates the paper's Table 1: statistics of the editing traces.

use eg_bench::harness::{build_traces, parse_args, row};
use eg_trace::trace_stats;

fn main() {
    let args = parse_args();
    eprintln!("building traces at scale {} …", args.scale);
    let traces = build_traces(args.scale);
    let widths = [4, 12, 10, 12, 12, 9, 14, 12];
    println!(
        "Table 1 — editing trace statistics (scale {:.3})",
        args.scale
    );
    println!(
        "{}",
        row(
            &[
                "name",
                "type",
                "events",
                "avg conc",
                "graph runs",
                "authors",
                "chars left %",
                "final size"
            ]
            .map(String::from),
            &widths
        )
    );
    for (spec, oplog) in &traces {
        let s = trace_stats(oplog, None);
        println!(
            "{}",
            row(
                &[
                    spec.name.clone(),
                    format!("{:?}", spec.kind),
                    format!("{}", s.events),
                    format!("{:.2}", s.avg_concurrency),
                    format!("{}", s.graph_runs),
                    format!("{}", s.authors),
                    format!("{:.1}", s.chars_remaining_pct),
                    format!("{:.1} kB", s.final_size_bytes as f64 / 1000.0),
                ],
                &widths
            )
        );
        let p = spec.paper_stats;
        println!(
            "{}",
            row(
                &[
                    "".into(),
                    "(paper @1.0)".into(),
                    format!("{}k", p.0),
                    format!("{:.2}", p.1),
                    format!("{}", p.2),
                    format!("{}", p.3),
                    format!("{:.1}", p.4),
                    format!("{:.1} kB", p.5),
                ],
                &widths
            )
        );
    }
}
