//! Regenerates the paper's Table 1: statistics of the editing traces.

use eg_bench::harness::{build_traces, json_num, json_str, parse_args, row, write_json};
use eg_trace::trace_stats;

fn main() {
    let args = parse_args();
    eprintln!("building traces at scale {} …", args.scale);
    let traces = build_traces(args.scale);
    let widths = [4, 12, 10, 12, 12, 9, 14, 12];
    println!(
        "Table 1 — editing trace statistics (scale {:.3})",
        args.scale
    );
    println!(
        "{}",
        row(
            &[
                "name",
                "type",
                "events",
                "avg conc",
                "graph runs",
                "authors",
                "chars left %",
                "final size"
            ]
            .map(String::from),
            &widths
        )
    );
    let mut json_rows = Vec::new();
    for (spec, oplog) in &traces {
        let s = trace_stats(oplog, None);
        json_rows.push(vec![
            ("name", json_str(&spec.name)),
            ("kind", json_str(&format!("{:?}", spec.kind))),
            ("events", json_num(s.events as f64)),
            ("avg_concurrency", json_num(s.avg_concurrency)),
            ("graph_runs", json_num(s.graph_runs as f64)),
            ("authors", json_num(s.authors as f64)),
            ("chars_remaining_pct", json_num(s.chars_remaining_pct)),
            ("final_size_bytes", json_num(s.final_size_bytes as f64)),
        ]);
        println!(
            "{}",
            row(
                &[
                    spec.name.clone(),
                    format!("{:?}", spec.kind),
                    format!("{}", s.events),
                    format!("{:.2}", s.avg_concurrency),
                    format!("{}", s.graph_runs),
                    format!("{}", s.authors),
                    format!("{:.1}", s.chars_remaining_pct),
                    format!("{:.1} kB", s.final_size_bytes as f64 / 1000.0),
                ],
                &widths
            )
        );
        let p = spec.paper_stats;
        println!(
            "{}",
            row(
                &[
                    "".into(),
                    "(paper @1.0)".into(),
                    format!("{}k", p.0),
                    format!("{:.2}", p.1),
                    format!("{}", p.2),
                    format!("{}", p.3),
                    format!("{:.1}", p.4),
                    format!("{:.1} kB", p.5),
                ],
                &widths
            )
        );
    }
    if let Some(path) = &args.json {
        write_json(path, "table1", args.scale, &json_rows);
    }
}
