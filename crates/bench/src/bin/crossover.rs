//! The §4.3 story in one sweep: merging two branches that diverged by k
//! events each. OT needs O(k^2) work; Eg-walker O(k log k). The table
//! shows the crossover.

use eg_bench::harness::{fmt_time, parse_args, row, time_mean};
use eg_ot::OtMerger;
use egwalker::{Frontier, OpLog};

fn build_two_branch(k: usize) -> OpLog {
    let mut oplog = OpLog::new();
    let a = oplog.get_or_create_agent("alice");
    let b = oplog.get_or_create_agent("bob");
    oplog.add_insert(a, 0, "base text for the two branch experiment ");
    let base = oplog.version().clone();
    let mut va = base.clone();
    let mut vb = base;
    let mut rng = 0x2bad_cafe_u64;
    let mut rand = move |bound: usize| {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        (rng as usize) % bound.max(1)
    };
    let mut la = 40usize;
    let mut lb = 40usize;
    // Each branch inserts in runs of 8 to keep run counts realistic.
    let runs = k / 8;
    for _ in 0..runs {
        let lvs = oplog.add_insert_at(a, &va, rand(la + 1), "abcdefgh");
        va = Frontier::new_1(lvs.last());
        la += 8;
        let lvs = oplog.add_insert_at(b, &vb, rand(lb + 1), "ABCDEFGH");
        vb = Frontier::new_1(lvs.last());
        lb += 8;
    }
    oplog
}

fn main() {
    let args = parse_args();
    let widths = [10, 16, 16, 10];
    println!("Two-branch merge: k events per branch (O(k^2) OT vs O(k log k) Eg-walker)");
    println!(
        "{}",
        row(
            &["k", "eg-walker", "ot", "ot/eg"].map(String::from),
            &widths
        )
    );
    // OT at k=4096 already takes upwards of an hour (the paper's A2
    // story); keep the default sweep tractable.
    let max_k = (2_048.0 * (args.scale / 0.02).max(0.25)) as usize;
    let mut k = 256;
    while k <= max_k {
        let oplog = build_two_branch(k);
        let eg = time_mean(args.iters, || {
            let doc = oplog.checkout_tip();
            std::hint::black_box(doc.len_chars());
        });
        let ot = time_mean(1, || {
            let mut m = OtMerger::new(&oplog);
            let doc = m.replay();
            std::hint::black_box(doc.len_chars());
        });
        println!(
            "{}",
            row(
                &[
                    format!("{k}"),
                    fmt_time(eg),
                    fmt_time(ot),
                    format!("{:.1}x", ot / eg),
                ],
                &widths
            )
        );
        k *= 2;
    }
}
