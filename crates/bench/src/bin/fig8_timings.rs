//! Regenerates the paper's Fig. 8: CPU time to merge each trace from a
//! remote replica, and to reload the resulting document from disk.
//!
//! Eg-walker and OT load from a cached final document (a plain text read);
//! the reference CRDT must rebuild its whole state, so its load time equals
//! its merge time (paper §4.3).

use eg_bench::harness::{
    build_traces, fmt_time, json_num, json_str, parse_args, row, time_mean, write_json,
};
use eg_crdt_ref::CrdtDoc;
use eg_encoding::{decode_cached_doc_only, encode, EncodeOpts};
use eg_ot::OtMerger;
use egwalker::convert::to_crdt_ops;

fn main() {
    let args = parse_args();
    eprintln!("building traces at scale {} …", args.scale);
    let traces = build_traces(args.scale);
    let widths = [4, 16, 18, 16, 18, 16];
    println!("Fig. 8 — merge & reload times (scale {:.3})", args.scale);
    println!(
        "{}",
        row(
            &[
                "",
                "eg merge",
                "eg cached load",
                "ot merge",
                "ot cached load",
                "crdt merge=load"
            ]
            .map(String::from),
            &widths
        )
    );
    let mut json_rows = Vec::new();
    for (spec, oplog) in &traces {
        // Eg-walker merge: replay the full trace into an empty document.
        let eg_merge = time_mean(args.iters, || {
            let doc = oplog.checkout_tip();
            std::hint::black_box(doc.len_chars());
        });
        // Cached load: read the cached document text back from the file.
        let file = encode(
            oplog,
            EncodeOpts {
                cache_final_doc: true,
                ..Default::default()
            },
        );
        let eg_load = time_mean(args.iters.max(10), || {
            let doc = decode_cached_doc_only(&file).unwrap().unwrap();
            std::hint::black_box(doc.len());
        });
        // OT merge.
        let ot_merge = time_mean(1, || {
            let mut m = OtMerger::new(oplog);
            let doc = m.replay();
            std::hint::black_box(doc.len_chars());
        });
        // Reference CRDT: convert first (not timed, as in the paper's E1),
        // then merge the operation stream.
        let ops = to_crdt_ops(oplog);
        let crdt_merge = time_mean(args.iters, || {
            let mut doc = CrdtDoc::new();
            doc.apply_all(oplog, &ops);
            std::hint::black_box(doc.len_chars());
        });
        println!(
            "{}",
            row(
                &[
                    spec.name.clone(),
                    fmt_time(eg_merge),
                    fmt_time(eg_load),
                    fmt_time(ot_merge),
                    fmt_time(eg_load), // same cached-text load path as Eg-walker
                    fmt_time(crdt_merge),
                ],
                &widths
            )
        );
        json_rows.push(vec![
            ("name", json_str(&spec.name)),
            ("events", json_num(oplog.len() as f64)),
            ("eg_merge_s", json_num(eg_merge)),
            ("eg_cached_load_s", json_num(eg_load)),
            ("ot_merge_s", json_num(ot_merge)),
            ("crdt_merge_s", json_num(crdt_merge)),
        ]);
    }
    println!("(CRDT load time equals its merge time; Eg-walker/OT load the cached text.)");
    if let Some(path) = &args.json {
        write_json(path, "fig8_timings", args.scale, &json_rows);
    }
}
