//! Partial-replay ablation (paper §3.6): the cost of applying a few new
//! remote events to an up-to-date document.
//!
//! With partial replay, Eg-walker rebuilds internal state only from the
//! last critical version before the conflict window. The ablation
//! baseline rebuilds the document from scratch (replaying the whole
//! graph), which is what a system without §3.5/§3.6 would do to the same
//! effect. This is the "real-time collaboration" path: the paper's Fig. 8
//! red line marks the 16 ms frame budget such an update must fit in.

use eg_bench::harness::{build_traces, fmt_time, parse_args, row, time_mean};
use egwalker::OpLog;

/// Clones the oplog, appends `k` events from a second author concurrent
/// with the last `k` local events, and returns (extended log, version the
/// live document was at).
fn extend_with_remote(oplog: &OpLog, k: usize) -> (OpLog, Vec<usize>) {
    let mut extended = oplog.clone();
    let tip = extended.version().clone();
    let remote = extended.get_or_create_agent("late-remote-peer");
    // Parent the remote burst a few events back, making it concurrent with
    // the local tail (a realistic "peer was k keystrokes behind" merge).
    let back = oplog.len().saturating_sub(k).saturating_sub(1);
    let parents = if oplog.is_empty() { vec![] } else { vec![back] };
    let text = "r".repeat(k);
    extended.add_insert_at(remote, &parents, 0, &text);
    (extended, tip.to_vec())
}

fn main() {
    let args = parse_args();
    eprintln!("building traces at scale {} …", args.scale);
    let traces = build_traces(args.scale);
    let k = 16;
    let widths = [4, 16, 16, 10];
    println!(
        "Partial replay ablation (scale {:.3}) — merging {k} remote events into a live doc",
        args.scale
    );
    println!(
        "{}",
        row(
            &["", "partial (§3.6)", "from scratch", "speedup"].map(String::from),
            &widths
        )
    );
    for (spec, oplog) in &traces {
        let (extended, at) = extend_with_remote(oplog, k);
        // The live document is already at the old tip; measure applying the
        // new events only.
        let base_doc = extended.checkout(&at);
        let partial = time_mean(args.iters.max(10), || {
            let mut doc = base_doc.clone();
            doc.merge(&extended);
            std::hint::black_box(doc.len_chars());
        });
        let scratch = time_mean(args.iters, || {
            let doc = extended.checkout_tip();
            std::hint::black_box(doc.len_chars());
        });
        println!(
            "{}",
            row(
                &[
                    spec.name.clone(),
                    fmt_time(partial),
                    fmt_time(scratch),
                    format!("{:.0}x", scratch / partial),
                ],
                &widths
            )
        );
    }
    println!("\n(partial includes cloning the rope; the walker work itself is smaller still)");
}
