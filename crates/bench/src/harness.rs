//! Shared benchmark infrastructure: trace construction, CLI parsing, and
//! paper-style table output.

use eg_trace::{builtin_specs, generate, TraceSpec};
use egwalker::OpLog;
use std::time::Instant;

/// Default fraction of the paper's trace sizes used by the quick-run
/// binaries (the paper's traces hold ~0.5–1M events each; scaling keeps
/// laptop runtimes in seconds while preserving every shape).
pub const DEFAULT_SCALE: f64 = 0.02;

/// Command-line options shared by the benchmark binaries.
#[derive(Debug, Clone, Copy)]
pub struct BenchArgs {
    /// Trace scale relative to the paper (1.0 = paper size).
    pub scale: f64,
    /// Iterations for timing loops.
    pub iters: usize,
}

/// Parses `--scale <f>`, `--full` and `--iters <n>` from `std::env::args`.
pub fn parse_args() -> BenchArgs {
    let mut args = BenchArgs {
        scale: std::env::var("EG_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_SCALE),
        iters: 3,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                args.scale = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--scale needs a number");
                i += 1;
            }
            "--full" => args.scale = 1.0,
            "--iters" => {
                args.iters = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--iters needs a number");
                i += 1;
            }
            other => panic!("unknown argument {other}; supported: --scale <f> --full --iters <n>"),
        }
        i += 1;
    }
    args
}

/// Builds all seven traces at the given scale, reporting progress.
pub fn build_traces(scale: f64) -> Vec<(TraceSpec, OpLog)> {
    builtin_specs(scale)
        .into_iter()
        .map(|spec| {
            let t0 = Instant::now();
            let oplog = generate(&spec);
            eprintln!(
                "  built {} ({} events) in {:.1?}",
                spec.name,
                oplog.len(),
                t0.elapsed()
            );
            (spec, oplog)
        })
        .collect()
}

/// Times `f` over `iters` runs, returning the mean seconds.
pub fn time_mean(iters: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters.max(1) {
        f();
    }
    t0.elapsed().as_secs_f64() / iters.max(1) as f64
}

/// Formats seconds like the paper's figures (ms / sec / min).
pub fn fmt_time(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else if secs < 120.0 {
        format!("{:.2} sec", secs)
    } else {
        format!("{:.1} min", secs / 60.0)
    }
}

/// Formats bytes like the paper's figures (KiB / MiB / GiB).
pub fn fmt_bytes(bytes: usize) -> String {
    let b = bytes as f64;
    if b < 1024.0 * 1024.0 {
        format!("{:.1} KiB", b / 1024.0)
    } else if b < 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} MiB", b / (1024.0 * 1024.0))
    } else {
        format!("{:.2} GiB", b / (1024.0 * 1024.0 * 1024.0))
    }
}

/// Prints a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}
