//! Shared benchmark infrastructure: trace construction, CLI parsing, and
//! paper-style table output.

use eg_trace::{builtin_specs, generate, TraceSpec};
use egwalker::OpLog;
use serde::Value;
use std::time::Instant;

/// Default fraction of the paper's trace sizes used by the quick-run
/// binaries (the paper's traces hold ~0.5–1M events each; scaling keeps
/// laptop runtimes in seconds while preserving every shape).
pub const DEFAULT_SCALE: f64 = 0.02;

/// Command-line options shared by the benchmark binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Trace scale relative to the paper (1.0 = paper size).
    pub scale: f64,
    /// Iterations for timing loops.
    pub iters: usize,
    /// Where to additionally write results as JSON (bench-trajectory
    /// capture; see `scripts/bench_trajectory.sh`).
    pub json: Option<String>,
}

/// Parses `--scale <f>`, `--full`, `--iters <n>` and `--json <path>` from
/// `std::env::args`.
pub fn parse_args() -> BenchArgs {
    let mut args = BenchArgs {
        scale: std::env::var("EG_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_SCALE),
        iters: 3,
        json: None,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                args.scale = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--scale needs a number");
                i += 1;
            }
            "--full" => args.scale = 1.0,
            "--iters" => {
                args.iters = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--iters needs a number");
                i += 1;
            }
            "--json" => {
                args.json = Some(
                    argv.get(i + 1)
                        .cloned()
                        .expect("--json needs an output path"),
                );
                i += 1;
            }
            other => panic!(
                "unknown argument {other}; supported: --scale <f> --full --iters <n> --json <path>"
            ),
        }
        i += 1;
    }
    args
}

/// One bench-output row: ordered `(key, value)` pairs in the workspace's
/// JSON [`Value`] model.
pub type JsonRow = Vec<(&'static str, Value)>;

/// Builds a string [`Value`].
pub fn json_str(s: &str) -> Value {
    Value::Str(s.to_string())
}

/// Builds a numeric [`Value`] (non-finite numbers become `null`).
pub fn json_num(v: f64) -> Value {
    if v.is_finite() {
        Value::Float(v)
    } else {
        Value::Null
    }
}

/// Writes one bench result file for trajectory capture:
/// `{"bench": ..., "scale": ..., "rows": [{...}, ...]}`.
pub fn write_json(path: &str, bench: &str, scale: f64, rows: &[JsonRow]) {
    write_json_extra(path, bench, scale, &[], rows);
}

/// [`write_json`] with additional top-level fields (e.g. the worker-count
/// sweep of `server_load`, which `bench_diff` uses to refuse diffs across
/// differently-configured captures).
pub fn write_json_extra(
    path: &str,
    bench: &str,
    scale: f64,
    extras: &[(&str, Value)],
    rows: &[JsonRow],
) {
    let mut top = vec![
        ("bench".to_string(), json_str(bench)),
        ("scale".to_string(), json_num(scale)),
    ];
    for (k, v) in extras {
        top.push((k.to_string(), v.clone()));
    }
    top.push((
        "rows".to_string(),
        Value::Arr(
            rows.iter()
                .map(|row| {
                    Value::Obj(
                        row.iter()
                            .map(|(k, v)| (k.to_string(), v.clone()))
                            .collect(),
                    )
                })
                .collect(),
        ),
    ));
    let doc = Value::Obj(top);
    let mut out = serde_json::to_string(&doc).expect("serialise bench JSON");
    out.push('\n');
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir).expect("create bench-results dir");
    }
    std::fs::write(path, out).expect("write bench JSON");
    eprintln!("wrote {path}");
}

/// Builds all seven traces at the given scale, reporting progress.
pub fn build_traces(scale: f64) -> Vec<(TraceSpec, OpLog)> {
    builtin_specs(scale)
        .into_iter()
        .map(|spec| {
            let t0 = Instant::now();
            let oplog = generate(&spec);
            eprintln!(
                "  built {} ({} events) in {:.1?}",
                spec.name,
                oplog.len(),
                t0.elapsed()
            );
            (spec, oplog)
        })
        .collect()
}

/// Times `f` over `iters` runs, returning the trimmed mean seconds.
///
/// With `iters >= 2`, one untimed warm-up run precedes measurement
/// (caches, branch predictors, lazy allocations), each iteration is
/// timed individually, and the top/bottom ~10% of samples are dropped
/// before averaging once there are at least five — the same treatment
/// as the vendored criterion stand-in, so the JSON the cross-run
/// `bench_diff` consumes is stable against one-sided scheduler stalls.
/// `iters == 1` stays a single cold run: callers use it for routines
/// too expensive to repeat (e.g. quadratic OT merges).
pub fn time_mean(iters: usize, mut f: impl FnMut()) -> f64 {
    let iters = iters.max(1);
    if iters == 1 {
        let t0 = Instant::now();
        f();
        return t0.elapsed().as_secs_f64();
    }
    f(); // warm-up, untimed
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let trim = if samples.len() >= 5 {
        (samples.len() / 10).max(1)
    } else {
        0
    };
    let kept = &samples[trim..samples.len() - trim];
    kept.iter().sum::<f64>() / kept.len() as f64
}

/// Formats seconds like the paper's figures (ms / sec / min).
pub fn fmt_time(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else if secs < 120.0 {
        format!("{:.2} sec", secs)
    } else {
        format!("{:.1} min", secs / 60.0)
    }
}

/// Formats bytes like the paper's figures (KiB / MiB / GiB).
pub fn fmt_bytes(bytes: usize) -> String {
    let b = bytes as f64;
    if b < 1024.0 * 1024.0 {
        format!("{:.1} KiB", b / 1024.0)
    } else if b < 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} MiB", b / (1024.0 * 1024.0))
    } else {
        format!("{:.2} GiB", b / (1024.0 * 1024.0 * 1024.0))
    }
}

/// Prints a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}
