//! Edge cases and cross-feature property tests for the core crate:
//! Unicode, degenerate documents, traversal-order invariance, bundles, and
//! the history APIs, all checked against the naive reference
//! implementation on random histories.

use eg_dag::walk::PlanOrder;
use eg_rle::HasLength;
use egwalker::reference::replay_reference;
use egwalker::testgen::{random_oplog, SmallRng};
use egwalker::{Branch, EventBundle, OpLog, TextOperation, WalkerOpts};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Degenerate documents.
// ---------------------------------------------------------------------------

#[test]
fn empty_oplog_checkout() {
    let oplog = OpLog::new();
    assert_eq!(oplog.checkout_tip().content.to_string(), "");
    assert!(oplog.blame().is_empty());
    assert!(oplog.bundle_since(&[]).is_empty());
}

#[test]
fn single_char_document() {
    let mut oplog = OpLog::new();
    let a = oplog.get_or_create_agent("a");
    oplog.add_insert(a, 0, "x");
    assert_eq!(oplog.checkout_tip().content.to_string(), "x");
    oplog.add_delete(a, 0, 1);
    assert_eq!(oplog.checkout_tip().content.to_string(), "");
}

#[test]
fn delete_everything_then_rebuild() {
    let mut oplog = OpLog::new();
    let a = oplog.get_or_create_agent("a");
    oplog.add_insert(a, 0, "all of this will go");
    oplog.add_delete(a, 0, 19);
    assert_eq!(oplog.checkout_tip().content.to_string(), "");
    oplog.add_insert(a, 0, "fresh start");
    assert_eq!(oplog.checkout_tip().content.to_string(), "fresh start");
    assert_eq!(replay_reference(&oplog), "fresh start");
}

#[test]
fn concurrent_delete_everything_both_sides() {
    let mut oplog = OpLog::new();
    let a = oplog.get_or_create_agent("a");
    let b = oplog.get_or_create_agent("b");
    oplog.add_insert(a, 0, "doomed");
    let v = oplog.version().clone();
    oplog.add_delete_at(a, &v, 0, 6);
    oplog.add_delete_at(b, &v, 0, 6);
    // Double-deletes merge to a single removal.
    assert_eq!(oplog.checkout_tip().content.to_string(), "");
    assert_eq!(replay_reference(&oplog), "");
}

#[test]
fn concurrent_delete_overlapping_ranges() {
    let mut oplog = OpLog::new();
    let a = oplog.get_or_create_agent("a");
    let b = oplog.get_or_create_agent("b");
    oplog.add_insert(a, 0, "0123456789");
    let v = oplog.version().clone();
    oplog.add_delete_at(a, &v, 2, 5); // deletes 23456
    oplog.add_delete_at(b, &v, 4, 5); // deletes 45678
    let text = oplog.checkout_tip().content.to_string();
    assert_eq!(text, replay_reference(&oplog));
    assert_eq!(text, "019");
}

#[test]
fn insert_into_concurrently_deleted_region() {
    let mut oplog = OpLog::new();
    let a = oplog.get_or_create_agent("a");
    let b = oplog.get_or_create_agent("b");
    oplog.add_insert(a, 0, "keep DELETEME keep");
    let v = oplog.version().clone();
    oplog.add_delete_at(a, &v, 5, 9); // removes "DELETEME "
    oplog.add_insert_at(b, &v, 11, "inside "); // lands inside the doomed span
    let text = oplog.checkout_tip().content.to_string();
    assert_eq!(text, replay_reference(&oplog));
    // The inserted text must survive even though its neighbourhood died.
    assert!(text.contains("inside"), "text: {text:?}");
}

// ---------------------------------------------------------------------------
// Unicode.
// ---------------------------------------------------------------------------

#[test]
fn multibyte_chars_roundtrip_everywhere() {
    let mut oplog = OpLog::new();
    let a = oplog.get_or_create_agent("ünïcode-ågent");
    oplog.add_insert(a, 0, "héllo wörld");
    oplog.add_insert(a, 5, " 世界");
    oplog.add_delete(a, 0, 1); // deletes 'h'... é survives
    let text = oplog.checkout_tip().content.to_string();
    assert_eq!(text, replay_reference(&oplog));
    assert!(text.contains('é') && text.contains('世'));

    // Through the bundle layer.
    let mut other = OpLog::new();
    other.apply_bundle(&oplog.bundle_since(&[])).unwrap();
    assert_eq!(other.checkout_tip().content.to_string(), text);
}

#[test]
fn astral_plane_chars() {
    // Chars outside the BMP (4-byte UTF-8) index as single chars.
    let mut oplog = OpLog::new();
    let a = oplog.get_or_create_agent("a");
    oplog.add_insert(a, 0, "🦀🦀🦀");
    oplog.add_insert(a, 1, "x");
    oplog.add_delete(a, 3, 1);
    assert_eq!(oplog.checkout_tip().content.to_string(), "🦀x🦀");
}

#[test]
fn concurrent_unicode_edits() {
    let mut oplog = OpLog::new();
    let a = oplog.get_or_create_agent("a");
    let b = oplog.get_or_create_agent("b");
    oplog.add_insert(a, 0, "日本語のテキスト");
    let v = oplog.version().clone();
    oplog.add_insert_at(a, &v, 3, "😀");
    oplog.add_delete_at(b, &v, 0, 2);
    assert_eq!(
        oplog.checkout_tip().content.to_string(),
        replay_reference(&oplog)
    );
}

// ---------------------------------------------------------------------------
// Non-interleaving (paper §3.1).
// ---------------------------------------------------------------------------

#[test]
fn concurrent_runs_do_not_interleave() {
    for seed in 0..20u64 {
        let mut oplog = OpLog::new();
        let a = oplog.get_or_create_agent("a");
        let b = oplog.get_or_create_agent("b");
        oplog.add_insert(a, 0, "~~");
        let v = oplog.version().clone();
        // Both users type runs at the same position, in several ops each.
        let pos = 1 + (seed as usize % 2);
        let mut va = v.clone();
        let mut vb = v;
        for i in 0..3 {
            let lvs = oplog.add_insert_at(a, &va, pos + 2 * i, "aa");
            va = egwalker::Frontier::new_1(lvs.last());
            let lvs = oplog.add_insert_at(b, &vb, pos + 2 * i, "bb");
            vb = egwalker::Frontier::new_1(lvs.last());
        }
        let text = oplog.checkout_tip().content.to_string();
        assert!(
            text.contains("aaaaaa") && text.contains("bbbbbb"),
            "interleaved (seed {seed}): {text:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Traversal-order invariance: every PlanOrder produces the same document.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn plan_order_does_not_change_result(
        seed in 0u64..1_000_000,
        steps in 1usize..80,
        replicas in 1usize..4,
        merge_prob in 0.0f64..0.6,
    ) {
        let oplog = random_oplog(seed, steps, replicas, merge_prob);
        let mut texts = Vec::new();
        for order in [PlanOrder::SmallestFirst, PlanOrder::LargestFirst, PlanOrder::Arrival] {
            let mut b = Branch::new();
            b.merge_with_opts(
                &oplog,
                oplog.version(),
                WalkerOpts { enable_clearing: true, plan_order: order, ..Default::default() },
            );
            texts.push(b.content.to_string());
        }
        prop_assert_eq!(&texts[0], &texts[1]);
        prop_assert_eq!(&texts[0], &texts[2]);
        prop_assert_eq!(&texts[0], &replay_reference(&oplog));
    }

    /// `bundle_since(V)` contains *exactly* the complement of `Events(V)`,
    /// for random causally-closed versions V, and the full-graph bundle
    /// replicates the log.
    #[test]
    fn bundle_since_is_exact_complement(
        seed in 0u64..1_000_000,
        steps in 1usize..60,
        replicas in 1usize..4,
        merge_prob in 0.0f64..0.5,
        pick in any::<u64>(),
    ) {
        let oplog = random_oplog(seed, steps, replicas, merge_prob);
        prop_assume!(!oplog.is_empty());
        // Random causally-closed version.
        let mut rng = SmallRng::new(pick | 1);
        let mut lvs = Vec::new();
        for _ in 0..(rng.below(3) + 1) {
            lvs.push(rng.below(oplog.len()));
        }
        let frontier = oplog.graph.find_dominators(&lvs);
        let known: usize = oplog
            .graph
            .diff(&[], &frontier)
            .only_b
            .iter()
            .map(|r| r.len())
            .sum();
        let ids: Vec<_> = frontier.iter().map(|&lv| oplog.lv_to_remote(lv)).collect();
        let delta = oplog.bundle_since(&ids);
        prop_assert_eq!(delta.num_events(), oplog.len() - known);

        // The full-graph bundle replicates the document.
        let mut peer = OpLog::new();
        peer.apply_bundle(&oplog.bundle_since(&[])).unwrap();
        prop_assert_eq!(
            peer.checkout_tip().content.to_string(),
            oplog.checkout_tip().content.to_string()
        );
        // And the delta is then a pure duplicate.
        prop_assert!(peer.apply_bundle(&delta).unwrap().is_empty());
    }

    /// `diff_versions(from, tip)` applied to `checkout(from)` equals
    /// `checkout(tip)` for random versions.
    #[test]
    fn diff_versions_is_a_correct_patch(
        seed in 0u64..1_000_000,
        steps in 1usize..60,
        replicas in 1usize..4,
        merge_prob in 0.0f64..0.5,
        pick in any::<u64>(),
    ) {
        let oplog = random_oplog(seed, steps, replicas, merge_prob);
        prop_assume!(!oplog.is_empty());
        // Random causally-closed version: dominators of a random LV set.
        let mut rng = SmallRng::new(pick | 1);
        let mut lvs = Vec::new();
        for _ in 0..(rng.below(3) + 1) {
            lvs.push(rng.below(oplog.len()));
        }
        let from = oplog.graph.find_dominators(&lvs);

        let mut doc = oplog.checkout(&from);
        let tip = oplog.version().clone();
        for op in oplog.diff_versions(&from, &tip) {
            op.apply_to(&mut doc.content);
        }
        prop_assert_eq!(
            doc.content.to_string(),
            oplog.checkout_tip().content.to_string()
        );
    }

    /// The scrubber's last step equals the checkout, and every step is a
    /// prefix-consistent state (lengths change by exactly one per step).
    #[test]
    fn scrubber_steps_are_consistent(
        seed in 0u64..1_000_000,
        steps in 1usize..40,
        replicas in 1usize..4,
        merge_prob in 0.0f64..0.5,
    ) {
        let oplog = random_oplog(seed, steps, replicas, merge_prob);
        let mut scrub = egwalker::history::Scrubber::new(&oplog);
        let n = scrub.num_steps();
        let mut prev_len = scrub.seek(0).chars().count();
        prop_assert_eq!(prev_len, 0);
        for k in 1..=n {
            let len = scrub.seek(k).chars().count();
            let delta = len as i64 - prev_len as i64;
            prop_assert!(delta.abs() == 1, "step {k} changed length by {delta}");
            prev_len = len;
        }
        prop_assert_eq!(scrub.seek(n), oplog.checkout_tip().content.to_string());
    }

    /// Blame covers the document exactly and attributes to real agents.
    #[test]
    fn blame_partitions_document(
        seed in 0u64..1_000_000,
        steps in 1usize..60,
        replicas in 1usize..4,
        merge_prob in 0.0f64..0.5,
    ) {
        let oplog = random_oplog(seed, steps, replicas, merge_prob);
        let doc = oplog.checkout_tip().content.to_string();
        let spans = oplog.blame();
        let total: usize = spans.iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, doc.chars().count());
        for span in &spans {
            prop_assert!(span.agent.starts_with("agent"), "agent {:?}", span.agent);
            // The span's events must really be this agent's.
            for lv in span.lvs.iter() {
                prop_assert_eq!(oplog.agent_name_of(lv), span.agent.as_str());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Bundles delivered in adversarial chunkings.
// ---------------------------------------------------------------------------

#[test]
fn bundle_split_per_run_delivers_in_any_order() {
    let mut src = OpLog::new();
    let a = src.get_or_create_agent("a");
    let b = src.get_or_create_agent("b");
    src.add_insert(a, 0, "root ");
    let v = src.version().clone();
    src.add_insert_at(a, &v, 5, "left");
    src.add_insert_at(b, &v, 0, "right ");
    let tip = src.version().clone();
    src.add_delete_at(a, &tip, 0, 2);

    let full = src.bundle_since(&[]);
    // Deliver each run as its own bundle, in reverse order, buffering via
    // repeated attempts (mimicking the replica's causal buffer).
    let mut dst = OpLog::new();
    let mut queue: Vec<EventBundle> = full
        .runs
        .iter()
        .rev()
        .map(|r| EventBundle {
            runs: vec![r.clone()],
        })
        .collect();
    let mut spins = 0;
    while !queue.is_empty() {
        spins += 1;
        assert!(spins < 100, "no progress");
        let bundle = queue.remove(0);
        if dst.apply_bundle(&bundle).is_err() {
            queue.push(bundle); // retry later
        }
    }
    assert_eq!(
        dst.checkout_tip().content.to_string(),
        src.checkout_tip().content.to_string()
    );
}

#[test]
fn transformed_ops_apply_in_order() {
    // The walker's output contract: transformed ops in emission order
    // rebuild the document from the empty state.
    let oplog = random_oplog(1234, 60, 3, 0.4);
    let tip = oplog.version().clone();
    let (_, ops) = egwalker::walker::transformed_ops(&oplog, &[], &tip, WalkerOpts::default());
    let mut doc = eg_rope::Rope::new();
    for (_, op) in &ops {
        op.apply_to(&mut doc);
    }
    assert_eq!(doc.to_string(), replay_reference(&oplog));
    // And the op list is RLE-meaningful: no zero-length ops.
    assert!(ops.iter().all(|(lvs, op)| !lvs.is_empty() && op.len > 0));
}

#[test]
fn text_operation_construction_invariants() {
    let op = TextOperation::ins(3, "abc");
    assert_eq!(op.len, 3);
    let op = TextOperation::del(0, 2);
    assert_eq!(op.len, 2);
    assert!(op.content.is_none());
}
