//! End-to-end reproductions of the paper's worked examples, as executable
//! tests: Figure 1/2 (the "Helo" merge), Figure 4 (the "hi" → "Hey!"
//! graph), and the internal-state snapshots of Figures 6 and 7.

use egwalker::reference::{replay_reference, replay_reference_order};
use egwalker::{Frontier, OpLog};

/// Figures 1 and 2: two concurrent insertions into "Helo".
#[test]
fn figure_1_and_2() {
    let mut oplog = OpLog::new();
    let u1 = oplog.get_or_create_agent("user1");
    let u2 = oplog.get_or_create_agent("user2");
    // e1..e4: "Helo" typed by user 1.
    oplog.add_insert(u1, 0, "Helo");
    let v = oplog.version().clone();
    // e5: user 1 inserts "l" at 3; e6: user 2 inserts "!" at 4.
    let e5 = oplog.add_insert_at(u1, &v, 3, "l");
    let e6 = oplog.add_insert_at(u2, &v, 4, "!");

    // The frontier is {e5, e6}.
    let tip = oplog.version().clone();
    assert_eq!(tip.as_slice(), &[e5.last(), e6.last()]);

    // Both replicas converge to "Hello!".
    assert_eq!(oplog.checkout_tip().content.to_string(), "Hello!");

    // §3: "the graph in Figure 2 has two possible sort orders; Eg-walker
    // either first inserts l at index 3 … or ! at index 4 … The final
    // document state is Hello! either way." Check both via the reference.
    let order_a: Vec<usize> = vec![0, 1, 2, 3, 4, 5]; // e5 before e6
    let order_b: Vec<usize> = vec![0, 1, 2, 3, 5, 4]; // e6 before e5
    assert_eq!(replay_reference_order(&oplog, &order_a), "Hello!");
    assert_eq!(replay_reference_order(&oplog, &order_b), "Hello!");
}

/// Figure 4: starting from "hi", one user edits to "hey" while another
/// capitalises the "H"; after merging, someone appends "!".
#[test]
fn figure_4_graph() {
    let mut oplog = OpLog::new();
    let u1 = oplog.get_or_create_agent("user1");
    let u2 = oplog.get_or_create_agent("user2");

    // e1: Insert(0, "h"); e2: Insert(1, "i") — document "hi".
    oplog.add_insert(u1, 0, "h");
    oplog.add_insert(u1, 1, "i");
    let v_hi = oplog.version().clone(); // {e2}

    // Branch A (user 2): e3 Insert(0, "H"), e4 Delete(1) — "Hi" → "Hi"
    // with lowercase h removed: "H" then still "Hi"→… resulting in "Hi".
    let e3 = oplog.add_insert_at(u2, &v_hi, 0, "H");
    let e4 = oplog.add_delete_at(u2, &Frontier::new_1(e3.last()), 1, 1);

    // Branch B (user 1), concurrent: e5 Delete(1), e6 Insert(1, "e"),
    // e7 Insert(2, "y") — "hi" → "h" → "he" → "hey".
    let e5 = oplog.add_delete_at(u1, &v_hi, 1, 1);
    let e6 = oplog.add_insert_at(u1, &Frontier::new_1(e5.last()), 1, "e");
    let e7 = oplog.add_insert_at(u1, &Frontier::new_1(e6.last()), 2, "y");

    // Merge: "Hey". Then e8 appends "!" at 3 with parents {e4, e7}.
    let merged = Frontier::from_unsorted(&[e4.last(), e7.last()]);
    assert_eq!(oplog.checkout(&merged).content.to_string(), "Hey");

    oplog.add_insert_at(u2, &merged, 3, "!");
    assert_eq!(oplog.checkout_tip().content.to_string(), "Hey!");
    assert_eq!(replay_reference(&oplog), "Hey!");
}

/// The document states the paper narrates for Figure 4's intermediate
/// versions.
#[test]
fn figure_4_intermediate_versions() {
    let mut oplog = OpLog::new();
    let u1 = oplog.get_or_create_agent("user1");
    let u2 = oplog.get_or_create_agent("user2");
    oplog.add_insert(u1, 0, "h");
    oplog.add_insert(u1, 1, "i");
    let v_hi = oplog.version().clone();
    let e3 = oplog.add_insert_at(u2, &v_hi, 0, "H");
    let e4 = oplog.add_delete_at(u2, &Frontier::new_1(e3.last()), 1, 1);
    let e5 = oplog.add_delete_at(u1, &v_hi, 1, 1);
    let e6 = oplog.add_insert_at(u1, &Frontier::new_1(e5.last()), 1, "e");
    let e7 = oplog.add_insert_at(u1, &Frontier::new_1(e6.last()), 2, "y");

    assert_eq!(oplog.checkout(&v_hi).content.to_string(), "hi");
    assert_eq!(
        oplog.checkout(&[e3.last()]).content.to_string(),
        "Hhi",
        "after e3 the H precedes the lowercase h"
    );
    assert_eq!(oplog.checkout(&[e4.last()]).content.to_string(), "Hi");
    assert_eq!(oplog.checkout(&[e5.last()]).content.to_string(), "h");
    assert_eq!(oplog.checkout(&[e6.last()]).content.to_string(), "he");
    assert_eq!(oplog.checkout(&[e7.last()]).content.to_string(), "hey");
}

/// §2.3: versions round-trip through `Events`/`Version` — the frontier of
/// the events below a frontier is itself.
#[test]
fn version_events_bijection() {
    let mut oplog = OpLog::new();
    let a = oplog.get_or_create_agent("a");
    let b = oplog.get_or_create_agent("b");
    oplog.add_insert(a, 0, "xy");
    let v = oplog.version().clone();
    let ea = oplog.add_insert_at(a, &v, 0, "1");
    let eb = oplog.add_insert_at(b, &v, 2, "2");

    let frontier = Frontier::from_unsorted(&[ea.last(), eb.last()]);
    // Dominators of the event closure reproduce the frontier.
    let closure: Vec<usize> = (0..oplog.len()).collect();
    let dom = oplog.graph.find_dominators(&closure);
    assert_eq!(dom.as_slice(), frontier.as_slice());
}

/// §2.3: "a version rarely consists of more than two events in practice" —
/// but the model supports n-way frontiers; merge three concurrent events.
#[test]
fn three_way_frontier() {
    let mut oplog = OpLog::new();
    let names = ["a", "b", "c"];
    let agents: Vec<_> = names.iter().map(|n| oplog.get_or_create_agent(n)).collect();
    oplog.add_insert(agents[0], 0, "seed ");
    let v = oplog.version().clone();
    for (i, &agent) in agents.iter().enumerate() {
        oplog.add_insert_at(agent, &v, 5, &format!("({i})"));
    }
    assert_eq!(oplog.version().as_slice().len(), 3);
    let text = oplog.checkout_tip().content.to_string();
    assert!(text.contains("(0)") && text.contains("(1)") && text.contains("(2)"));
    assert_eq!(text, replay_reference(&oplog));
}
