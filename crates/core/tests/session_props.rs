//! Property tests for the editing session: undo/redo linearity under
//! random local scripts, with and without interleaved remote traffic.

use egwalker::session::Session;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Action {
    Insert { at: u16, text: String },
    Delete { at: u16, len: u8 },
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => (any::<u16>(), "[a-z]{1,5}").prop_map(|(at, text)| Action::Insert { at, text }),
        1 => (any::<u16>(), 1u8..4).prop_map(|(at, len)| Action::Delete { at, len }),
    ]
}

fn apply(s: &mut Session, action: &Action) -> bool {
    match action {
        Action::Insert { at, text } => {
            let pos = *at as usize % (s.len_chars() + 1);
            s.insert(pos, text);
            true
        }
        Action::Delete { at, len } => {
            if s.len_chars() == 0 {
                return false;
            }
            let pos = *at as usize % s.len_chars();
            let len = (*len as usize).min(s.len_chars() - pos);
            if len == 0 {
                return false;
            }
            s.delete(pos, len);
            true
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Undoing everything returns to the empty document; redoing
    /// everything returns to the final text. (Linear, single-user case.)
    #[test]
    fn undo_all_then_redo_all(actions in prop::collection::vec(action_strategy(), 1..25)) {
        let mut s = Session::new("solo");
        let mut performed = 0usize;
        for a in &actions {
            if apply(&mut s, a) {
                performed += 1;
            }
        }
        let final_text = s.text();

        let mut undone = 0;
        while s.undo() {
            undone += 1;
        }
        prop_assert_eq!(undone, performed);
        prop_assert_eq!(s.text(), "");

        let mut redone = 0;
        while s.redo() {
            redone += 1;
        }
        prop_assert_eq!(redone, performed);
        prop_assert_eq!(s.text(), final_text);
    }

    /// Interleaved snapshots: undoing k times reproduces the text after
    /// (performed - k) operations.
    #[test]
    fn undo_reaches_each_snapshot(actions in prop::collection::vec(action_strategy(), 1..15)) {
        let mut s = Session::new("solo");
        let mut snapshots = vec![s.text()];
        for a in &actions {
            if apply(&mut s, a) {
                snapshots.push(s.text());
            }
        }
        // Walk back through every snapshot.
        for expected in snapshots.iter().rev().skip(1) {
            prop_assert!(s.undo());
            prop_assert_eq!(&s.text(), expected);
        }
        prop_assert!(!s.undo());
    }

    /// With a remote collaborator's text merged in, undoing all local
    /// operations leaves exactly the remote text.
    #[test]
    fn undo_all_leaves_remote_text(
        local in prop::collection::vec(action_strategy(), 1..12),
        remote_text in "[A-Z]{3,8}",
        merge_after in 0usize..12,
    ) {
        let mut alice = Session::new("alice");
        let mut bob = Session::new("bob");

        let mut performed = 0usize;
        for (i, a) in local.iter().enumerate() {
            if i == merge_after {
                // Bob writes his own paragraph and ships it over.
                bob.insert(0, &remote_text);
                for bundle in bob.take_outbox() {
                    alice.merge_remote(&bundle);
                }
            }
            if apply(&mut alice, a) {
                performed += 1;
            }
        }
        if merge_after >= local.len() {
            bob.insert(0, &remote_text);
            for bundle in bob.take_outbox() {
                alice.merge_remote(&bundle);
            }
        }

        for _ in 0..performed {
            prop_assert!(alice.undo());
        }
        // Exactly bob's text remains. (Alice's deletions may have covered
        // bob's characters; undoing restores them — as alice-authored
        // events aliased to bob's originals — so compare *content*, not
        // blame.)
        prop_assert_eq!(alice.text(), remote_text);
    }
}

#[test]
fn undo_is_replicated_like_any_edit() {
    let mut alice = Session::new("alice");
    let mut bob = Session::new("bob");
    alice.insert(0, "draft one");
    alice.delete(0, 5);
    alice.undo(); // restore "draft"
    alice.undo(); // remove the original insert (and its restored part)
    for bundle in alice.take_outbox() {
        bob.merge_remote(&bundle);
    }
    assert_eq!(alice.text(), "");
    assert_eq!(bob.text(), "");
    // The history still records everything.
    assert!(!alice.oplog.is_empty());
    assert_eq!(alice.oplog.len(), bob.oplog.len());
}
