//! Property tests for the zero-allocation emit pipeline.
//!
//! * The borrowed-slice emit path ([`egwalker::TextOpRef`], content served
//!   as `&str` slices of the UTF-8 arena) must produce **byte-identical**
//!   documents to the owned-`String` reference interpretation, and to the
//!   naive reference replay, on randomized concurrent traces — including
//!   multi-byte UTF-8 content (the testgen alphabet mixes 1–4-byte
//!   characters).
//! * The tracker's emit-position cache is pure memoisation: cache-on and
//!   cache-off replays must stay identical step by step.

use eg_dag::walk::{plan_walk_with_order, PlanOrder};
use eg_rle::DTRange;
use egwalker::reference::replay_reference;
use egwalker::testgen::random_oplog;
use egwalker::tracker::Tracker;
use egwalker::walker::transformed_ops;
use egwalker::{Branch, OpLog, TextOperation, WalkerOpts};
use proptest::prelude::*;

/// Replays the full event graph through two trackers in lockstep —
/// emit-position cache on vs. off — asserting identical records and
/// emitted operations after every step (the discipline of
/// `tracker_cache_props.rs`, applied to the other cache).
fn replay_emit_cache_lockstep(oplog: &OpLog) -> Result<(), TestCaseError> {
    let target = oplog.version().clone();
    let diff = oplog.graph.diff(&[], &target);
    let (base, spans) = oplog.graph.conflict_window(&[], &target);
    let plan = plan_walk_with_order(
        &oplog.graph,
        &base,
        &spans,
        &diff.only_b,
        PlanOrder::SmallestFirst,
    );

    let mut cached: Tracker = Tracker::new_with_caches(true, true);
    let mut reference: Tracker = Tracker::new_with_caches(true, false);
    let mut ops_cached: Vec<(DTRange, TextOperation)> = Vec::new();
    let mut ops_reference: Vec<(DTRange, TextOperation)> = Vec::new();

    for step in &plan {
        for r in step.retreat.iter().rev() {
            cached.retreat(oplog, *r);
            reference.retreat(oplog, *r);
        }
        for r in &step.advance {
            cached.advance(oplog, *r);
            reference.advance(oplog, *r);
        }
        cached.apply_range(oplog, step.consume, true, &mut |lvs, op| {
            ops_cached.push((lvs, op.to_owned()));
        });
        reference.apply_range(oplog, step.consume, true, &mut |lvs, op| {
            ops_reference.push((lvs, op.to_owned()));
        });
        cached.check();
        reference.check();
        prop_assert_eq!(cached.records(), reference.records(), "records diverged");
        prop_assert_eq!(&ops_cached, &ops_reference, "emitted ops diverged");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Step-by-step emit-position-cache equivalence on random concurrent
    /// histories.
    #[test]
    fn emit_cache_matches_reference(
        seed in 0u64..1_000_000,
        steps in 1usize..80,
        replicas in 1usize..5,
        merge_prob in 0.0f64..0.6,
    ) {
        let oplog = random_oplog(seed, steps, replicas, merge_prob);
        replay_emit_cache_lockstep(&oplog)?;
    }

    /// End-to-end: the walker emits an identical transformed-operation
    /// stream with the emit-position cache on and off.
    #[test]
    fn walker_output_identical_with_and_without_emit_cache(
        seed in 0u64..1_000_000,
        steps in 1usize..100,
        replicas in 1usize..5,
        merge_prob in 0.0f64..0.6,
    ) {
        let oplog = random_oplog(seed, steps, replicas, merge_prob);
        let on = transformed_ops(
            &oplog,
            &[],
            oplog.version(),
            WalkerOpts { emit_cache: true, ..Default::default() },
        );
        let off = transformed_ops(
            &oplog,
            &[],
            oplog.version(),
            WalkerOpts { emit_cache: false, ..Default::default() },
        );
        prop_assert_eq!(on.0, off.0, "final versions diverged");
        prop_assert_eq!(on.1, off.1, "op streams diverged");
    }

    /// The borrowed-slice merge path (Branch applying `TextOpRef`s straight
    /// to the rope) produces documents byte-identical to materialising
    /// every operation as an owned `TextOperation` first, and to the naive
    /// reference replay — on traces with multi-byte UTF-8 content.
    #[test]
    fn borrowed_emit_matches_owned_and_reference(
        seed in 0u64..1_000_000,
        steps in 1usize..100,
        replicas in 1usize..5,
        merge_prob in 0.0f64..0.6,
    ) {
        let oplog = random_oplog(seed, steps, replicas, merge_prob);

        // Borrowed path: ops applied as &str slices of the arena.
        let mut borrowed = Branch::new();
        borrowed.merge(&oplog);

        // Owned path: every op materialised (the seed semantics).
        let (_, owned_ops) = transformed_ops(&oplog, &[], oplog.version(), WalkerOpts::default());
        let mut owned = eg_rope::Rope::new();
        for (_, op) in &owned_ops {
            op.apply_to(&mut owned);
        }

        let reference = replay_reference(&oplog);
        let borrowed_text = borrowed.content.to_string();
        let owned_text = owned.to_string();
        // Compare at the byte level: multi-byte content must come through
        // the arena bit-exact.
        prop_assert_eq!(borrowed_text.as_bytes(), owned_text.as_bytes());
        prop_assert_eq!(borrowed_text.as_bytes(), reference.as_bytes());
    }

    /// Arena slicing equals the seed's `Vec<char>` semantics on whatever
    /// content the generator produced: for every insert run, the borrowed
    /// slice equals collecting the run's chars via `unit_op`.
    #[test]
    fn content_slices_match_per_event_chars(
        seed in 0u64..1_000_000,
        steps in 1usize..60,
        replicas in 1usize..4,
        merge_prob in 0.0f64..0.5,
    ) {
        let oplog = random_oplog(seed, steps, replicas, merge_prob);
        for (lvs, run) in oplog.ops_in((0..oplog.len()).into()) {
            if let Some(content) = run.content {
                let slice = oplog.content_slice(content);
                let collected: String =
                    lvs.iter().map(|lv| oplog.unit_op(lv).2.unwrap()).collect();
                prop_assert_eq!(slice, collected.as_str());
            }
        }
    }
}

/// Deterministic spot check: multi-byte characters split across runs,
/// merges, and deletes come out byte-identical to the reference.
#[test]
fn multibyte_concurrent_merge_exact_bytes() {
    let mut oplog = OpLog::new();
    let a = oplog.get_or_create_agent("alice");
    let b = oplog.get_or_create_agent("bob");
    oplog.add_insert(a, 0, "héllo 日本語 wörld");
    let base = oplog.version().clone();
    oplog.add_insert_at(a, &base, 6, "→🦀← ");
    oplog.add_delete_at(b, &base, 2, 3);
    let tip = oplog.version().clone();
    oplog.add_insert_at(a, &tip, 0, "🦀");

    let expected = replay_reference(&oplog);
    let branch = oplog.checkout_tip();
    assert_eq!(branch.content.to_string().as_bytes(), expected.as_bytes());
    assert_eq!(branch.content.to_string(), expected);
}
