//! White-box reproduction of the paper's internal-state walkthrough:
//! Figure 5's `sp` state machine, and the record sequences of Figures 6
//! and 7, driven through the public [`Tracker`] API on the Figure 4 event
//! graph.

use eg_rle::DTRange;
use egwalker::tracker::{is_underwater_id, CrdtSpan, SpState, Tracker};
use egwalker::{Frontier, OpLog, TextOpRef};

/// Builds the Figure 4 oplog. LV mapping: e1→0 ("h"), e2→1 ("i"),
/// e3→2 ("H"), e4→3 (Delete(1)), e5→4 (Delete(1)), e6→5 ("e"),
/// e7→6 ("y"), e8→7 ("!").
fn figure_4_oplog() -> OpLog {
    let mut oplog = OpLog::new();
    let u1 = oplog.get_or_create_agent("user1");
    let u2 = oplog.get_or_create_agent("user2");
    oplog.add_insert(u1, 0, "h");
    oplog.add_insert(u1, 1, "i");
    let v_hi = oplog.version().clone();
    let e3 = oplog.add_insert_at(u2, &v_hi, 0, "H");
    let e4 = oplog.add_delete_at(u2, &Frontier::new_1(e3.last()), 1, 1);
    let e5 = oplog.add_delete_at(u1, &v_hi, 1, 1);
    let e6 = oplog.add_insert_at(u1, &Frontier::new_1(e5.last()), 1, "e");
    let e7 = oplog.add_insert_at(u1, &Frontier::new_1(e6.last()), 2, "y");
    let merged = Frontier::from_unsorted(&[e4.last(), e7.last()]);
    oplog.add_insert_at(u2, &merged, 3, "!");
    oplog
}

/// The tracker's real (non-placeholder) records, in document order.
fn real_records(t: &Tracker) -> Vec<CrdtSpan> {
    t.records()
        .into_iter()
        .filter(|r| !is_underwater_id(r.id.start))
        .collect()
}

fn sink(_: DTRange, _: TextOpRef<'_>) {}

#[test]
fn figure_6_left_state_after_e1_to_e4() {
    let oplog = figure_4_oplog();
    let mut t: Tracker = Tracker::new();
    t.apply_range(&oplog, (0..4).into(), false, &mut sink);

    // Fig. 6 left: records "H"(id 3→LV 2), "h"(id 1→LV 0), "i"(id 2→LV 1)
    // with sp = Ins / Del 1 / Ins and se = Ins / Del / Ins.
    let rows = real_records(&t);
    let flat: Vec<(usize, SpState, bool)> = rows
        .iter()
        .flat_map(|r| r.id.iter().map(|id| (id, r.sp, r.se_deleted)))
        .collect();
    assert_eq!(
        flat,
        vec![
            (2, SpState::Ins, false),   // "H"
            (0, SpState::Del(1), true), // "h" (deleted once)
            (1, SpState::Ins, false),   // "i"
        ]
    );
}

#[test]
fn figure_6_right_state_after_retreating_e4_e3() {
    let oplog = figure_4_oplog();
    let mut t: Tracker = Tracker::new();
    t.apply_range(&oplog, (0..4).into(), false, &mut sink);
    // Move the prepare version back to {e2}: retreat e4 then e3.
    t.retreat(&oplog, (3..4).into());
    t.retreat(&oplog, (2..3).into());

    // Fig. 6 right: "H" is NotInsertedYet, the deletion of "h" is undone
    // (sp = Ins), the effect state is unchanged.
    let rows = real_records(&t);
    let flat: Vec<(usize, SpState, bool)> = rows
        .iter()
        .flat_map(|r| r.id.iter().map(|id| (id, r.sp, r.se_deleted)))
        .collect();
    assert_eq!(
        flat,
        vec![
            (2, SpState::NotInsertedYet, false), // "H" retreated
            (0, SpState::Ins, true),             // "h": prepare undone, effect still Del
            (1, SpState::Ins, false),            // "i"
        ]
    );
}

#[test]
fn figure_7_state_after_full_replay() {
    let oplog = figure_4_oplog();
    let mut t: Tracker = Tracker::new();
    // Drive the walk exactly as §3.2 narrates.
    t.apply_range(&oplog, (0..4).into(), false, &mut sink); // e1..e4
    t.retreat(&oplog, (3..4).into()); // retreat e4
    t.retreat(&oplog, (2..3).into()); // retreat e3
    t.apply_range(&oplog, (4..7).into(), false, &mut sink); // e5..e7
    t.advance(&oplog, (2..4).into()); // advance e3, e4
    t.apply_range(&oplog, (7..8).into(), false, &mut sink); // e8

    // Fig. 7: "H" "h" "e" "y" "!" "i" with
    //   sp: Ins, Del 1, Ins, Ins, Ins, Del 1
    //   se: Ins, Del,   Ins, Ins, Ins, Del
    let rows = real_records(&t);
    let flat: Vec<(usize, SpState, bool)> = rows
        .iter()
        .flat_map(|r| r.id.iter().map(|id| (id, r.sp, r.se_deleted)))
        .collect();
    assert_eq!(
        flat,
        vec![
            (2, SpState::Ins, false),   // "H"
            (0, SpState::Del(1), true), // "h"
            (5, SpState::Ins, false),   // "e"
            (6, SpState::Ins, false),   // "y"
            (7, SpState::Ins, false),   // "!"
            (1, SpState::Del(1), true), // "i"
        ]
    );
}

#[test]
fn figure_5_double_delete_counts() {
    // Two concurrent deletes of the same character: sp counts to Del 2,
    // retreating one brings it back to Del 1, never to Ins (Fig. 5).
    let mut oplog = OpLog::new();
    let a = oplog.get_or_create_agent("a");
    let b = oplog.get_or_create_agent("b");
    oplog.add_insert(a, 0, "x");
    let v = oplog.version().clone();
    oplog.add_delete_at(a, &v, 0, 1); // LV 1
    oplog.add_delete_at(b, &v, 0, 1); // LV 2, concurrent

    let mut t: Tracker = Tracker::new();
    t.apply_range(&oplog, (0..2).into(), false, &mut sink);
    // Prepare version {LV1}; to apply LV2 (parents {LV0}) retreat LV1.
    t.retreat(&oplog, (1..2).into());
    t.apply_range(&oplog, (2..3).into(), false, &mut sink);
    // Now advance LV1 again: the record must count two deletions.
    t.advance(&oplog, (1..2).into());
    let rows = real_records(&t);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].sp, SpState::Del(2));
    assert!(rows[0].se_deleted);

    // Retreat one of them: back to Del 1.
    t.retreat(&oplog, (2..3).into());
    let rows = real_records(&t);
    assert_eq!(rows[0].sp, SpState::Del(1));
    assert!(rows[0].se_deleted, "the effect state never un-deletes");
}

#[test]
fn transformed_output_of_figure_4() {
    // The walker's emitted operations for e5..e8, interpreted against the
    // merge order e1 e2 e3 e4 e5 e6 e7 e8: e5's Delete(1) must become
    // Delete(2) (the "h" sits after "H"), e6/e7 shift right by one, e8
    // stays at 3.
    let oplog = figure_4_oplog();
    let tip = oplog.version().clone();
    let (_, ops) =
        egwalker::walker::transformed_ops(&oplog, &[], &tip, egwalker::WalkerOpts::default());
    let mut doc = eg_rope::Rope::new();
    for (_, op) in &ops {
        op.apply_to(&mut doc);
    }
    assert_eq!(doc.to_string(), "Hey!");
}
