//! Compile-time thread-safety audit for the types the multi-core server
//! host moves onto worker threads.
//!
//! `eg-server` works because an `OpLog`, its `Branch`, and a long-lived
//! reused `Tracker` can all live inside a worker thread: the slab arenas
//! index with plain integers and the only interior mutability is the
//! tracker's `Cell`-based cursor caches. These assertions freeze that
//! property — if a future change smuggles an `Rc`, a raw-pointer alias,
//! or a thread-bound handle into any of these types, this file stops
//! compiling instead of the server host failing at a distance.
//!
//! `Tracker` is deliberately `Send` but NOT `Sync`: its cursor and
//! emit-position caches are `Cell`s, so sharing one across threads would
//! be a data race. The shard-affinity design never shares a tracker —
//! each worker owns its own. The `!Sync` side is frozen by a
//! `compile_fail` doctest on the `Tracker` struct itself (negative trait
//! reasoning is not expressible in an integration test).

use egwalker::{Branch, EventBundle, Frontier, OpLog, Tracker};

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

#[test]
fn worker_owned_state_is_send() {
    assert_send::<OpLog>();
    assert_send::<Branch>();
    assert_send::<Tracker>();
    assert_send::<EventBundle>();
    assert_send::<Frontier>();
}

#[test]
fn shared_read_state_is_sync() {
    // Digests and bundles cross threads behind `Arc` in the server's
    // anti-entropy fan-out, which needs `Sync`, not just `Send`.
    assert_sync::<OpLog>();
    assert_sync::<Branch>();
    assert_sync::<EventBundle>();
    assert_sync::<Frontier>();
}
