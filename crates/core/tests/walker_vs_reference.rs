//! The central correctness battery: the optimised walker (B-trees, RLE,
//! state clearing, fast-forward, partial replay) against the naive
//! reference implementation, on thousands of random concurrent editing
//! histories.

use egwalker::reference::{replay_reference, replay_reference_version};
use egwalker::testgen::{random_oplog, random_oplog_prefixed, SmallRng};
use egwalker::{Branch, WalkerOpts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Full replay through the optimised walker equals the reference.
    #[test]
    fn full_replay_matches_reference(
        seed in 0u64..1_000_000,
        steps in 1usize..120,
        replicas in 1usize..5,
        merge_prob in 0.0f64..0.6,
    ) {
        let oplog = random_oplog(seed, steps, replicas, merge_prob);
        let expected = replay_reference(&oplog);
        let branch = oplog.checkout_tip();
        prop_assert_eq!(branch.content.to_string(), expected);
    }

    /// Disabling the §3.5 optimisations must not change the result
    /// (clearing and fast-forward are pure optimisations).
    #[test]
    fn clearing_opt_equivalence(
        seed in 0u64..1_000_000,
        steps in 1usize..100,
        replicas in 1usize..4,
        merge_prob in 0.0f64..0.6,
    ) {
        let oplog = random_oplog(seed, steps, replicas, merge_prob);
        let mut with_opt = Branch::new();
        with_opt.merge_with_opts(&oplog, oplog.version(), WalkerOpts { enable_clearing: true, ..Default::default() });
        let mut without_opt = Branch::new();
        without_opt.merge_with_opts(&oplog, oplog.version(), WalkerOpts { enable_clearing: false, ..Default::default() });
        prop_assert_eq!(with_opt.content.to_string(), without_opt.content.to_string());
    }

    /// Incremental merging (receiving events a few at a time) converges to
    /// the same document as a single batch replay (§3.6 partial replay).
    #[test]
    fn incremental_merge_matches_batch(
        seed in 0u64..1_000_000,
        steps in 1usize..100,
        replicas in 2usize..4,
        merge_prob in 0.0f64..0.6,
    ) {
        let oplog = random_oplog(seed, steps, replicas, merge_prob);
        let mut rng = SmallRng::new(seed ^ 0xABCD);
        let mut live = Branch::new();
        // Merge to a random ascending sequence of versions, then the tip.
        let mut lv = 0usize;
        while lv < oplog.len() {
            lv += 1 + rng.below(7);
            let target = lv.min(oplog.len()) - 1;
            live.merge_to(&oplog, &[target]);
        }
        live.merge(&oplog);
        let batch = oplog.checkout_tip();
        prop_assert_eq!(live.content.to_string(), batch.content.to_string());
        prop_assert_eq!(&live.version, &batch.version);
    }

    /// Historical checkouts equal the reference replay at that version.
    #[test]
    fn historical_checkout_matches_reference(
        seed in 0u64..1_000_000,
        steps in 1usize..80,
        replicas in 1usize..4,
        merge_prob in 0.0f64..0.5,
        probe in 0usize..1_000_000,
    ) {
        let oplog = random_oplog(seed, steps, replicas, merge_prob);
        prop_assume!(!oplog.is_empty());
        let lv = probe % oplog.len();
        let expected = replay_reference_version(&oplog, &[lv]);
        let branch = oplog.checkout(&[lv]);
        prop_assert_eq!(branch.content.to_string(), expected);
    }

    /// Exchanging events between two replicas (in either order) converges:
    /// strong eventual consistency end to end, including `merge_oplog`'s LV
    /// remapping.
    #[test]
    fn cross_replica_convergence(
        seed in 0u64..1_000_000,
        steps in 1usize..60,
        merge_prob in 0.0f64..0.5,
    ) {
        let log_a = random_oplog_prefixed(seed, steps, 3, merge_prob, "ant");
        // Replica B generates its own events under a disjoint ID space.
        let mut log_b = random_oplog_prefixed(seed ^ 99, steps / 2 + 1, 2, merge_prob, "bee");
        let mut log_a2 = log_a.clone();
        log_a2.merge_oplog(&log_b);
        log_b.merge_oplog(&log_a);
        log_b.merge_oplog(&log_a2); // pick up anything missing
        log_a2.merge_oplog(&log_b);
        prop_assert_eq!(log_a2.len(), log_b.len());
        let doc_a = log_a2.checkout_tip().content.to_string();
        let doc_b = log_b.checkout_tip().content.to_string();
        prop_assert_eq!(doc_a, doc_b);
    }
}

/// A long deterministic soak: bigger histories than the proptest cases.
#[test]
fn soak_large_histories() {
    for seed in 0..8u64 {
        let oplog = random_oplog(seed, 400, 4, 0.35);
        let expected = replay_reference(&oplog);
        let branch = oplog.checkout_tip();
        assert_eq!(branch.content.to_string(), expected, "seed {seed}");
    }
}

/// Merging two replicas that each did lots of independent offline work
/// (the paper's long-running-branches scenario, §3.7).
#[test]
fn offline_branches_merge() {
    use egwalker::OpLog;
    let mut oplog = OpLog::new();
    let alice = oplog.get_or_create_agent("alice");
    let bob = oplog.get_or_create_agent("bob");
    oplog.add_insert(alice, 0, "The quick brown fox jumps over the lazy dog");
    let base = oplog.version().clone();

    // Alice rewrites the start while offline.
    let mut v = base.clone();
    let lvs = oplog.add_delete_at(alice, &v, 0, 9);
    v = egwalker::Frontier::new_1(lvs.last());
    let lvs = oplog.add_insert_at(alice, &v, 0, "A speedy");
    v = egwalker::Frontier::new_1(lvs.last());
    let alice_tip = v;

    // Bob rewrites the end while offline.
    let mut v = base.clone();
    let lvs = oplog.add_delete_at(bob, &v, 35, 8);
    v = egwalker::Frontier::new_1(lvs.last());
    let lvs = oplog.add_insert_at(bob, &v, 35, "sleeping cat");
    v = egwalker::Frontier::new_1(lvs.last());
    let bob_tip = v;

    let expected = replay_reference(&oplog);
    assert_eq!(expected, "A speedy brown fox jumps over the sleeping cat");

    // Either merge order converges.
    let mut doc = oplog.checkout(&alice_tip);
    doc.merge_to(&oplog, &bob_tip);
    assert_eq!(doc.content.to_string(), expected);

    let mut doc = oplog.checkout(&bob_tip);
    doc.merge_to(&oplog, &alice_tip);
    assert_eq!(doc.content.to_string(), expected);
}
