//! Reused-tracker equivalence: a [`Tracker`] recycled across walk windows
//! (via `reset_with_caches` / the `_reusing` walker entry points) must be
//! indistinguishable from a freshly constructed one — byte-identical
//! transformed-operation streams and byte-identical merged documents —
//! under testgen's multi-byte UTF-8 concurrent workloads.
//!
//! This is the safety net for the slab arena's capacity-retaining
//! `clear()`: if any scrap of state survives a reset (a stale cache entry,
//! a dirty free-list slot, a dense-index remnant), these properties break.

use egwalker::testgen::random_oplog;
use egwalker::tracker::Tracker;
use egwalker::walker::{transformed_ops, transformed_ops_reusing};
use egwalker::{Branch, WalkerOpts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One tracker reused across many *independent* documents emits the
    /// same op stream as a fresh tracker per document.
    #[test]
    fn reused_tracker_matches_fresh_across_documents(
        seed in 0u64..1_000_000,
        steps in 1usize..60,
        replicas in 1usize..5,
        merge_prob in 0.0f64..0.6,
    ) {
        let mut reused: Tracker = Tracker::new();
        for doc in 0..4u64 {
            let oplog = random_oplog(seed.wrapping_add(doc), steps, replicas, merge_prob);
            let fresh = transformed_ops(&oplog, &[], oplog.version(), WalkerOpts::default());
            let recycled = transformed_ops_reusing(
                &oplog,
                &[],
                oplog.version(),
                WalkerOpts::default(),
                &mut reused,
            );
            prop_assert_eq!(fresh.0, recycled.0, "final versions diverged (doc {})", doc);
            prop_assert_eq!(fresh.1, recycled.1, "op streams diverged (doc {})", doc);
        }
    }

    /// Incremental merges through one long-lived tracker produce the same
    /// document as batch checkouts with per-merge trackers, at every
    /// intermediate version.
    #[test]
    fn incremental_reused_merges_match_batch_checkout(
        seed in 0u64..1_000_000,
        steps in 4usize..40,
        replicas in 2usize..5,
        merge_prob in 0.1f64..0.6,
    ) {
        let oplog = random_oplog(seed, steps, replicas, merge_prob);
        let mut live = Branch::new();
        let mut tracker: Tracker = Tracker::new();
        // Merge in growing prefixes of the LV space: each step exercises a
        // reset tracker against partially merged state.
        let n = oplog.len();
        let step = (n / 5).max(1);
        let mut upto = step.min(n);
        loop {
            // LV prefixes are causally closed (append order is topological),
            // so the prefix's frontier is its dominator set.
            let all: Vec<usize> = (0..upto).collect();
            let frontier = oplog.graph.find_dominators(&all);
            live.merge_with_opts_reusing(
                &oplog,
                frontier.as_slice(),
                WalkerOpts::default(),
                &mut tracker,
            );
            let batch = oplog.checkout(live.version.as_slice());
            prop_assert_eq!(
                live.content.to_string(),
                batch.content.to_string(),
                "documents diverged at {}/{} events", upto, n
            );
            if upto == n {
                break;
            }
            upto = (upto + step).min(n);
        }
        // Final state matches a full tip checkout.
        live.merge_reusing(&oplog, &mut tracker);
        let tip = oplog.checkout_tip();
        prop_assert_eq!(live.content.to_string(), tip.content.to_string());
        prop_assert_eq!(&live.version, oplog.version());
    }

    /// Cache toggles interact correctly with reuse: resetting a tracker
    /// with different cache flags than it was built with must not change
    /// the output.
    #[test]
    fn reuse_across_cache_configurations(
        seed in 0u64..1_000_000,
        steps in 1usize..50,
        replicas in 1usize..4,
        merge_prob in 0.0f64..0.5,
    ) {
        let oplog = random_oplog(seed, steps, replicas, merge_prob);
        let expected = transformed_ops(&oplog, &[], oplog.version(), WalkerOpts::default());
        let mut tracker: Tracker = Tracker::new_with_caches(false, false);
        for (cursor_cache, emit_cache) in
            [(true, true), (false, true), (true, false), (false, false)]
        {
            let opts = WalkerOpts { cursor_cache, emit_cache, ..Default::default() };
            let got = transformed_ops_reusing(&oplog, &[], oplog.version(), opts, &mut tracker);
            prop_assert_eq!(&expected.0, &got.0);
            prop_assert_eq!(&expected.1, &got.1,
                "op streams diverged at caches ({}, {})", cursor_cache, emit_cache);
        }
    }
}
