//! Equivalence of the tracker's cursor-cache fast path with the uncached
//! reference: on randomized concurrent traces, a cached and an uncached
//! [`Tracker`] must stay byte-identical — same internal record sequence,
//! same emitted operations — after **every** replay step, with the tree
//! invariants intact throughout. The cache is pure memoisation; any
//! divergence is a bug in its validation rules.

use eg_dag::walk::{plan_walk_with_order, PlanOrder};
use eg_rle::DTRange;
use egwalker::testgen::random_oplog;
use egwalker::tracker::Tracker;
use egwalker::walker::transformed_ops;
use egwalker::{OpLog, TextOperation, WalkerOpts};
use proptest::prelude::*;

/// Replays the full event graph through two trackers in lockstep — cursor
/// cache on vs. off — asserting equality after every retreat, advance,
/// and apply step.
fn replay_lockstep(oplog: &OpLog) -> Result<(), TestCaseError> {
    let target = oplog.version().clone();
    let diff = oplog.graph.diff(&[], &target);
    let (base, spans) = oplog.graph.conflict_window(&[], &target);
    let plan = plan_walk_with_order(
        &oplog.graph,
        &base,
        &spans,
        &diff.only_b,
        PlanOrder::SmallestFirst,
    );

    let mut cached: Tracker = Tracker::new_with_cache(true);
    let mut reference: Tracker = Tracker::new_with_cache(false);
    let mut ops_cached: Vec<(DTRange, TextOperation)> = Vec::new();
    let mut ops_reference: Vec<(DTRange, TextOperation)> = Vec::new();

    let assert_in_sync = |cached: &Tracker,
                          reference: &Tracker,
                          ops_cached: &[(DTRange, TextOperation)],
                          ops_reference: &[(DTRange, TextOperation)]|
     -> Result<(), TestCaseError> {
        cached.check();
        reference.check();
        prop_assert_eq!(cached.records(), reference.records(), "records diverged");
        prop_assert_eq!(ops_cached, ops_reference, "emitted ops diverged");
        Ok(())
    };

    for step in &plan {
        for r in step.retreat.iter().rev() {
            cached.retreat(oplog, *r);
            reference.retreat(oplog, *r);
            assert_in_sync(&cached, &reference, &ops_cached, &ops_reference)?;
        }
        for r in &step.advance {
            cached.advance(oplog, *r);
            reference.advance(oplog, *r);
            assert_in_sync(&cached, &reference, &ops_cached, &ops_reference)?;
        }
        cached.apply_range(oplog, step.consume, true, &mut |lvs, op| {
            ops_cached.push((lvs, op.to_owned()));
        });
        reference.apply_range(oplog, step.consume, true, &mut |lvs, op| {
            ops_reference.push((lvs, op.to_owned()));
        });
        assert_in_sync(&cached, &reference, &ops_cached, &ops_reference)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Step-by-step tracker equivalence on random concurrent histories.
    #[test]
    fn cached_tracker_matches_reference(
        seed in 0u64..1_000_000,
        steps in 1usize..80,
        replicas in 1usize..5,
        merge_prob in 0.0f64..0.6,
    ) {
        let oplog = random_oplog(seed, steps, replicas, merge_prob);
        replay_lockstep(&oplog)?;
    }

    /// End-to-end: the full walker (including §3.5 clearing and
    /// fast-forward) emits an identical transformed-operation stream with
    /// the cache on and off.
    #[test]
    fn walker_output_identical_with_and_without_cache(
        seed in 0u64..1_000_000,
        steps in 1usize..100,
        replicas in 1usize..5,
        merge_prob in 0.0f64..0.6,
    ) {
        let oplog = random_oplog(seed, steps, replicas, merge_prob);
        let on = transformed_ops(
            &oplog,
            &[],
            oplog.version(),
            WalkerOpts { cursor_cache: true, ..Default::default() },
        );
        let off = transformed_ops(
            &oplog,
            &[],
            oplog.version(),
            WalkerOpts { cursor_cache: false, ..Default::default() },
        );
        prop_assert_eq!(on.0, off.0, "final versions diverged");
        prop_assert_eq!(on.1, off.1, "op streams diverged");
    }
}
