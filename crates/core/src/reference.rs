//! A deliberately simple reference implementation of Eg-walker replay,
//! mirroring the paper's Appendix B pseudocode (Listings 1 and 2) and the
//! authors' TypeScript reference implementation.
//!
//! No B-trees, no run-length encoding, no state clearing, no partial replay
//! — just a flat `Vec` of augmented CRDT items walked one event at a time.
//! The optimised walker is property-tested against this oracle.

use crate::op::ListOpKind;
use crate::OpLog;
use eg_dag::{Frontier, LV};

/// Sentinel for "no delete target recorded at this LV".
const NO_TARGET: usize = usize::MAX;

/// Delete-event LV → id of the deleted character, dense over the event-LV
/// space — the same representation the optimised tracker uses
/// ([`crate::tracker`]'s `DelTargetIndex`), kept structurally identical
/// here so the two implementations stay comparable.
#[derive(Debug, Default)]
struct DenseDelTargets {
    dense: Vec<usize>,
}

impl DenseDelTargets {
    fn record(&mut self, lv: LV, target: LV) {
        if lv >= self.dense.len() {
            self.dense.resize(lv + 1, NO_TARGET);
        }
        self.dense[lv] = target;
    }

    fn target_of(&self, lv: LV) -> LV {
        let t = self.dense[lv];
        debug_assert_ne!(t, NO_TARGET, "delete {lv} has no recorded target");
        t
    }
}

/// Sentinel: the new item was inserted at the document start.
const START: usize = usize::MAX;
/// Sentinel: the new item was inserted at the document end.
const END: usize = usize::MAX - 1;

/// One augmented CRDT item (paper Listing 1: `AugmentedCRDTItem`).
#[derive(Debug, Clone)]
struct RefItem {
    /// LV of the insert event that created this character.
    id: LV,
    /// LV of the character to the left at insert time, or [`START`].
    origin_left: usize,
    /// LV of the next character to the right at insert time, or [`END`].
    origin_right: usize,
    /// `true` if any applied event deleted this character (effect state).
    ever_deleted: bool,
    /// 0 = not-inserted-yet, 1 = inserted, `n >= 2` = concurrently deleted
    /// `n - 1` times (prepare state).
    prepare_state: i64,
}

/// Replays the events of `oplog` listed in `order` (which must be a valid
/// topological order of a causally closed subset), returning the resulting
/// document text.
pub fn replay_reference_order(oplog: &OpLog, order: &[LV]) -> String {
    let mut items: Vec<RefItem> = Vec::new();
    let mut doc: Vec<char> = Vec::new();
    // Delete event LV → id of the character it deleted.
    let mut del_targets = DenseDelTargets::default();
    let mut cur_version = Frontier::root();

    let find_idx = |items: &[RefItem], id: usize| -> usize {
        items.iter().position(|it| it.id == id).expect("unknown id")
    };

    for &lv in order {
        // Step 1: move the prepare version to the event's parents.
        let parents = oplog.graph.parents_of(lv);
        let d = oplog.graph.diff(&cur_version, &parents);
        for r in &d.only_a {
            for ev in r.iter() {
                let target = match oplog.unit_op(ev).0 {
                    ListOpKind::Ins => ev,
                    ListOpKind::Del => del_targets.target_of(ev),
                };
                let idx = find_idx(&items, target);
                items[idx].prepare_state -= 1;
            }
        }
        for r in &d.only_b {
            for ev in r.iter() {
                let target = match oplog.unit_op(ev).0 {
                    ListOpKind::Ins => ev,
                    ListOpKind::Del => del_targets.target_of(ev),
                };
                let idx = find_idx(&items, target);
                items[idx].prepare_state += 1;
            }
        }

        // Step 2: apply.
        let (kind, pos, ch) = oplog.unit_op(lv);
        match kind {
            ListOpKind::Ins => {
                // Find the insert position: after `pos` prepare-visible items.
                let mut ins_idx = 0;
                let mut seen = 0;
                while seen < pos {
                    if items[ins_idx].prepare_state == 1 {
                        seen += 1;
                    }
                    ins_idx += 1;
                }
                let origin_left = if ins_idx == 0 {
                    START
                } else {
                    items[ins_idx - 1].id
                };
                let origin_right = items[ins_idx..]
                    .iter()
                    .find(|it| it.prepare_state >= 1)
                    .map(|it| it.id)
                    .unwrap_or(END);
                let new_item = RefItem {
                    id: lv,
                    origin_left,
                    origin_right,
                    ever_deleted: false,
                    prepare_state: 1,
                };
                let dest_idx = integrate(oplog, &items, &new_item, ins_idx, &find_idx);
                let effect_pos = items[..dest_idx]
                    .iter()
                    .filter(|it| !it.ever_deleted)
                    .count();
                items.insert(dest_idx, new_item);
                doc.insert(effect_pos, ch.unwrap());
            }
            ListOpKind::Del => {
                // The pos-th prepare-visible item.
                let mut idx = 0;
                let mut seen = 0;
                loop {
                    if items[idx].prepare_state == 1 {
                        if seen == pos {
                            break;
                        }
                        seen += 1;
                    }
                    idx += 1;
                }
                del_targets.record(lv, items[idx].id);
                let was_visible = !items[idx].ever_deleted;
                items[idx].ever_deleted = true;
                items[idx].prepare_state += 1;
                if was_visible {
                    let effect_pos = items[..idx].iter().filter(|it| !it.ever_deleted).count();
                    doc.remove(effect_pos);
                }
            }
        }
        // After applying, the current version is exactly {lv} (the event
        // dominates its parents) — paper Listing 2: `cur_version = {e.id}`.
        cur_version = Frontier::new_1(lv);
    }
    doc.into_iter().collect()
}

/// The YjsMod/FugueMax integration rule (paper §3.3 and Listing 2): decides
/// where among concurrent siblings the new item lands. Returns the index to
/// insert at.
fn integrate(
    oplog: &OpLog,
    items: &[RefItem],
    new_item: &RefItem,
    ins_idx: usize,
    find_idx: &dyn Fn(&[RefItem], usize) -> usize,
) -> usize {
    let left_idx = ins_idx as i64 - 1; // -1 when origin is START
    let right_idx = if new_item.origin_right == END {
        items.len()
    } else {
        find_idx(items, new_item.origin_right)
    };
    let mut scanning = false;
    let mut dest_idx = ins_idx;
    let mut i = ins_idx;
    loop {
        if !scanning {
            dest_idx = i;
        }
        if i == items.len() || i == right_idx {
            break;
        }
        let other = &items[i];
        let oleft = if other.origin_left == START {
            -1
        } else {
            find_idx(items, other.origin_left) as i64
        };
        let oright = if other.origin_right == END {
            items.len()
        } else {
            find_idx(items, other.origin_right)
        };
        #[allow(clippy::comparison_chain)]
        if oleft < left_idx {
            break;
        } else if oleft == left_idx {
            #[allow(clippy::comparison_chain)]
            if oright < right_idx {
                scanning = true;
            } else if oright == right_idx {
                // Same origins: order by agent name (stable across replicas).
                let my_agent = oplog.lv_to_remote(new_item.id).agent;
                let other_agent = oplog.lv_to_remote(other.id).agent;
                if my_agent < other_agent {
                    break;
                }
                scanning = false;
            } else {
                scanning = false;
            }
        }
        i += 1;
    }
    dest_idx
}

/// Replays the full oplog in LV order.
pub fn replay_reference(oplog: &OpLog) -> String {
    let order: Vec<LV> = (0..oplog.len()).collect();
    replay_reference_order(oplog, &order)
}

/// Replays only `Events(version)` (in LV order), producing the historical
/// document at that version.
pub fn replay_reference_version(oplog: &OpLog, version: &[LV]) -> String {
    let d = oplog.graph.diff(&[], version);
    let order: Vec<LV> = d.only_b.iter().flat_map(|r| r.iter()).collect();
    replay_reference_order(oplog, &order)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Figure 1/2: concurrent insertions into "Helo".
    #[test]
    fn fig1_concurrent_inserts() {
        let mut log = OpLog::new();
        let u1 = log.get_or_create_agent("user1");
        let u2 = log.get_or_create_agent("user2");
        log.add_insert(u1, 0, "Helo");
        let base = log.version().clone();
        log.add_insert_at(u1, &base, 3, "l"); // e5
        log.add_insert_at(u2, &base, 4, "!"); // e6
        assert_eq!(replay_reference(&log), "Hello!");
    }

    /// Paper Figure 4: hi → (hey / Hi) → Hey!.
    #[test]
    fn fig4_merge() {
        let mut log = OpLog::new();
        let u1 = log.get_or_create_agent("user1");
        let u2 = log.get_or_create_agent("user2");
        log.add_insert(u1, 0, "hi"); // e1 e2
        let base = log.version().clone();
        // Branch A: capitalise: insert 'H' at 0, delete 'h' (now at 1).
        log.add_insert_at(u2, &base, 0, "H"); // e3
        log.add_delete_at(u2, &[2], 1, 1); // e4
                                           // Branch B: hi -> hey: delete 'i' (at 1), insert "ey".
        log.add_delete_at(u1, &base, 1, 1); // e5
        log.add_insert_at(u1, &[4], 1, "ey"); // e6 e7
                                              // Merge and append '!'.
        let merged = log.version().clone();
        assert_eq!(merged.as_slice(), &[3, 6]);
        log.add_insert_at(u1, &merged, 3, "!"); // e8
        assert_eq!(replay_reference(&log), "Hey!");
    }

    /// Concurrent deletes of the same character collapse to one deletion.
    #[test]
    fn concurrent_double_delete() {
        let mut log = OpLog::new();
        let u1 = log.get_or_create_agent("user1");
        let u2 = log.get_or_create_agent("user2");
        log.add_insert(u1, 0, "abc");
        let base = log.version().clone();
        log.add_delete_at(u1, &base, 1, 1);
        log.add_delete_at(u2, &base, 1, 1);
        assert_eq!(replay_reference(&log), "ac");
    }

    /// Delete of a character concurrent with an insert before it.
    #[test]
    fn insert_before_concurrent_delete() {
        let mut log = OpLog::new();
        let u1 = log.get_or_create_agent("user1");
        let u2 = log.get_or_create_agent("user2");
        log.add_insert(u1, 0, "abc");
        let base = log.version().clone();
        log.add_insert_at(u1, &base, 0, "X");
        log.add_delete_at(u2, &base, 2, 1); // deletes 'c'
        assert_eq!(replay_reference(&log), "Xab");
    }

    /// Replay order must not matter (convergence, paper Lemma C.8).
    #[test]
    fn order_independence_fig4() {
        let mut log = OpLog::new();
        let u1 = log.get_or_create_agent("user1");
        let u2 = log.get_or_create_agent("user2");
        log.add_insert(u1, 0, "hi");
        let base = log.version().clone();
        log.add_insert_at(u2, &base, 0, "H");
        log.add_delete_at(u2, &[2], 1, 1);
        log.add_delete_at(u1, &base, 1, 1);
        log.add_insert_at(u1, &[4], 1, "ey");
        log.add_insert_at(u1, &[3, 6], 3, "!");

        let expected = replay_reference(&log);
        // A different topological order: branch B first.
        let order = vec![0, 1, 4, 5, 6, 2, 3, 7];
        assert_eq!(replay_reference_order(&log, &order), expected);
        // Interleaved.
        let order = vec![0, 1, 2, 4, 3, 5, 6, 7];
        assert_eq!(replay_reference_order(&log, &order), expected);
    }

    /// Historical checkout.
    #[test]
    fn replay_at_version() {
        let mut log = OpLog::new();
        let a = log.get_or_create_agent("alice");
        log.add_insert(a, 0, "abc");
        log.add_delete(a, 0, 1);
        log.add_insert(a, 2, "X");
        assert_eq!(replay_reference_version(&log, &[2]), "abc");
        assert_eq!(replay_reference_version(&log, &[3]), "bc");
        assert_eq!(
            replay_reference_version(&log, &log.version().clone()),
            "bcX"
        );
    }

    /// Sequential inserts at the same position by different agents do not
    /// interleave badly (agent-name tie-break is deterministic).
    #[test]
    fn same_position_tiebreak() {
        let mut log = OpLog::new();
        let a = log.get_or_create_agent("alice");
        let b = log.get_or_create_agent("bob");
        log.add_insert(a, 0, "base");
        let v = log.version().clone();
        log.add_insert_at(a, &v, 0, "AAA");
        log.add_insert_at(b, &v, 0, "BBB");
        // Runs stay contiguous (non-interleaving) and agent order is stable.
        assert_eq!(replay_reference(&log), "AAABBBbase");
    }
}
