//! The editing-operation model.
//!
//! Events carry operations `Insert(i, c)` / `Delete(i)` (paper §2). For
//! storage and processing they are run-length encoded: people type and
//! delete in bursts, so a run of consecutive single-character operations
//! collapses into one [`OpRun`].

use eg_rle::{DTRange, HasLength, MergableSpan, SplitableSpan};

/// The kind of a text operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ListOpKind {
    /// Insert characters.
    Ins,
    /// Delete characters.
    Del,
}

/// A run of consecutive single-character operations, in the coordinates of
/// the document *as it was when the run started*.
///
/// * `Ins` with `loc = [p, p+n)`, forward: characters typed left to right
///   starting at `p` (each unit `k` inserted at index `p + k`).
/// * `Del` with `loc = [p, p+n)`, forward: `n` presses of the Delete key at
///   index `p` — the characters originally at `[p, p+n)` (each unit is
///   generated at index `p`, because earlier units shift the text left).
/// * `Del` with `loc = [s, e)`, backward: backspacing — unit `k` deletes the
///   character originally at `e - 1 - k`.
///
/// `content` is a **char-index** range into the oplog's insert-content
/// buffer (`Ins` only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRun {
    /// Operation kind.
    pub kind: ListOpKind,
    /// Target index range, in document coordinates at run start.
    pub loc: DTRange,
    /// Direction of the run (see type docs). Single-unit runs are `fwd`.
    pub fwd: bool,
    /// Char range into the oplog's content buffer (`Ins` only).
    pub content: Option<DTRange>,
}

impl OpRun {
    /// The document index at which unit `k` of the run was generated.
    pub fn unit_pos(&self, k: usize) -> usize {
        debug_assert!(k < self.len());
        match (self.kind, self.fwd) {
            (ListOpKind::Ins, true) => self.loc.start + k,
            (ListOpKind::Ins, false) => self.loc.start,
            (ListOpKind::Del, true) => self.loc.start,
            (ListOpKind::Del, false) => self.loc.end - 1 - k,
        }
    }
}

impl HasLength for OpRun {
    fn len(&self) -> usize {
        self.loc.len()
    }
}

impl SplitableSpan for OpRun {
    fn truncate(&mut self, at: usize) -> Self {
        debug_assert!(at > 0 && at < self.len());
        let rem_content = self.content.as_mut().map(|c| c.truncate(at));
        let rem_loc = match (self.kind, self.fwd) {
            // Forward insert: the tail's characters land above the head's.
            (ListOpKind::Ins, true) => self.loc.truncate(at),
            (ListOpKind::Ins, false) => unreachable!("backward insert runs are unit length"),
            // Forward delete: every unit applies at the constant index
            // `loc.start` (the text slides left after each press), so the
            // tail keeps the same start.
            (ListOpKind::Del, true) => {
                let tail = DTRange::new(self.loc.start, self.loc.end - at);
                self.loc.end = self.loc.start + at;
                tail
            }
            // Backward delete: the first `at` units deleted the *top* of the
            // range; the tail keeps the bottom.
            (ListOpKind::Del, false) => {
                let tail = DTRange::new(self.loc.start, self.loc.end - at);
                self.loc.start = self.loc.end - at;
                tail
            }
        };
        OpRun {
            kind: self.kind,
            loc: rem_loc,
            fwd: self.fwd,
            content: rem_content,
        }
    }
}

impl MergableSpan for OpRun {
    fn can_append(&self, other: &Self) -> bool {
        if self.kind != other.kind {
            return false;
        }
        let content_ok = match (self.content, other.content) {
            (Some(a), Some(b)) => a.can_append(&b),
            (None, None) => true,
            _ => false,
        };
        if !content_ok {
            return false;
        }
        match self.kind {
            // Typing left to right; treat any run as forward-extensible.
            ListOpKind::Ins => self.fwd && other.fwd && other.loc.start == self.loc.end,
            ListOpKind::Del => {
                if self.fwd && other.fwd && other.loc.start == self.loc.start {
                    // Forward deletes at a constant index.
                    true
                } else {
                    // Backspacing: the next unit deletes just below us.
                    (self.len() == 1 || !self.fwd)
                        && (other.len() == 1 || !other.fwd)
                        && other.loc.end == self.loc.start
                }
            }
        }
    }

    fn append(&mut self, other: Self) {
        match self.kind {
            ListOpKind::Ins => self.loc.append(other.loc),
            ListOpKind::Del => {
                if self.fwd && other.fwd && other.loc.start == self.loc.start {
                    self.loc.end += other.len();
                } else {
                    // Backward merge.
                    self.fwd = false;
                    self.loc.start = other.loc.start;
                }
            }
        }
        if let (Some(a), Some(b)) = (&mut self.content, other.content) {
            a.append(b);
        }
    }
}

/// A transformed text operation borrowing its content from the oplog's
/// content arena — the zero-allocation form the walker emits.
///
/// The walker's hot path transforms and applies millions of operations per
/// merge; materialising each one as an owned [`TextOperation`] would
/// heap-allocate a `String` per emitted insert. `TextOpRef` instead borrows
/// the inserted text as a `&str` slice of the arena; consumers that apply
/// the operation immediately (the [`crate::Branch`] merge path) never copy
/// it, and API boundaries that truly need ownership convert with
/// [`TextOpRef::to_owned`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TextOpRef<'a> {
    /// Operation kind.
    pub kind: ListOpKind,
    /// Document index where the operation applies.
    pub pos: usize,
    /// Number of characters inserted or deleted.
    pub len: usize,
    /// Inserted text, borrowed from the oplog (`Ins` only).
    pub content: Option<&'a str>,
}

impl<'a> TextOpRef<'a> {
    /// Builds an insertion over borrowed content.
    pub fn ins(pos: usize, content: &'a str) -> Self {
        TextOpRef {
            kind: ListOpKind::Ins,
            pos,
            len: content.chars().count(),
            content: Some(content),
        }
    }

    /// Builds a deletion.
    pub fn del(pos: usize, len: usize) -> Self {
        TextOpRef {
            kind: ListOpKind::Del,
            pos,
            len,
            content: None,
        }
    }

    /// Applies the operation to a rope without copying the content.
    pub fn apply_to(&self, doc: &mut eg_rope::Rope) {
        match self.kind {
            ListOpKind::Ins => doc.insert(self.pos, self.content.unwrap_or("")),
            ListOpKind::Del => doc.remove(self.pos, self.len),
        }
    }

    /// Materialises an owned [`TextOperation`] (allocates for `Ins`).
    pub fn to_owned(&self) -> TextOperation {
        TextOperation {
            kind: self.kind,
            pos: self.pos,
            len: self.len,
            content: self.content.map(str::to_string),
        }
    }
}

/// A single, materialised text operation with its content — the public form
/// of transformed operations emitted by the walker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextOperation {
    /// Operation kind.
    pub kind: ListOpKind,
    /// Document index where the operation applies.
    pub pos: usize,
    /// Number of characters inserted or deleted.
    pub len: usize,
    /// Inserted text (`Ins` only).
    pub content: Option<String>,
}

impl TextOperation {
    /// Builds an insertion.
    pub fn ins(pos: usize, content: impl Into<String>) -> Self {
        let content = content.into();
        TextOperation {
            kind: ListOpKind::Ins,
            pos,
            len: content.chars().count(),
            content: Some(content),
        }
    }

    /// Builds a deletion.
    pub fn del(pos: usize, len: usize) -> Self {
        TextOperation {
            kind: ListOpKind::Del,
            pos,
            len,
            content: None,
        }
    }

    /// Applies the operation to a rope.
    pub fn apply_to(&self, doc: &mut eg_rope::Rope) {
        match self.kind {
            ListOpKind::Ins => doc.insert(self.pos, self.content.as_deref().unwrap_or("")),
            ListOpKind::Del => doc.remove(self.pos, self.len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ins_run(p: usize, n: usize, c: usize) -> OpRun {
        OpRun {
            kind: ListOpKind::Ins,
            loc: (p..p + n).into(),
            fwd: true,
            content: Some((c..c + n).into()),
        }
    }

    #[test]
    fn insert_run_merge_and_split() {
        let mut a = ins_run(5, 3, 0);
        let b = ins_run(8, 2, 3);
        assert!(a.can_append(&b));
        a.append(b);
        assert_eq!(a.loc, (5..10).into());
        assert_eq!(a.content, Some((0..5).into()));
        let tail = a.truncate(2);
        assert_eq!(a.loc, (5..7).into());
        assert_eq!(tail.loc, (7..10).into());
        assert_eq!(tail.content, Some((2..5).into()));
        assert_eq!(a.unit_pos(1), 6);
        assert_eq!(tail.unit_pos(0), 7);
    }

    #[test]
    fn non_adjacent_inserts_do_not_merge() {
        let a = ins_run(5, 3, 0);
        let b = ins_run(9, 2, 3);
        assert!(!a.can_append(&b));
        // Content gap also blocks merging.
        let c = ins_run(8, 2, 7);
        assert!(!a.can_append(&c));
    }

    #[test]
    fn forward_delete_merge() {
        let mut a = OpRun {
            kind: ListOpKind::Del,
            loc: (4..5).into(),
            fwd: true,
            content: None,
        };
        let b = OpRun {
            kind: ListOpKind::Del,
            loc: (4..5).into(),
            fwd: true,
            content: None,
        };
        assert!(a.can_append(&b));
        a.append(b);
        assert_eq!(a.loc, (4..6).into());
        assert_eq!(a.unit_pos(0), 4);
        assert_eq!(a.unit_pos(1), 4);
        let tail = a.truncate(1);
        assert_eq!(a.loc, (4..5).into());
        // Every unit of a forward delete applies at the same index.
        assert_eq!(tail.loc, (4..5).into());
        assert_eq!(tail.unit_pos(0), 4);
        // The halves re-merge.
        let mut h = a;
        assert!(h.can_append(&tail));
        h.append(tail);
        assert_eq!(h.loc, (4..6).into());
    }

    #[test]
    fn backspace_merge_and_split() {
        // Backspace at 5, then 4, then 3.
        let mut a = OpRun {
            kind: ListOpKind::Del,
            loc: (5..6).into(),
            fwd: true,
            content: None,
        };
        let b = OpRun {
            kind: ListOpKind::Del,
            loc: (4..5).into(),
            fwd: true,
            content: None,
        };
        let c = OpRun {
            kind: ListOpKind::Del,
            loc: (3..4).into(),
            fwd: true,
            content: None,
        };
        assert!(a.can_append(&b));
        a.append(b);
        assert!(!a.fwd);
        assert_eq!(a.loc, (4..6).into());
        assert!(a.can_append(&c));
        a.append(c);
        assert_eq!(a.loc, (3..6).into());
        assert_eq!(a.unit_pos(0), 5);
        assert_eq!(a.unit_pos(1), 4);
        assert_eq!(a.unit_pos(2), 3);
        let tail = a.truncate(1);
        assert_eq!(a.loc, (5..6).into());
        assert_eq!(tail.loc, (3..5).into());
        assert_eq!(tail.unit_pos(0), 4);
        assert_eq!(tail.unit_pos(1), 3);
    }

    #[test]
    fn mixed_kinds_do_not_merge() {
        let a = ins_run(0, 1, 0);
        let b = OpRun {
            kind: ListOpKind::Del,
            loc: (1..2).into(),
            fwd: true,
            content: None,
        };
        assert!(!a.can_append(&b));
    }

    #[test]
    fn text_operation_apply() {
        let mut doc = eg_rope::Rope::from_str("helo");
        TextOperation::ins(3, "l").apply_to(&mut doc);
        assert_eq!(doc.to_string(), "hello");
        TextOperation::del(0, 1).apply_to(&mut doc);
        assert_eq!(doc.to_string(), "ello");
    }

    #[test]
    fn text_op_ref_apply_and_to_owned() {
        let mut doc = eg_rope::Rope::from_str("héllo");
        let ins = TextOpRef::ins(5, "→!");
        assert_eq!(ins.len, 2, "len counts chars, not bytes");
        ins.apply_to(&mut doc);
        TextOpRef::del(1, 1).apply_to(&mut doc);
        assert_eq!(doc.to_string(), "hllo→!");
        assert_eq!(ins.to_owned(), TextOperation::ins(5, "→!"));
    }
}
