//! [`OpLog`]: the durable state of a replica — the event graph plus each
//! event's operation and inserted content (paper §3: "Event graph").

use crate::content::ContentArena;
use crate::op::{ListOpKind, OpRun};
use eg_dag::{AgentAssignment, AgentId, Frontier, Graph, RemoteId, LV};
use eg_rle::{DTRange, HasLength, KVPair, RleVec, SplitableSpan};

/// The append-only log of editing events: who did what, where, and after
/// which version.
///
/// The oplog is the only state Eg-walker persists (besides an optional
/// cached copy of the document text). Everything else — CRDT records,
/// B-trees, transformed operations — is derived transiently during merges
/// and discarded (paper §3, §3.5).
///
/// # Examples
///
/// ```
/// use egwalker::OpLog;
/// let mut oplog = OpLog::new();
/// let alice = oplog.get_or_create_agent("alice");
/// oplog.add_insert(alice, 0, "Helo!");
/// oplog.add_insert(alice, 3, "l");
/// let doc = oplog.checkout_tip();
/// assert_eq!(doc.content.to_string(), "Hello!");
/// ```
#[derive(Debug, Clone, Default)]
pub struct OpLog {
    /// The causal DAG over events.
    pub graph: Graph,
    /// LV ↔ (agent, seq) mapping.
    pub agents: AgentAssignment,
    /// Run-length encoded operations, keyed by LV.
    pub(crate) ops: RleVec<KVPair<OpRun>>,
    /// Every inserted character, in LV order of the insert events, stored
    /// as one UTF-8 arena addressed by char index (see
    /// [`crate::content::ContentArena`]).
    pub(crate) ins_content: ContentArena,
    /// Reused parent-LV buffer for bundle-run ingestion
    /// ([`crate::bundle::RunView`] application runs once per run of a
    /// segment-store open and must not allocate).
    pub(crate) parents_scratch: Vec<LV>,
}

impl OpLog {
    /// Creates an empty oplog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an agent (replica) name.
    pub fn get_or_create_agent(&mut self, name: &str) -> AgentId {
        self.agents.get_or_create_agent(name)
    }

    /// The number of events (single-character operations) in the log.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Returns `true` if no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// The current version: the frontier of the whole event graph.
    pub fn version(&self) -> &Frontier {
        self.graph.frontier()
    }

    /// Appends an op run, merging it into the previous run only when the
    /// new events directly chain onto the previous event in the graph.
    /// (Positionally mergeable ops from *different branches* — e.g. two
    /// concurrent `Delete(3)`s — must stay separate runs: a merged delete
    /// run means "press Delete n times in a row", which is a different
    /// operation.)
    pub(crate) fn push_op(&mut self, lvs: DTRange, run: OpRun, parents: &[LV]) {
        let chains = lvs.start > 0 && parents == [lvs.start - 1];
        if chains {
            self.ops.push(KVPair(lvs.start, run));
        } else {
            self.ops.0.push(KVPair(lvs.start, run));
        }
    }

    /// Adds a run of insertions at the current version.
    ///
    /// Returns the LV range of the new events.
    pub fn add_insert(&mut self, agent: AgentId, pos: usize, text: &str) -> DTRange {
        let parents = self.version().clone();
        self.add_insert_at(agent, &parents, pos, text)
    }

    /// Adds a run of insertions parented at an explicit version.
    pub fn add_insert_at(
        &mut self,
        agent: AgentId,
        parents: &[LV],
        pos: usize,
        text: &str,
    ) -> DTRange {
        let content = self.ins_content.push_str(text);
        assert!(!content.is_empty(), "empty insert");
        let start = self.len();
        let lvs: DTRange = (start..start + content.len()).into();
        self.push_op(
            lvs,
            OpRun {
                kind: ListOpKind::Ins,
                loc: (pos..pos + lvs.len()).into(),
                fwd: true,
                content: Some(content),
            },
            parents,
        );
        self.graph.push(parents, lvs);
        self.agents.assign_next(agent, lvs);
        lvs
    }

    /// Adds a run of forward deletions (Delete key) at the current version:
    /// deletes the characters at `[pos, pos + len)`.
    pub fn add_delete(&mut self, agent: AgentId, pos: usize, len: usize) -> DTRange {
        let parents = self.version().clone();
        self.add_delete_at(agent, &parents, pos, len)
    }

    /// Adds a run of forward deletions parented at an explicit version.
    pub fn add_delete_at(
        &mut self,
        agent: AgentId,
        parents: &[LV],
        pos: usize,
        len: usize,
    ) -> DTRange {
        assert!(len > 0, "empty delete");
        let start = self.len();
        let lvs: DTRange = (start..start + len).into();
        self.push_op(
            lvs,
            OpRun {
                kind: ListOpKind::Del,
                loc: (pos..pos + len).into(),
                fwd: true,
                content: None,
            },
            parents,
        );
        self.graph.push(parents, lvs);
        self.agents.assign_next(agent, lvs);
        lvs
    }

    /// Adds a run of backward deletions (Backspace) ending at `pos`:
    /// deletes the characters at `[pos + 1 - len, pos + 1)`, highest first.
    pub fn add_backspace_at(
        &mut self,
        agent: AgentId,
        parents: &[LV],
        pos: usize,
        len: usize,
    ) -> DTRange {
        assert!(len > 0, "empty delete");
        assert!(pos + 1 >= len, "backspace past document start");
        let start = self.len();
        let lvs: DTRange = (start..start + len).into();
        self.push_op(
            lvs,
            OpRun {
                kind: ListOpKind::Del,
                loc: (pos + 1 - len..pos + 1).into(),
                fwd: len == 1,
                content: None,
            },
            parents,
        );
        self.graph.push(parents, lvs);
        self.agents.assign_next(agent, lvs);
        lvs
    }

    /// Reassembles an oplog from storage-image parts: a graph and agent
    /// assignment restored via their own parts constructors, the exact
    /// operation-run entries (as `(lv_start, run)` pairs, boundaries
    /// preserved — runs from different branches must *not* be re-merged),
    /// and the full content arena text.
    ///
    /// Every `Ins` run's `content` range must be the cumulative char
    /// range of the arena in run order — the invariant all ingest paths
    /// maintain, which lets the storage image omit content ranges
    /// entirely. Callers (the image decoder) are responsible for
    /// structural validation; this constructor only rebuilds the arena's
    /// char→byte index.
    pub fn from_image_parts(
        graph: Graph,
        agents: AgentAssignment,
        runs: Vec<KVPair<OpRun>>,
        content: &str,
    ) -> Self {
        debug_assert_eq!(graph.len(), agents.len());
        debug_assert_eq!(graph.len(), runs.iter().map(|r| r.1.len()).sum::<usize>());
        let mut ins_content = ContentArena::new();
        ins_content.push_str(content);
        OpLog {
            graph,
            agents,
            ops: RleVec(runs),
            ins_content,
            parents_scratch: Vec::new(),
        }
    }

    /// The operation run starting at `lv`, trimmed to start there.
    pub fn op_at(&self, lv: LV) -> (DTRange, OpRun) {
        let (pair, offset) = self.ops.find_with_offset(lv).expect("LV out of range");
        let mut run = pair.1;
        if offset > 0 {
            run = run.truncate(offset);
        }
        ((lv..pair.0 + pair.1.len()).into(), run)
    }

    /// Iterates the (trimmed) operation runs covering an LV range.
    pub fn ops_in(&self, range: DTRange) -> impl Iterator<Item = (DTRange, OpRun)> + '_ {
        let mut lv = range.start;
        std::iter::from_fn(move || {
            if lv >= range.end {
                return None;
            }
            let (lvs, mut run) = self.op_at(lv);
            let mut lvs = lvs;
            if lvs.end > range.end {
                run.truncate(range.end - lv);
                lvs.end = range.end;
            }
            lv = lvs.end;
            Some((lvs, run))
        })
    }

    /// The single-character operation of one event: `(kind, index, char)`.
    pub fn unit_op(&self, lv: LV) -> (ListOpKind, usize, Option<char>) {
        let (pair, offset) = self.ops.find_with_offset(lv).expect("LV out of range");
        let run = &pair.1;
        let pos = run.unit_pos(offset);
        let c = run
            .content
            .map(|content| self.ins_content.char_at(content.start + offset));
        (run.kind, pos, c)
    }

    /// The inserted text for a char range of the content buffer, borrowed
    /// straight from the UTF-8 arena (no allocation).
    pub fn content_slice(&self, range: DTRange) -> &str {
        self.ins_content.slice(range)
    }

    /// Maps a local version to a globally unique [`RemoteId`].
    pub fn lv_to_remote(&self, lv: LV) -> RemoteId {
        self.agents.lv_to_remote(lv)
    }

    /// Maps a remote ID to a local version, if known.
    pub fn remote_to_lv(&self, id: &RemoteId) -> Option<LV> {
        self.agents.remote_id_to_lv(id)
    }

    /// Maps a remote ID to the LV of the latest locally known event from
    /// the same agent with sequence number at most `id.seq`, or `None` if
    /// the agent is entirely unknown here. The sound reading of a peer's
    /// claim to hold `id` when the peer is ahead of us — see
    /// [`AgentAssignment::latest_lv_at_or_below`].
    ///
    /// [`AgentAssignment::latest_lv_at_or_below`]: eg_dag::AgentAssignment::latest_lv_at_or_below
    pub fn clamp_remote_to_lv(&self, id: &RemoteId) -> Option<LV> {
        let agent = self.agents.agent_id(&id.agent)?;
        self.agents.latest_lv_at_or_below(agent, id.seq)
    }

    /// The current version expressed as remote IDs (safe to send to peers).
    pub fn remote_version(&self) -> Vec<RemoteId> {
        self.version()
            .iter()
            .map(|&lv| self.lv_to_remote(lv))
            .collect()
    }

    /// The per-agent maximum sequence numbers, as remote IDs: a version
    /// vector (safe to send to peers).
    ///
    /// Prefer this over [`OpLog::remote_version`] for anti-entropy digests.
    /// Frontier tips under-describe the log to a peer whose history has
    /// diverged: a tip the peer has never seen tells it nothing about the
    /// tip's ancestry, so [`OpLog::bundle_since`] must fall back to
    /// re-sending events the digest sender already holds. Per-agent maxima
    /// stay meaningful under divergence because an agent's events form a
    /// causal chain — holding `(a, n)` implies holding every `(a, m ≤ n)`.
    pub fn version_vector(&self) -> Vec<RemoteId> {
        self.agents.version_vector()
    }

    /// Merges all events from `other` that this oplog does not know yet.
    ///
    /// This is the replication entry point used when two replicas exchange
    /// their logs (the "union of their sets of events", paper §2.2). Events
    /// are matched by `(agent, seq)`; LVs are remapped.
    ///
    /// Returns the range of newly assigned local LVs (possibly empty).
    pub fn merge_oplog(&mut self, other: &OpLog) -> DTRange {
        let first_new = self.len();
        // Map from other's LVs to ours, filled in other's (topological) LV
        // order.
        let mut map: Vec<LV> = Vec::with_capacity(other.len());
        let mut other_lv = 0;
        while other_lv < other.len() {
            let span = other.agents.lv_to_agent_span(other_lv);
            let agent_name = other.agents.agent_name(span.agent);
            let run_len = span.seq_range.len();
            // Split the run into known/unknown prefixes.
            let my_agent = self.get_or_create_agent(agent_name);
            let mut k = 0;
            while k < run_len {
                let seq = span.seq_range.start + k;
                if let Some(my_lv) = self.agents.try_remote_to_lv(my_agent, seq) {
                    // Known already (events are immutable, so identical).
                    map.push(my_lv);
                    k += 1;
                } else {
                    // Unknown: ingest one event (chunking is handled by the
                    // RLE push paths; correctness first).
                    let lv = other_lv + k;
                    let parents: Vec<LV> =
                        other.graph.parents_of(lv).iter().map(|&p| map[p]).collect();
                    let my_lv = self.len();
                    let (kind, _, _) = other.unit_op(lv);
                    let (pair, offset) = other.ops.find_with_offset(lv).unwrap();
                    let run = &pair.1;
                    // Build a unit-length run for this event.
                    let unit_pos = run.unit_pos(offset);
                    let content = match run.content {
                        Some(c) => {
                            let at = self
                                .ins_content
                                .push_char(other.ins_content.char_at(c.start + offset));
                            Some((at..at + 1).into())
                        }
                        None => None,
                    };
                    self.push_op(
                        (my_lv..my_lv + 1).into(),
                        OpRun {
                            kind,
                            loc: (unit_pos..unit_pos + 1).into(),
                            fwd: true,
                            content,
                        },
                        &parents,
                    );
                    self.graph.push(&parents, (my_lv..my_lv + 1).into());
                    self.agents.assign_at(
                        my_agent,
                        (seq..seq + 1).into(),
                        (my_lv..my_lv + 1).into(),
                    );
                    map.push(my_lv);
                    k += 1;
                }
            }
            other_lv += run_len;
        }
        (first_new..self.len()).into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut log = OpLog::new();
        let a = log.get_or_create_agent("alice");
        let lvs = log.add_insert(a, 0, "hey");
        assert_eq!(lvs, (0..3).into());
        assert_eq!(log.version().as_slice(), &[2]);
        let lvs = log.add_delete(a, 1, 2);
        assert_eq!(lvs, (3..5).into());
        assert_eq!(log.len(), 5);
        assert_eq!(log.unit_op(0), (ListOpKind::Ins, 0, Some('h')));
        assert_eq!(log.unit_op(2), (ListOpKind::Ins, 2, Some('y')));
        assert_eq!(log.unit_op(3), (ListOpKind::Del, 1, None));
        assert_eq!(log.unit_op(4), (ListOpKind::Del, 1, None));
    }

    #[test]
    fn ops_rle_merge() {
        let mut log = OpLog::new();
        let a = log.get_or_create_agent("alice");
        log.add_insert(a, 0, "ab");
        log.add_insert(a, 2, "cd"); // continues typing: should merge
        assert_eq!(log.ops.num_entries(), 1);
        log.add_insert(a, 0, "x"); // cursor moved: new run
        assert_eq!(log.ops.num_entries(), 2);
    }

    #[test]
    fn backspace_positions() {
        let mut log = OpLog::new();
        let a = log.get_or_create_agent("alice");
        log.add_insert(a, 0, "abcde");
        // Backspace three times from after 'e' (deleting e, d, c).
        let parents = log.version().clone();
        log.add_backspace_at(a, &parents, 4, 3);
        assert_eq!(log.unit_op(5), (ListOpKind::Del, 4, None));
        assert_eq!(log.unit_op(6), (ListOpKind::Del, 3, None));
        assert_eq!(log.unit_op(7), (ListOpKind::Del, 2, None));
    }

    #[test]
    fn ops_in_trims() {
        let mut log = OpLog::new();
        let a = log.get_or_create_agent("alice");
        log.add_insert(a, 0, "abcdef");
        let runs: Vec<_> = log.ops_in((2..5).into()).collect();
        assert_eq!(runs.len(), 1);
        let (lvs, run) = runs[0];
        assert_eq!(lvs, (2..5).into());
        assert_eq!(run.loc, (2..5).into());
        assert_eq!(log.content_slice(run.content.unwrap()), "cde");
    }

    #[test]
    fn remote_ids_roundtrip() {
        let mut log = OpLog::new();
        let a = log.get_or_create_agent("alice");
        log.add_insert(a, 0, "hi");
        let id = log.lv_to_remote(1);
        assert_eq!(id.agent, "alice");
        assert_eq!(id.seq, 1);
        assert_eq!(log.remote_to_lv(&id), Some(1));
    }

    #[test]
    fn merge_oplog_disjoint_and_overlap() {
        let mut a = OpLog::new();
        let alice = a.get_or_create_agent("alice");
        a.add_insert(alice, 0, "shared");

        // Replica b starts from a copy, then both diverge.
        let mut b = a.clone();
        let bob = b.get_or_create_agent("bob");
        a.add_insert(alice, 6, "!");
        b.add_insert(bob, 0, "?");

        // Cross-merge.
        let new_in_a = a.merge_oplog(&b);
        assert_eq!(new_in_a.len(), 1);
        let new_in_b = b.merge_oplog(&a);
        assert_eq!(new_in_b.len(), 1);
        assert_eq!(a.len(), 8);
        assert_eq!(b.len(), 8);
        // Merging again is a no-op.
        assert!(a.merge_oplog(&b).is_empty());

        // Both now know the same set of remote events.
        for lv in 0..a.len() {
            let id = a.lv_to_remote(lv);
            assert!(b.remote_to_lv(&id).is_some());
        }
    }
}
